//! Exhaustive compilation of DNFs into complete d-trees (Figure 1).

use events::{
    product_factorization_by, Clause, Dnf, DnfRef, DnfView, LineageArena, ProbabilitySpace,
    VarOrigins,
};

use crate::node::DTree;
use crate::order::{choose_variable_ref, VarOrder};
use crate::stats::CompileStats;

/// Options controlling compilation (shared by the exhaustive compiler, the
/// exact evaluator and the approximation algorithm).
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Variable-elimination order for Shannon expansion.
    pub var_order: VarOrder,
    /// Origin (relation / query-subgoal) labels for the variables. Enables
    /// the independent-and product factorization and the IQ elimination
    /// order; without them the compiler still works but may fall back to
    /// Shannon expansion more often.
    pub origins: Option<VarOrigins>,
    /// Upper bound on the recursion depth (`None` = unlimited). Mainly a
    /// safety valve for adversarial inputs in tests.
    pub max_depth: Option<usize>,
}

impl CompileOptions {
    /// Options with origin labels (and the IQ-then-frequent order, which is
    /// the configuration used for query lineage).
    pub fn with_origins(origins: VarOrigins) -> Self {
        CompileOptions {
            var_order: VarOrder::IqThenFrequent,
            origins: Some(origins),
            max_depth: None,
        }
    }
}

/// Compiles a DNF into a complete d-tree following Figure 1 of the paper:
///
/// 1. remove subsumed clauses,
/// 2. apply independent-or (⊗): split into connected components of the
///    variable co-occurrence graph,
/// 3. apply independent-and (⊙): factor out atoms common to all clauses,
///    split single clauses into their atoms, and (when origin labels are
///    available) apply the relational product factorization,
/// 4. otherwise apply Shannon expansion (⊕) on a variable chosen by the
///    configured order.
///
/// The returned d-tree is complete: every leaf holds at most one clause, so
/// [`DTree::exact_probability`] succeeds on it.
pub fn compile(dnf: &Dnf, space: &ProbabilitySpace, opts: &CompileOptions) -> DTree {
    let mut stats = CompileStats::default();
    compile_with_stats(dnf, space, opts, &mut stats)
}

/// Like [`compile`], also accumulating [`CompileStats`].
pub fn compile_with_stats(
    dnf: &Dnf,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    stats: &mut CompileStats,
) -> DTree {
    let mut arena = LineageArena::with_capacity(dnf.len(), 4);
    let root = arena.intern(dnf);
    compile_rec(&mut arena, &root, space, opts, stats, 0)
}

/// The recursion runs on arena views — decomposition is index manipulation —
/// and only materialises owned [`Dnf`]s for the leaves of the returned tree
/// (the [`DTree`] node type keeps its owned representation, which is what a
/// *materialised* compilation is for).
fn compile_rec(
    arena: &mut LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    stats: &mut CompileStats,
    depth: usize,
) -> DTree {
    stats.max_depth = stats.max_depth.max(depth);

    // Constants.
    if view.is_empty() || view.is_tautology(arena) {
        stats.exact_leaves += 1;
        return DTree::Leaf(if view.is_empty() { Dnf::empty() } else { Dnf::tautology() });
    }

    // Depth cut-off: leave the DNF as a (possibly large) leaf.
    if let Some(max) = opts.max_depth {
        if depth >= max {
            stats.closed_leaves += 1;
            return DTree::Leaf(view.to_dnf(arena));
        }
    }

    // Step 1: remove subsumed clauses.
    let (view, removed) = view.remove_subsumed(arena);
    stats.subsumed_clauses += removed;

    // Single clause: exact leaf (split into atoms only for presentation —
    // the probability of a clause is already a product of atom marginals).
    if view.len() == 1 {
        let atoms: Vec<events::Atom> = view.clause(arena, 0).collect();
        if atoms.len() <= 1 {
            stats.exact_leaves += 1;
            return DTree::Leaf(view.to_dnf(arena));
        }
        // ⊙ of singleton-atom leaves, mirroring the paper's complete d-trees
        // whose leaves are single clauses; splitting a clause keeps the tree
        // uniform and exercises the ⊙ combination rule.
        stats.and_nodes += 1;
        stats.exact_leaves += atoms.len();
        return DTree::IndepAnd(
            atoms.into_iter().map(|a| DTree::Leaf(Dnf::singleton(Clause::singleton(a)))).collect(),
        );
    }

    // Step 2: independent-or (⊗) over connected components.
    let components = view.independent_components(arena);
    if components.len() > 1 {
        stats.or_nodes += 1;
        return DTree::IndepOr(
            components
                .iter()
                .map(|c| compile_rec(arena, c, space, opts, stats, depth + 1))
                .collect(),
        );
    }

    // Step 3a: independent-and (⊙) by factoring out atoms common to all
    // clauses.
    let common = view.common_atoms(arena);
    if !common.is_empty() {
        let vars: Vec<_> = common.iter().map(|a| a.var).collect();
        let rest = view.strip_vars(arena, &vars);
        stats.and_nodes += 1;
        stats.exact_leaves += common.len();
        let mut children: Vec<DTree> =
            common.iter().map(|a| DTree::Leaf(Dnf::singleton(Clause::singleton(*a)))).collect();
        children.push(compile_rec(arena, &rest, space, opts, stats, depth + 1));
        return DTree::IndepAnd(children);
    }

    // Step 3b: independent-and (⊙) by relational product factorization.
    if let Some(origins) = &opts.origins {
        let factors = product_factorization_by(view.len(), |i| view.clause(arena, i), origins);
        if let Some(factors) = factors {
            stats.and_nodes += 1;
            return DTree::IndepAnd(
                factors
                    .into_iter()
                    .map(|clauses| {
                        let factor = arena.intern_sorted_clauses(&clauses);
                        compile_rec(arena, &factor, space, opts, stats, depth + 1)
                    })
                    .collect(),
            );
        }
    }

    // Step 4: Shannon expansion (⊕).
    let var =
        choose_variable_ref(DnfRef::Arena(arena, &view), &opts.var_order, opts.origins.as_ref())
            .expect("non-constant DNF mentions at least one variable");
    stats.xor_nodes += 1;
    let mut branches = Vec::new();
    for (value, cofactor) in view.shannon_cofactors(arena, var, space) {
        let assignment = Dnf::singleton(Clause::singleton(events::Atom::new(var, value)));
        stats.exact_leaves += 1;
        stats.and_nodes += 1;
        branches.push(DTree::IndepAnd(vec![
            DTree::Leaf(assignment),
            compile_rec(arena, &cofactor, space, opts, stats, depth + 1),
        ]));
    }
    DTree::ExclOr(branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Atom, VarId};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn assert_compiles_exactly(dnf: &Dnf, space: &ProbabilitySpace, opts: &CompileOptions) {
        let tree = compile(dnf, space, opts);
        assert!(tree.is_complete(), "tree not complete: {tree}");
        let p_tree = tree.exact_probability(space).expect("complete tree evaluates");
        let p_exact = dnf.exact_probability_enumeration(space);
        assert!((p_tree - p_exact).abs() < 1e-9, "tree {p_tree} != exact {p_exact} for {dnf}");
        // Bounds of a complete tree must also bracket (and essentially pin)
        // the exact probability.
        let b = tree.bounds(space);
        assert!(b.contains(p_exact));
    }

    /// Figure 2: the DNF of Example 4.4 compiles into a complete d-tree whose
    /// probability matches brute-force enumeration.
    #[test]
    fn figure_2_compilation() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.5, 0.2, 0.3]);
        let y = s.add_bool("y", 0.4);
        let z = s.add_bool("z", 0.6);
        let u = s.add_discrete("u", vec![0.3, 0.3, 0.4]);
        let v = s.add_bool("v", 0.7);
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 1)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(y)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(z)]),
            Clause::from_atoms(vec![Atom::new(u, 1), Atom::pos(v)]),
            Clause::from_atoms(vec![Atom::new(u, 2)]),
        ]);
        let opts = CompileOptions::default();
        assert_compiles_exactly(&phi, &s, &opts);
        // The top-level decomposition must be an independent-or with two
        // components ({x,y,z} and {u,v}).
        let tree = compile(&phi, &s, &opts);
        match &tree {
            DTree::IndepOr(children) => assert_eq!(children.len(), 2),
            other => panic!("expected ⊗ at the root, got {other}"),
        }
    }

    #[test]
    fn example_5_2_compiles_exactly() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        assert_compiles_exactly(&phi, &s, &CompileOptions::default());
    }

    #[test]
    fn subsumed_clauses_are_removed_during_compilation() {
        let (s, vars) = bool_space(&[0.5, 0.5]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0]]),
            Clause::from_bools(&[vars[0], vars[1]]),
        ]);
        let mut stats = CompileStats::default();
        let tree = compile_with_stats(&phi, &s, &CompileOptions::default(), &mut stats);
        assert_eq!(stats.subsumed_clauses, 1);
        assert!((tree.exact_probability(&s).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constants_compile_to_constant_leaves() {
        let (s, _) = bool_space(&[0.5]);
        let t = compile(&Dnf::empty(), &s, &CompileOptions::default());
        assert_eq!(t.exact_probability(&s), Some(0.0));
        let t = compile(&Dnf::tautology(), &s, &CompileOptions::default());
        assert_eq!(t.exact_probability(&s), Some(1.0));
    }

    #[test]
    fn single_clause_becomes_independent_and_of_atoms() {
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1], vars[2]])]);
        let tree = compile(&phi, &s, &CompileOptions::default());
        match &tree {
            DTree::IndepAnd(children) => assert_eq!(children.len(), 3),
            other => panic!("expected ⊙, got {other}"),
        }
        assert!((tree.exact_probability(&s).unwrap() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn common_atom_factoring_produces_and_node() {
        let (s, vars) = bool_space(&[0.3, 0.5, 0.6, 0.9]);
        // a∧b∧c ∨ a∧b∧d
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1], vars[2]]),
            Clause::from_bools(&[vars[0], vars[1], vars[3]]),
        ]);
        let tree = compile(&phi, &s, &CompileOptions::default());
        match &tree {
            DTree::IndepAnd(children) => assert_eq!(children.len(), 3),
            other => panic!("expected ⊙, got {other}"),
        }
        assert_compiles_exactly(&phi, &s, &CompileOptions::default());
    }

    #[test]
    fn product_factorization_used_when_origins_available() {
        let (s, vars) = bool_space(&[0.1, 0.2, 0.3, 0.4]);
        let (r1, r2, s1, s2) = (vars[0], vars[1], vars[2], vars[3]);
        let mut origins = VarOrigins::new();
        origins.set(r1, 0);
        origins.set(r2, 0);
        origins.set(s1, 1);
        origins.set(s2, 1);
        // (r1 ∨ r2) ⊙ (s1 ∨ s2) as a flat DNF of 4 clauses.
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[r1, s1]),
            Clause::from_bools(&[r1, s2]),
            Clause::from_bools(&[r2, s1]),
            Clause::from_bools(&[r2, s2]),
        ]);
        let opts = CompileOptions::with_origins(origins);
        let mut stats = CompileStats::default();
        let tree = compile_with_stats(&phi, &s, &opts, &mut stats);
        // With factorization no Shannon expansion is needed.
        assert_eq!(stats.xor_nodes, 0, "tree: {tree}");
        assert_compiles_exactly(&phi, &s, &opts);
        // Without origins the compiler must resort to Shannon expansion but
        // still be exact.
        let mut stats2 = CompileStats::default();
        let opts_no_origin = CompileOptions::default();
        let _ = compile_with_stats(&phi, &s, &opts_no_origin, &mut stats2);
        assert!(stats2.xor_nodes > 0);
        assert_compiles_exactly(&phi, &s, &opts_no_origin);
    }

    #[test]
    fn hard_pattern_requires_shannon_but_stays_exact() {
        // Lineage of R(X),S(X,Y),T(Y) over a 2x2 complete probabilistic S.
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.2, 0.9]);
        let (r1, r2, t1, t2) = (vars[0], vars[1], vars[2], vars[3]);
        let (s11, s12, s21, s22) = (vars[4], vars[5], vars[6], vars[7]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[r1, s11, t1]),
            Clause::from_bools(&[r1, s12, t2]),
            Clause::from_bools(&[r2, s21, t1]),
            Clause::from_bools(&[r2, s22, t2]),
        ]);
        let mut stats = CompileStats::default();
        let tree = compile_with_stats(&phi, &s, &CompileOptions::default(), &mut stats);
        assert!(stats.xor_nodes > 0);
        assert!(tree.is_complete());
        assert_compiles_exactly(&phi, &s, &CompileOptions::default());
    }

    #[test]
    fn max_depth_yields_partial_tree_with_valid_bounds() {
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let opts = CompileOptions { max_depth: Some(1), ..Default::default() };
        let tree = compile(&phi, &s, &opts);
        assert!(!tree.is_complete());
        let b = tree.bounds(&s);
        assert!(b.contains(phi.exact_probability_enumeration(&s)));
    }

    #[test]
    fn multivalued_shannon_expansion_is_exact() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.2, 0.3, 0.5]);
        let y = s.add_bool("y", 0.4);
        let z = s.add_bool("z", 0.9);
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 0), Atom::pos(y)]),
            Clause::from_atoms(vec![Atom::new(x, 1), Atom::pos(z)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(y), Atom::pos(z)]),
        ]);
        assert_compiles_exactly(&phi, &s, &CompileOptions::default());
    }
}
