//! The d-tree data structure (Definition 4.2).

use std::fmt;

use events::{Dnf, ProbabilitySpace};

use crate::bounds::{dnf_bounds, Bounds};
use crate::stats::CompileStats;

/// A (partial) decomposition tree for a DNF formula.
///
/// A d-tree is a formula built from the three "easy" connectives over DNF
/// leaves:
///
/// * `⊗` ([`DTree::IndepOr`]) — disjunction of pairwise *independent*
///   sub-formulas, with `P = 1 − Π (1 − Pᵢ)`,
/// * `⊙` ([`DTree::IndepAnd`]) — conjunction of pairwise *independent*
///   sub-formulas, with `P = Π Pᵢ`,
/// * `⊕` ([`DTree::ExclOr`]) — disjunction of pairwise *inconsistent*
///   (mutually exclusive) sub-formulas, with `P = Σ Pᵢ`.
///
/// A d-tree is **complete** when every leaf DNF is a single clause (or a
/// constant); the probability of a complete d-tree is computable in one
/// bottom-up pass ([`DTree::exact_probability`], Proposition 4.3). A partial
/// d-tree still yields probability *bounds* by propagating leaf bounds
/// through the monotone combination formulas ([`DTree::bounds`],
/// Proposition 5.4).
#[derive(Debug, Clone, PartialEq)]
pub enum DTree {
    /// A leaf holding a (not yet decomposed) DNF.
    Leaf(Dnf),
    /// Independent-or (⊗) over pairwise independent children.
    IndepOr(Vec<DTree>),
    /// Independent-and (⊙) over pairwise independent children.
    IndepAnd(Vec<DTree>),
    /// Exclusive-or (⊕) over pairwise mutually exclusive children (the
    /// branches of a Shannon expansion).
    ExclOr(Vec<DTree>),
}

impl DTree {
    /// A leaf for a single clause DNF.
    pub fn leaf(dnf: Dnf) -> Self {
        DTree::Leaf(dnf)
    }

    /// `true` if every leaf is a singleton clause or a constant, i.e. the
    /// d-tree is complete and its probability can be computed exactly in one
    /// pass.
    pub fn is_complete(&self) -> bool {
        match self {
            DTree::Leaf(dnf) => dnf.len() <= 1 || dnf.is_tautology(),
            DTree::IndepOr(cs) | DTree::IndepAnd(cs) | DTree::ExclOr(cs) => {
                cs.iter().all(|c| c.is_complete())
            }
        }
    }

    /// Number of nodes in the d-tree (inner nodes and leaves).
    pub fn num_nodes(&self) -> usize {
        match self {
            DTree::Leaf(_) => 1,
            DTree::IndepOr(cs) | DTree::IndepAnd(cs) | DTree::ExclOr(cs) => {
                1 + cs.iter().map(|c| c.num_nodes()).sum::<usize>()
            }
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            DTree::Leaf(_) => 1,
            DTree::IndepOr(cs) | DTree::IndepAnd(cs) | DTree::ExclOr(cs) => {
                cs.iter().map(|c| c.num_leaves()).sum()
            }
        }
    }

    /// Height of the d-tree (a single leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            DTree::Leaf(_) => 0,
            DTree::IndepOr(cs) | DTree::IndepAnd(cs) | DTree::ExclOr(cs) => {
                1 + cs.iter().map(|c| c.height()).max().unwrap_or(0)
            }
        }
    }

    /// Collects node-type statistics for this d-tree.
    pub fn stats(&self) -> CompileStats {
        let mut stats = CompileStats::default();
        self.collect_stats(&mut stats, 0);
        stats
    }

    fn collect_stats(&self, stats: &mut CompileStats, depth: usize) {
        stats.max_depth = stats.max_depth.max(depth);
        match self {
            DTree::Leaf(dnf) => {
                if dnf.len() <= 1 || dnf.is_tautology() {
                    stats.exact_leaves += 1;
                } else {
                    stats.closed_leaves += 1;
                }
            }
            DTree::IndepOr(cs) => {
                stats.or_nodes += 1;
                for c in cs {
                    c.collect_stats(stats, depth + 1);
                }
            }
            DTree::IndepAnd(cs) => {
                stats.and_nodes += 1;
                for c in cs {
                    c.collect_stats(stats, depth + 1);
                }
            }
            DTree::ExclOr(cs) => {
                stats.xor_nodes += 1;
                for c in cs {
                    c.collect_stats(stats, depth + 1);
                }
            }
        }
    }

    /// Exact probability of a **complete** d-tree (Proposition 4.3): one
    /// bottom-up pass with the ⊗/⊙/⊕ combination formulas, looking up clause
    /// probabilities at the leaves.
    ///
    /// Returns `None` if the d-tree is not complete (some leaf holds more
    /// than one clause), because leaf probabilities would then be unknown.
    pub fn exact_probability(&self, space: &ProbabilitySpace) -> Option<f64> {
        match self {
            DTree::Leaf(dnf) => {
                if dnf.is_empty() {
                    Some(0.0)
                } else if dnf.is_tautology() {
                    Some(1.0)
                } else if dnf.len() == 1 {
                    Some(dnf.clauses()[0].probability(space))
                } else {
                    None
                }
            }
            DTree::IndepOr(cs) => {
                let mut prod = 1.0;
                for c in cs {
                    prod *= 1.0 - c.exact_probability(space)?;
                }
                Some(1.0 - prod)
            }
            DTree::IndepAnd(cs) => {
                let mut prod = 1.0;
                for c in cs {
                    prod *= c.exact_probability(space)?;
                }
                Some(prod)
            }
            DTree::ExclOr(cs) => {
                let mut sum = 0.0;
                for c in cs {
                    sum += c.exact_probability(space)?;
                }
                Some(sum.min(1.0))
            }
        }
    }

    /// Lower and upper bounds on the probability of the (partial) d-tree
    /// (Proposition 5.4): each leaf contributes its bucket bounds
    /// ([`dnf_bounds`]) and bounds propagate through the monotone combination
    /// formulas of the inner nodes.
    pub fn bounds(&self, space: &ProbabilitySpace) -> Bounds {
        match self {
            DTree::Leaf(dnf) => dnf_bounds(dnf, space),
            DTree::IndepOr(cs) => Bounds::combine_or(cs.iter().map(|c| c.bounds(space))),
            DTree::IndepAnd(cs) => Bounds::combine_and(cs.iter().map(|c| c.bounds(space))),
            DTree::ExclOr(cs) => Bounds::combine_xor(cs.iter().map(|c| c.bounds(space))),
        }
    }

    /// Bounds of the d-tree when every leaf is pinned to a caller-supplied
    /// interval; used by tests and by the closing analysis of Section V-D.
    pub fn bounds_with(&self, leaf_bounds: &dyn Fn(&Dnf) -> Bounds) -> Bounds {
        match self {
            DTree::Leaf(dnf) => leaf_bounds(dnf),
            DTree::IndepOr(cs) => Bounds::combine_or(cs.iter().map(|c| c.bounds_with(leaf_bounds))),
            DTree::IndepAnd(cs) => {
                Bounds::combine_and(cs.iter().map(|c| c.bounds_with(leaf_bounds)))
            }
            DTree::ExclOr(cs) => Bounds::combine_xor(cs.iter().map(|c| c.bounds_with(leaf_bounds))),
        }
    }

    /// Iterates over the leaf DNFs of the d-tree (depth-first, left to right).
    pub fn leaves(&self) -> Vec<&Dnf> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Dnf>) {
        match self {
            DTree::Leaf(dnf) => out.push(dnf),
            DTree::IndepOr(cs) | DTree::IndepAnd(cs) | DTree::ExclOr(cs) => {
                for c in cs {
                    c.collect_leaves(out);
                }
            }
        }
    }
}

impl fmt::Display for DTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTree::Leaf(dnf) => write!(f, "[{dnf}]"),
            DTree::IndepOr(cs) => write_children(f, "⊗", cs),
            DTree::IndepAnd(cs) => write_children(f, "⊙", cs),
            DTree::ExclOr(cs) => write_children(f, "⊕", cs),
        }
    }
}

fn write_children(f: &mut fmt::Formatter<'_>, op: &str, cs: &[DTree]) -> fmt::Result {
    write!(f, "{op}(")?;
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Atom, Clause, VarId};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    /// Build the d-tree of Figure 4 with explicit leaf DNFs, then check the
    /// bound propagation of Example 5.5 using pinned leaf bounds.
    #[test]
    fn example_5_5_bound_propagation() {
        let (_, vars) = bool_space(&[0.5; 4]);
        let phi1 = Dnf::literal(vars[0]);
        let x = Dnf::literal(vars[1]);
        let phi2 = Dnf::literal(vars[2]);
        let phi3 = Dnf::literal(vars[3]);
        let tree = DTree::IndepOr(vec![
            DTree::Leaf(phi1.clone()),
            DTree::ExclOr(vec![
                DTree::IndepAnd(vec![DTree::Leaf(x.clone()), DTree::Leaf(phi2.clone())]),
                DTree::Leaf(phi3.clone()),
            ]),
        ]);
        let bounds = tree.bounds_with(&|leaf: &Dnf| {
            if *leaf == phi1 {
                Bounds::new(0.1, 0.11)
            } else if *leaf == x {
                Bounds::point(0.5)
            } else if *leaf == phi2 {
                Bounds::new(0.4, 0.44)
            } else {
                Bounds::new(0.35, 0.38)
            }
        });
        assert!((bounds.lower - 0.595).abs() < 1e-9, "lower = {}", bounds.lower);
        assert!((bounds.upper - 0.644).abs() < 1e-9, "upper = {}", bounds.upper);
    }

    /// The complete d-tree of Figure 2 evaluates exactly in one pass.
    #[test]
    fn figure_2_complete_dtree_probability() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.5, 0.2, 0.3]); // values 0,1,2
        let y = s.add_bool("y", 0.4);
        let z = s.add_bool("z", 0.6);
        let u = s.add_discrete("u", vec![0.3, 0.3, 0.4]);
        let v = s.add_bool("v", 0.7);
        // Φ = {x=1} ∨ {x=2, y} ∨ {x=2, z} ∨ {u=1, v} ∨ {u=2}
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 1)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(y)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(z)]),
            Clause::from_atoms(vec![Atom::new(u, 1), Atom::pos(v)]),
            Clause::from_atoms(vec![Atom::new(u, 2)]),
        ]);
        // Hand-built d-tree mirroring Figure 2.
        let tree = DTree::IndepOr(vec![
            DTree::ExclOr(vec![
                DTree::Leaf(Dnf::singleton(Clause::from_atoms(vec![Atom::new(x, 1)]))),
                DTree::IndepAnd(vec![
                    DTree::Leaf(Dnf::singleton(Clause::from_atoms(vec![Atom::new(x, 2)]))),
                    DTree::IndepOr(vec![
                        DTree::Leaf(Dnf::literal(y)),
                        DTree::Leaf(Dnf::literal(z)),
                    ]),
                ]),
            ]),
            DTree::ExclOr(vec![
                DTree::IndepAnd(vec![
                    DTree::Leaf(Dnf::singleton(Clause::from_atoms(vec![Atom::new(u, 1)]))),
                    DTree::Leaf(Dnf::literal(v)),
                ]),
                DTree::Leaf(Dnf::singleton(Clause::from_atoms(vec![Atom::new(u, 2)]))),
            ]),
        ]);
        assert!(tree.is_complete());
        let p_tree = tree.exact_probability(&s).unwrap();
        let p_exact = phi.exact_probability_enumeration(&s);
        assert!((p_tree - p_exact).abs() < 1e-12, "tree {p_tree} exact {p_exact}");
    }

    #[test]
    fn incomplete_dtree_has_no_exact_probability_but_has_bounds() {
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3]);
        let big_leaf = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
        ]);
        let tree = DTree::Leaf(big_leaf.clone());
        assert!(!tree.is_complete());
        assert!(tree.exact_probability(&s).is_none());
        let b = tree.bounds(&s);
        assert!(b.contains(big_leaf.exact_probability_enumeration(&s)));
    }

    #[test]
    fn structural_statistics() {
        let (_, vars) = bool_space(&[0.5; 4]);
        let tree = DTree::IndepOr(vec![
            DTree::Leaf(Dnf::literal(vars[0])),
            DTree::IndepAnd(vec![
                DTree::Leaf(Dnf::literal(vars[1])),
                DTree::Leaf(Dnf::literal(vars[2])),
            ]),
            DTree::ExclOr(vec![DTree::Leaf(Dnf::literal(vars[3]))]),
        ]);
        assert_eq!(tree.num_nodes(), 7);
        assert_eq!(tree.num_leaves(), 4);
        assert_eq!(tree.height(), 2);
        let stats = tree.stats();
        assert_eq!(stats.or_nodes, 1);
        assert_eq!(stats.and_nodes, 1);
        assert_eq!(stats.xor_nodes, 1);
        assert_eq!(stats.exact_leaves, 4);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(tree.leaves().len(), 4);
    }

    #[test]
    fn display_shows_operators() {
        let (_, vars) = bool_space(&[0.5, 0.5]);
        let tree = DTree::IndepOr(vec![
            DTree::Leaf(Dnf::literal(vars[0])),
            DTree::Leaf(Dnf::literal(vars[1])),
        ]);
        let s = tree.to_string();
        assert!(s.contains('⊗'));
    }

    #[test]
    fn constants_evaluate() {
        let (s, _) = bool_space(&[0.5]);
        assert_eq!(DTree::Leaf(Dnf::empty()).exact_probability(&s), Some(0.0));
        assert_eq!(DTree::Leaf(Dnf::tautology()).exact_probability(&s), Some(1.0));
    }
}
