//! Probability bounds: the `[lower, upper]` interval abstraction and the
//! bucket heuristic of Figure 3 that computes bounds for a DNF leaf without
//! refining it.

use events::{Dnf, DnfRef, DnfView, LineageArena, ProbabilitySpace, VarId};

/// A closed interval `[lower, upper]` bracketing a probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower bound (inclusive).
    pub lower: f64,
    /// Upper bound (inclusive).
    pub upper: f64,
}

impl Bounds {
    /// A point interval `[p, p]` for an exactly known probability.
    #[inline]
    pub fn point(p: f64) -> Self {
        Bounds { lower: p, upper: p }
    }

    /// The interval `[0, 1]` (no information).
    #[inline]
    pub fn vacuous() -> Self {
        Bounds { lower: 0.0, upper: 1.0 }
    }

    /// Constructs a bounds interval, clamping both ends to `[0, 1]` and
    /// ensuring `lower ≤ upper`.
    pub fn new(lower: f64, upper: f64) -> Self {
        let lower = lower.clamp(0.0, 1.0);
        let upper = upper.clamp(0.0, 1.0);
        Bounds { lower: lower.min(upper), upper: lower.max(upper) }
    }

    /// Width of the interval.
    #[inline]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// `true` if the interval is (numerically) a single point.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.width() <= f64::EPSILON
    }

    /// The midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// `true` if `p` lies within the interval (with a small tolerance for
    /// floating-point rounding).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lower - 1e-12 && p <= self.upper + 1e-12
    }

    /// Combines children bounds of an independent-or (⊗) node:
    /// `P = 1 - Π (1 - Pᵢ)`, applied separately to lower and upper bounds
    /// (the formula is monotone in each argument).
    pub fn combine_or<I: IntoIterator<Item = Bounds>>(children: I) -> Bounds {
        let mut lo_prod = 1.0;
        let mut hi_prod = 1.0;
        for b in children {
            lo_prod *= 1.0 - b.lower;
            hi_prod *= 1.0 - b.upper;
        }
        Bounds::new(1.0 - lo_prod, 1.0 - hi_prod)
    }

    /// Combines children bounds of an independent-and (⊙) node:
    /// `P = Π Pᵢ`.
    pub fn combine_and<I: IntoIterator<Item = Bounds>>(children: I) -> Bounds {
        let mut lo = 1.0;
        let mut hi = 1.0;
        for b in children {
            lo *= b.lower;
            hi *= b.upper;
        }
        Bounds::new(lo, hi)
    }

    /// Combines children bounds of an exclusive-or (⊕) node:
    /// `P = Σ Pᵢ` (children are mutually exclusive), clamped to 1.
    pub fn combine_xor<I: IntoIterator<Item = Bounds>>(children: I) -> Bounds {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for b in children {
            lo += b.lower;
            hi += b.upper;
        }
        Bounds::new(lo.min(1.0), hi.min(1.0))
    }
}

/// Computes lower and upper bounds on the probability of a DNF using the
/// bucket heuristic of Figure 3 (`Independent`), strengthened for monotone
/// DNFs by the independent-union upper bound (see
/// [`independent_or_upper_bound`]):
///
/// 1. Partition the clauses into buckets of pairwise independent clauses
///    (greedy first-fit, so each bucket is maximal when it is created).
/// 2. The exact probability of a bucket is `1 - Π (1 - P(clause))`.
/// 3. The lower bound is the maximum bucket probability, the upper bound the
///    (clamped) sum of bucket probabilities.
/// 4. When every variable occurs with a single domain value throughout the
///    DNF (always the case for tuple-independent query lineage), the upper
///    bound is additionally capped by `1 - Π (1 - P(clause))` over *all*
///    clauses, which is sound by the Harris/FKG inequality because all clause
///    events are then monotone increasing in the independent atomic events.
///
/// Clauses are considered in descending order of marginal probability, the
/// refinement the paper reports to improve the lower bound (Example 5.2).
/// Runs in time quadratic in the number of clauses.
pub fn dnf_bounds(dnf: &Dnf, space: &ProbabilitySpace) -> Bounds {
    dnf_bounds_ref(DnfRef::Owned(dnf), space)
}

/// [`dnf_bounds`] for an arena view, without materialising the sub-formula.
pub fn dnf_bounds_view(arena: &LineageArena, view: &DnfView, space: &ProbabilitySpace) -> Bounds {
    dnf_bounds_ref(DnfRef::Arena(arena, view), space)
}

/// The representation-generic core of [`dnf_bounds`]: owned DNFs and arena
/// views run the **same** instructions, so their bounds are bit-identical.
pub fn dnf_bounds_ref(dnf: DnfRef<'_>, space: &ProbabilitySpace) -> Bounds {
    if dnf.is_empty() {
        return Bounds::point(0.0);
    }
    if dnf.is_tautology() {
        return Bounds::point(1.0);
    }
    let order: Vec<usize> =
        dnf.clauses_by_probability_desc(space).into_iter().map(|(i, _)| i).collect();
    let mut bounds = bucket_bounds(dnf, space, &order);
    if let Some(fkg_upper) = independent_or_upper_bound_ref(dnf, space) {
        bounds = Bounds::new(bounds.lower.min(fkg_upper), bounds.upper.min(fkg_upper));
    }
    bounds
}

/// The bucket heuristic exactly as written in Figure 3 of the paper (with the
/// descending-probability ordering), without the monotone-DNF upper-bound
/// strengthening applied by [`dnf_bounds`]. Exposed for the heuristic
/// ablation benchmarks.
pub fn dnf_bounds_fig3(dnf: &Dnf, space: &ProbabilitySpace) -> Bounds {
    dnf_bounds_sorted(dnf, space, true)
}

/// The independent-union upper bound for **monotone** DNFs:
/// `P(Φ) ≤ 1 - Π_clauses (1 - P(clause))`.
///
/// A DNF is monotone here when every variable occurs with a single domain
/// value throughout the formula (e.g. purely positive Boolean lineage from
/// tuple-independent tables). Each clause is then a monotone increasing
/// function of the independent atomic events, so by the Harris/FKG
/// inequality the clause negations are positively associated:
/// `P(⋀ ¬cᵢ) ≥ Π P(¬cᵢ)`, i.e. `P(⋁ cᵢ) ≤ 1 - Π (1 - P(cᵢ))`.
///
/// Returns `None` when the DNF is not monotone in this sense (some variable
/// occurs with two different values, as can happen with
/// block-independent-disjoint lineage), in which case the bound would be
/// unsound and must not be used.
pub fn independent_or_upper_bound(dnf: &Dnf, space: &ProbabilitySpace) -> Option<f64> {
    independent_or_upper_bound_ref(DnfRef::Owned(dnf), space)
}

/// Representation-generic core of [`independent_or_upper_bound`].
pub fn independent_or_upper_bound_ref(dnf: DnfRef<'_>, space: &ProbabilitySpace) -> Option<f64> {
    // Monotonicity check: collect every atom, sort by variable, and scan for
    // a variable bound to two different values (one flat sort instead of a
    // tree-map probe per atom).
    let mut atoms: Vec<(VarId, u32)> = Vec::new();
    for i in 0..dnf.clause_count() {
        atoms.extend(dnf.clause_atoms(i).map(|a| (a.var, a.value)));
    }
    atoms.sort_unstable();
    if atoms.windows(2).any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1) {
        return None;
    }
    let mut complement = 1.0;
    for i in 0..dnf.clause_count() {
        complement *= 1.0 - dnf.clause_probability(space, i);
    }
    Some(1.0 - complement)
}

/// Like [`dnf_bounds`] but processing the clauses in their given order (no
/// sorting). Exposed so benchmarks can quantify the effect of the
/// descending-probability refinement (Example 5.2 shows it can tighten both
/// bounds substantially).
pub fn dnf_bounds_sorted(dnf: &Dnf, space: &ProbabilitySpace, sort_descending: bool) -> Bounds {
    if dnf.is_empty() {
        return Bounds::point(0.0);
    }
    if dnf.is_tautology() {
        return Bounds::point(1.0);
    }
    let order: Vec<usize> = if sort_descending {
        dnf.clauses_by_probability_desc(space).into_iter().map(|(i, _)| i).collect()
    } else {
        (0..dnf.len()).collect()
    };
    bucket_bounds(DnfRef::Owned(dnf), space, &order)
}

fn bucket_bounds(dnf: DnfRef<'_>, space: &ProbabilitySpace, order: &[usize]) -> Bounds {
    /// Bucket variables as a sorted flat vector: clause atoms arrive sorted
    /// by variable, so the disjointness test is a two-pointer merge and the
    /// insertion a sorted merge — no tree sets on the hot path. First-fit
    /// placement and the probability recurrence are unchanged, so the
    /// resulting bounds are bit-identical to the map-based implementation.
    struct Bucket {
        vars: Vec<VarId>,
        prob: f64,
    }
    fn disjoint_sorted(a: &[VarId], b: &[VarId]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
    fn merge_sorted(dst: &mut Vec<VarId>, add: &[VarId]) {
        let mut merged = Vec::with_capacity(dst.len() + add.len());
        let (mut i, mut j) = (0, 0);
        while i < dst.len() && j < add.len() {
            if dst[i] <= add[j] {
                merged.push(dst[i]);
                i += 1;
            } else {
                merged.push(add[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&dst[i..]);
        merged.extend_from_slice(&add[j..]);
        *dst = merged;
    }
    let mut buckets: Vec<Bucket> = Vec::new();
    let mut cvars: Vec<VarId> = Vec::new();
    for &i in order {
        cvars.clear();
        cvars.extend(dnf.clause_atoms(i).map(|a| a.var));
        let p = dnf.clause_probability(space, i);
        // First-fit: place the clause into the first bucket it is independent
        // of (no shared variable).
        let slot = buckets.iter().position(|b| disjoint_sorted(&b.vars, &cvars));
        match slot {
            Some(idx) => {
                let b = &mut buckets[idx];
                merge_sorted(&mut b.vars, &cvars);
                b.prob = 1.0 - (1.0 - b.prob) * (1.0 - p);
            }
            None => {
                buckets.push(Bucket { vars: cvars.clone(), prob: p });
            }
        }
    }
    let lower = buckets.iter().map(|b| b.prob).fold(0.0f64, f64::max);
    let upper: f64 = buckets.iter().map(|b| b.prob).sum();
    Bounds::new(lower, upper.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    #[test]
    fn bounds_constructor_clamps_and_orders() {
        let b = Bounds::new(1.4, -0.2);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 1.0);
        let b = Bounds::new(0.7, 0.3);
        assert_eq!(b.lower, 0.3);
        assert_eq!(b.upper, 0.7);
        assert!(Bounds::point(0.5).is_point());
        assert!((Bounds::new(0.2, 0.6).midpoint() - 0.4).abs() < 1e-12);
        assert!(Bounds::new(0.2, 0.6).contains(0.2));
        assert!(!Bounds::new(0.2, 0.6).contains(0.7));
        assert_eq!(Bounds::vacuous().width(), 1.0);
    }

    #[test]
    fn combine_or_matches_independent_union() {
        let b = Bounds::combine_or(vec![Bounds::point(0.3), Bounds::point(0.5)]);
        assert!((b.lower - 0.65).abs() < 1e-12);
        assert!((b.upper - 0.65).abs() < 1e-12);
        // Interval version is monotone.
        let b = Bounds::combine_or(vec![Bounds::new(0.1, 0.2), Bounds::new(0.3, 0.5)]);
        assert!((b.lower - (1.0 - 0.9 * 0.7)).abs() < 1e-12);
        assert!((b.upper - (1.0 - 0.8 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn combine_and_multiplies() {
        let b = Bounds::combine_and(vec![Bounds::new(0.5, 0.6), Bounds::new(0.4, 0.5)]);
        assert!((b.lower - 0.2).abs() < 1e-12);
        assert!((b.upper - 0.3).abs() < 1e-12);
    }

    #[test]
    fn combine_xor_sums_and_clamps() {
        let b = Bounds::combine_xor(vec![Bounds::new(0.5, 0.6), Bounds::new(0.3, 0.35)]);
        assert!((b.lower - 0.8).abs() < 1e-12);
        assert!((b.upper - 0.95).abs() < 1e-12);
        let b = Bounds::combine_xor(vec![Bounds::point(0.7), Bounds::point(0.8)]);
        assert_eq!(b.upper, 1.0);
        assert_eq!(b.lower, 1.0);
    }

    #[test]
    fn empty_combinations_are_identities() {
        assert_eq!(Bounds::combine_or(Vec::new()), Bounds::point(0.0));
        assert_eq!(Bounds::combine_and(Vec::new()), Bounds::point(1.0));
        assert_eq!(Bounds::combine_xor(Vec::new()), Bounds::point(0.0));
    }

    /// Example 5.2 from the paper: with the descending-probability ordering
    /// the first bucket is {c2, c3} with probability 0.842, which becomes the
    /// lower bound; the second bucket is {c1} with probability 0.06, so the
    /// upper bound of the algorithm written in Figure 3 is
    /// 0.842 + 0.06 = 0.902. (The paper's prose states 0.848 for the upper
    /// bound, which is not reproducible from Figure 3; we follow Figure 3.)
    /// The default [`dnf_bounds`] additionally applies the monotone-DNF
    /// independent-union cap, 1 − 0.94·0.79·0.2 = 0.85148, which is tighter.
    /// The exact probability 0.8456 is bracketed in all cases.
    #[test]
    fn example_5_2_bucket_bounds() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let (x, y, z, v) = (vars[0], vars[1], vars[2], vars[3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[x, y]),
            Clause::from_bools(&[x, z]),
            Clause::from_bools(&[v]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let fig3 = dnf_bounds_fig3(&phi, &s);
        assert!((fig3.lower - 0.842).abs() < 1e-9, "lower = {}", fig3.lower);
        assert!((fig3.upper - 0.902).abs() < 1e-9, "upper = {}", fig3.upper);
        assert!(fig3.contains(exact));
        let b = dnf_bounds(&phi, &s);
        assert!((b.lower - 0.842).abs() < 1e-9, "lower = {}", b.lower);
        assert!((b.upper - 0.85148).abs() < 1e-4, "upper = {}", b.upper);
        assert!(b.contains(exact));
    }

    /// Without sorting, the first-fit partitioning of Example 5.2 yields the
    /// looser bounds [0.812, 1.0] reported in the paper.
    #[test]
    fn example_5_2_unsorted_bounds_are_looser() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let (x, y, z, v) = (vars[0], vars[1], vars[2], vars[3]);
        let phi_clauses = vec![
            Clause::from_bools(&[x, y]),
            Clause::from_bools(&[x, z]),
            Clause::from_bools(&[v]),
        ];
        let phi = Dnf::from_clauses(phi_clauses);
        let sorted = dnf_bounds_sorted(&phi, &s, true);
        let unsorted = dnf_bounds_sorted(&phi, &s, false);
        let exact = phi.exact_probability_enumeration(&s);
        assert!(sorted.contains(exact));
        assert!(unsorted.contains(exact));
        assert!(sorted.width() <= unsorted.width() + 1e-12);
        // Note: `Dnf::from_clauses` sorts clauses structurally, so the
        // "unsorted" order is the structural order, not necessarily the
        // insertion order; the bounds are still valid and generally looser.
    }

    #[test]
    fn bounds_of_constants() {
        let (s, _) = bool_space(&[0.5]);
        assert_eq!(dnf_bounds(&Dnf::empty(), &s), Bounds::point(0.0));
        assert_eq!(dnf_bounds(&Dnf::tautology(), &s), Bounds::point(1.0));
    }

    #[test]
    fn single_clause_bounds_are_exact() {
        let (s, vars) = bool_space(&[0.3, 0.6]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        let b = dnf_bounds(&phi, &s);
        assert!(b.is_point());
        assert!((b.lower - 0.18).abs() < 1e-12);
    }

    #[test]
    fn independent_clauses_bounds_are_exact() {
        // All clauses pairwise independent: one bucket, exact probability.
        let (s, vars) = bool_space(&[0.3, 0.6, 0.2]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0]]),
            Clause::from_bools(&[vars[1]]),
            Clause::from_bools(&[vars[2]]),
        ]);
        let b = dnf_bounds(&phi, &s);
        let exact = phi.exact_probability_enumeration(&s);
        assert!(b.is_point());
        assert!((b.lower - exact).abs() < 1e-12);
    }

    /// The monotone-DNF upper bound must bracket the exact probability and
    /// tighten the Figure-3 bound when clauses are positively correlated.
    #[test]
    fn independent_or_upper_bound_is_sound_and_tighter() {
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.6, 0.7]);
        // A "hard pattern" DNF R(X), S(X,Y), T(Y): clauses share variables so
        // the bucket sum saturates at 1 while the FKG bound stays below it.
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3], vars[1]]),
            Clause::from_bools(&[vars[3], vars[2]]),
            Clause::from_bools(&[vars[4], vars[1]]),
            Clause::from_bools(&[vars[4], vars[2]]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let fig3 = dnf_bounds_fig3(&phi, &s);
        let improved = dnf_bounds(&phi, &s);
        let fkg = independent_or_upper_bound(&phi, &s).expect("monotone DNF");
        assert!(exact <= fkg + 1e-12, "FKG bound {fkg} below exact {exact}");
        assert!(improved.contains(exact));
        assert!(fig3.contains(exact));
        assert!(improved.upper <= fig3.upper + 1e-12);
        assert!(improved.upper < 1.0 - 1e-9, "improved upper should not saturate at 1");
    }

    /// The FKG upper bound is refused for non-monotone DNFs (a variable used
    /// with two different domain values), where it would be unsound.
    #[test]
    fn independent_or_upper_bound_rejects_mixed_values() {
        use events::Atom;
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.5, 0.5]);
        let y = s.add_discrete("y", vec![0.5, 0.5]);
        // (x=0 ∧ y=0) ∨ (x=1 ∧ y=1): mutually exclusive clauses; the
        // independent-union bound 1 - (1-0.25)² = 0.4375 would *understate*
        // the true probability 0.5.
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms([Atom::new(x, 0), Atom::new(y, 0)]),
            Clause::from_atoms([Atom::new(x, 1), Atom::new(y, 1)]),
        ]);
        assert_eq!(independent_or_upper_bound(&phi, &s), None);
        let exact = phi.exact_probability_enumeration(&s);
        assert!(dnf_bounds(&phi, &s).contains(exact));
    }

    #[test]
    fn fig3_alias_matches_sorted_bounds() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        assert_eq!(dnf_bounds_fig3(&phi, &s), dnf_bounds_sorted(&phi, &s, true));
    }

    #[test]
    fn bounds_always_bracket_exact_probability() {
        // A few hand-picked correlated DNFs.
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.2, 0.9]);
        let cases = vec![
            vec![
                Clause::from_bools(&[vars[0], vars[1]]),
                Clause::from_bools(&[vars[1], vars[2]]),
                Clause::from_bools(&[vars[2], vars[3]]),
            ],
            vec![
                Clause::from_bools(&[vars[0], vars[1], vars[2]]),
                Clause::from_bools(&[vars[0], vars[3]]),
                Clause::from_bools(&[vars[4]]),
            ],
        ];
        for clauses in cases {
            let phi = Dnf::from_clauses(clauses);
            let b = dnf_bounds(&phi, &s);
            let exact = phi.exact_probability_enumeration(&s);
            assert!(b.contains(exact), "bounds {b:?} exact {exact}");
        }
    }
}
