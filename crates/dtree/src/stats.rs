//! Compilation statistics, mirroring the trace statistics the paper reports
//! in Section VII (node counts by type, subsumed clauses, ⊗-node fraction).

/// Counters collected while compiling or approximating a DNF.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompileStats {
    /// Number of independent-or (⊗) nodes constructed.
    pub or_nodes: usize,
    /// Number of independent-and (⊙) nodes constructed.
    pub and_nodes: usize,
    /// Number of exclusive-or (⊕, Shannon expansion) nodes constructed.
    pub xor_nodes: usize,
    /// Number of leaves whose exact probability was computed (singleton
    /// clauses or constants).
    pub exact_leaves: usize,
    /// Number of leaves *closed* with their bucket bounds instead of being
    /// refined to completion (Section V-D).
    pub closed_leaves: usize,
    /// Number of clauses removed by subsumption across all decomposition
    /// steps.
    pub subsumed_clauses: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Number of bucket-bound computations (leaf bound evaluations) actually
    /// performed (memo misses).
    pub bound_evaluations: usize,
    /// Number of exact sub-formula evaluations actually performed (memo
    /// misses). During a DFS approximation this counts the small leaves whose
    /// complete sub-d-tree was folded; during cached exact evaluation it
    /// counts the memoized decomposition nodes that had to be computed.
    pub exact_evaluations: usize,
    /// Number of exact sub-formula results served from the memo instead of
    /// being recomputed.
    pub exact_cache_hits: usize,
    /// Number of bucket-bound results served from the memo instead of being
    /// recomputed.
    pub bound_cache_hits: usize,
}

impl CompileStats {
    /// Total number of inner nodes constructed.
    pub fn inner_nodes(&self) -> usize {
        self.or_nodes + self.and_nodes + self.xor_nodes
    }

    /// Total number of nodes (inner nodes plus leaves).
    pub fn total_nodes(&self) -> usize {
        self.inner_nodes() + self.exact_leaves + self.closed_leaves
    }

    /// Fraction of inner nodes that are ⊗ nodes (the paper reports ~90% for
    /// tractable queries).
    pub fn or_node_fraction(&self) -> f64 {
        if self.inner_nodes() == 0 {
            0.0
        } else {
            self.or_nodes as f64 / self.inner_nodes() as f64
        }
    }

    /// A single scalar measure of the decomposition effort this run paid:
    /// nodes constructed plus leaf/bound evaluations actually performed
    /// (memo hits are free and excluded). Hardness estimators use this as
    /// the observed cost when calibrating structural predictions against
    /// real runs; it is deterministic, unlike wall-clock time.
    pub fn work(&self) -> usize {
        self.inner_nodes()
            + self.exact_leaves
            + self.closed_leaves
            + self.bound_evaluations
            + self.exact_evaluations
    }

    /// The counter deltas accumulated since an `earlier` snapshot of the same
    /// accumulator (`max_depth` is reported as-of `self`, not as a delta).
    /// This is how a resumed compilation slice reports the work of that slice
    /// alone while the underlying partial d-tree keeps cumulative counters.
    pub fn since(&self, earlier: &CompileStats) -> CompileStats {
        CompileStats {
            or_nodes: self.or_nodes.saturating_sub(earlier.or_nodes),
            and_nodes: self.and_nodes.saturating_sub(earlier.and_nodes),
            xor_nodes: self.xor_nodes.saturating_sub(earlier.xor_nodes),
            exact_leaves: self.exact_leaves.saturating_sub(earlier.exact_leaves),
            closed_leaves: self.closed_leaves.saturating_sub(earlier.closed_leaves),
            subsumed_clauses: self.subsumed_clauses.saturating_sub(earlier.subsumed_clauses),
            max_depth: self.max_depth,
            bound_evaluations: self.bound_evaluations.saturating_sub(earlier.bound_evaluations),
            exact_evaluations: self.exact_evaluations.saturating_sub(earlier.exact_evaluations),
            exact_cache_hits: self.exact_cache_hits.saturating_sub(earlier.exact_cache_hits),
            bound_cache_hits: self.bound_cache_hits.saturating_sub(earlier.bound_cache_hits),
        }
    }

    /// Merges another set of counters into this one (keeping the max depth).
    pub fn merge(&mut self, other: &CompileStats) {
        self.or_nodes += other.or_nodes;
        self.and_nodes += other.and_nodes;
        self.xor_nodes += other.xor_nodes;
        self.exact_leaves += other.exact_leaves;
        self.closed_leaves += other.closed_leaves;
        self.subsumed_clauses += other.subsumed_clauses;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.bound_evaluations += other.bound_evaluations;
        self.exact_evaluations += other.exact_evaluations;
        self.exact_cache_hits += other.exact_cache_hits;
        self.bound_cache_hits += other.bound_cache_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let s = CompileStats {
            or_nodes: 9,
            and_nodes: 1,
            xor_nodes: 0,
            exact_leaves: 5,
            closed_leaves: 2,
            subsumed_clauses: 3,
            max_depth: 4,
            bound_evaluations: 7,
            ..Default::default()
        };
        assert_eq!(s.inner_nodes(), 10);
        assert_eq!(s.total_nodes(), 17);
        assert!((s.or_node_fraction() - 0.9).abs() < 1e-12);
        // work = inner nodes + leaves + evaluations (hits excluded).
        assert_eq!(s.work(), 10 + 5 + 2 + 7);
    }

    #[test]
    fn work_excludes_cache_hits() {
        let s = CompileStats {
            exact_evaluations: 3,
            exact_cache_hits: 100,
            bound_cache_hits: 50,
            ..Default::default()
        };
        assert_eq!(s.work(), 3);
    }

    #[test]
    fn empty_stats_have_zero_fraction() {
        assert_eq!(CompileStats::default().or_node_fraction(), 0.0);
        assert_eq!(CompileStats::default().total_nodes(), 0);
    }

    #[test]
    fn since_reports_deltas_and_current_depth() {
        let earlier = CompileStats { or_nodes: 2, max_depth: 5, ..Default::default() };
        let now = CompileStats {
            or_nodes: 7,
            xor_nodes: 3,
            max_depth: 5,
            bound_evaluations: 4,
            ..Default::default()
        };
        let delta = now.since(&earlier);
        assert_eq!(delta.or_nodes, 5);
        assert_eq!(delta.xor_nodes, 3);
        assert_eq!(delta.bound_evaluations, 4);
        assert_eq!(delta.max_depth, 5);
    }

    #[test]
    fn merge_sums_counters_and_keeps_max_depth() {
        let mut a = CompileStats { or_nodes: 1, max_depth: 3, ..Default::default() };
        let b = CompileStats { or_nodes: 2, xor_nodes: 5, max_depth: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.or_nodes, 3);
        assert_eq!(a.xor_nodes, 5);
        assert_eq!(a.max_depth, 3);
    }
}
