//! d-trees: decomposition trees for exact and approximate confidence
//! computation in probabilistic databases.
//!
//! This crate implements the primary contribution of *Olteanu, Huang, Koch —
//! "Approximate Confidence Computation in Probabilistic Databases", ICDE
//! 2010*:
//!
//! * **Compilation of DNFs into d-trees** (Section IV, Figure 1) using three
//!   decompositions: independent-or (⊗), independent-and (⊙), and Shannon
//!   expansion / exclusive-or (⊕). See [`compile`] and [`DTree`].
//! * **Lower/upper probability bounds** for DNFs via the bucket heuristic of
//!   Figure 3 ([`dnf_bounds`]) and for partial d-trees by monotone bound
//!   propagation (Proposition 5.4, [`DTree::bounds`]).
//! * **Deterministic ε-approximation** of DNF probability, both with an
//!   absolute and a relative error guarantee (Proposition 5.8), using the
//!   incremental, memory-efficient compilation with *leaf closing* of
//!   Section V-D (Lemma 5.11 / Theorem 5.12). See [`ApproxCompiler`].
//! * **Exact confidence computation** that evaluates the d-tree on the fly
//!   without materialising it ([`exact_probability`]), which is polynomial
//!   for all known tractable conjunctive queries without self-joins
//!   (Section VI) when the lineage carries variable-origin metadata.
//! * **Shared sub-formula memoization** ([`SubformulaCache`]): a thread-safe
//!   memo of exact leaf probabilities and bucket bounds keyed by canonical
//!   DNF hash, reused within one approximation run, across the lineages of a
//!   batch, and — scoped to a probability-space generation and bounded by
//!   CLOCK/LRU eviction — across whole batches
//!   ([`ApproxCompiler::run_cached`], [`exact_probability_cached`]).
//!
//! # Quick example
//!
//! ```
//! use events::{ProbabilitySpace, Dnf, Clause};
//! use dtree::{ApproxCompiler, ApproxOptions, ErrorBound, exact_probability, CompileOptions};
//!
//! let mut space = ProbabilitySpace::new();
//! let x = space.add_bool("x", 0.3);
//! let y = space.add_bool("y", 0.2);
//! let z = space.add_bool("z", 0.7);
//! let v = space.add_bool("v", 0.8);
//! let phi = Dnf::from_clauses(vec![
//!     Clause::from_bools(&[x, y]),
//!     Clause::from_bools(&[x, z]),
//!     Clause::from_bools(&[v]),
//! ]);
//!
//! // Exact confidence.
//! let exact = exact_probability(&phi, &space, &CompileOptions::default());
//! assert!((exact.probability - 0.8456).abs() < 1e-9);
//!
//! // Absolute 0.01-approximation.
//! let approx = ApproxCompiler::new(ApproxOptions::absolute(0.01)).run(&phi, &space);
//! assert!(approx.converged);
//! assert!((approx.estimate - 0.8456).abs() <= 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod approx;
mod bounds;
mod cache;
mod compile;
mod exact;
mod node;
mod order;
mod partial;
pub mod reference;
mod resume;
mod stats;

pub use approx::{ApproxCompiler, ApproxOptions, ApproxResult, ErrorBound, RefinementStrategy};
pub use bounds::{
    dnf_bounds, dnf_bounds_fig3, dnf_bounds_ref, dnf_bounds_sorted, dnf_bounds_view,
    independent_or_upper_bound, independent_or_upper_bound_ref, Bounds,
};
pub use cache::{CacheStats, SubformulaCache};
pub use compile::{compile, CompileOptions};
pub use exact::{
    exact_probability, exact_probability_cached, exact_probability_stream, exact_probability_view,
    exact_probability_view_cached, ExactResult,
};
pub use node::DTree;
pub use order::{
    choose_iq_variable, choose_iq_variable_ref, choose_variable, choose_variable_ref, VarOrder,
};
pub use partial::{PartialDTree, PartialNodeId};
pub use resume::{ResumableCompilation, ResumeBudget};
pub use stats::CompileStats;
