//! Materialised partial d-trees with incremental leaf refinement.
//!
//! This module implements the first (simpler) incremental algorithm sketched
//! in Section V-D: keep the partially compiled d-tree in memory, repeatedly
//! pick the open leaf with the widest bounds interval, refine it by one
//! decomposition step, and re-check the ε-approximation condition on the
//! root bounds. The memory-efficient depth-first variant with leaf closing
//! lives in [`crate::approx`].
//!
//! The tree owns a [`LineageArena`]: the input lineage is interned once and
//! every leaf is a [`DnfView`] over the pool, so refinement steps are index
//! manipulation instead of clause-vector copies.

use events::ProbabilitySpace;
use events::{product_factorization_by, Atom, Clause, Dnf, DnfRef, DnfView, LineageArena};

use crate::bounds::{dnf_bounds_ref, Bounds};
use crate::cache::Memo;
use crate::compile::CompileOptions;
use crate::order::choose_variable_ref;
use crate::stats::CompileStats;

/// Identifier of a node inside a [`PartialDTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialNodeId(pub(crate) usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Or,
    And,
    Xor,
}

#[derive(Debug, Clone)]
pub(crate) enum PNode {
    /// An unrefined leaf holding a sub-formula view and its cached bucket
    /// bounds. `exact` marks leaves whose bounds are a point (constants /
    /// single clauses).
    Leaf { view: DnfView, bounds: Bounds, exact: bool },
    /// An inner decomposition node.
    Inner { op: Op, children: Vec<PartialNodeId> },
}

/// A partially compiled d-tree stored in an arena, supporting incremental
/// refinement of its leaves.
#[derive(Debug, Clone)]
pub struct PartialDTree {
    lineage: LineageArena,
    nodes: Vec<PNode>,
    root: PartialNodeId,
    stats: CompileStats,
}

impl PartialDTree {
    /// Creates a partial d-tree consisting of a single leaf for `dnf`,
    /// interning the lineage into the tree's own arena.
    pub fn new(dnf: &Dnf, space: &ProbabilitySpace) -> Self {
        let mut lineage = LineageArena::with_capacity(dnf.len(), 4);
        let root = lineage.intern(dnf);
        PartialDTree::from_parts(lineage, root, space)
    }

    /// Creates a partial d-tree over an existing arena and root view (the
    /// arena is moved into the tree, which keeps growing it during
    /// refinement).
    pub fn from_parts(lineage: LineageArena, root: DnfView, space: &ProbabilitySpace) -> Self {
        let mut tree = PartialDTree {
            lineage,
            nodes: Vec::new(),
            root: PartialNodeId(0),
            stats: CompileStats::default(),
        };
        let root = tree.push_leaf(root, space, None);
        tree.root = root;
        tree
    }

    /// Reassembles a tree from already-built nodes over an arena — the hook
    /// [`crate::resume`] uses to materialise the frontier captured from a
    /// truncated depth-first run without re-interning or re-bounding anything.
    pub(crate) fn from_raw(
        lineage: LineageArena,
        nodes: Vec<PNode>,
        root: PartialNodeId,
        stats: CompileStats,
    ) -> Self {
        PartialDTree { lineage, nodes, root, stats }
    }

    fn push_leaf(
        &mut self,
        view: DnfView,
        space: &ProbabilitySpace,
        memo: Option<&mut Memo<'_>>,
    ) -> PartialNodeId {
        let (bounds, exact) = leaf_bounds(&self.lineage, &view, space, &mut self.stats, memo);
        let id = PartialNodeId(self.nodes.len());
        self.nodes.push(PNode::Leaf { view, bounds, exact });
        id
    }

    pub(crate) fn push_exact_atom_leaf(&mut self, atom: Atom, p: f64) -> PartialNodeId {
        let view = self.lineage.intern_sorted_clauses(&[Clause::singleton(atom)]);
        let id = PartialNodeId(self.nodes.len());
        self.nodes.push(PNode::Leaf { view, bounds: Bounds::point(p), exact: true });
        id
    }

    /// Compilation statistics accumulated so far.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CompileStats {
        &mut self.stats
    }

    pub(crate) fn node(&self, id: PartialNodeId) -> &PNode {
        &self.nodes[id.0]
    }

    pub(crate) fn root_id(&self) -> PartialNodeId {
        self.root
    }

    pub(crate) fn lineage(&self) -> &LineageArena {
        &self.lineage
    }

    pub(crate) fn lineage_mut(&mut self) -> &mut LineageArena {
        &mut self.lineage
    }

    /// Replaces an open leaf with an exact point leaf over the same view —
    /// the resume driver's counterpart of the depth-first compiler's
    /// small-leaf exact fold.
    pub(crate) fn set_leaf_exact(&mut self, id: PartialNodeId, p: f64) {
        if let PNode::Leaf { bounds, exact, .. } = &mut self.nodes[id.0] {
            *bounds = Bounds::point(p);
            *exact = true;
        }
    }

    /// Number of nodes in the arena.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Appends clauses to a leaf's view **in place**, recomputing its bounds
    /// from scratch: the leaf's formula changed, so its previous interval —
    /// and any intersection accumulated against it — is no longer sound.
    /// Part of the delta-maintenance machinery of [`crate::resume`].
    pub(crate) fn append_to_leaf(
        &mut self,
        id: PartialNodeId,
        clauses: &[Clause],
        space: &ProbabilitySpace,
    ) {
        let view = match &mut self.nodes[id.0] {
            PNode::Leaf { view, .. } => std::mem::take(view),
            PNode::Inner { .. } => return,
        };
        let mut view = view;
        self.lineage.append_clauses(&mut view, clauses);
        let (bounds, exact) = leaf_bounds(&self.lineage, &view, space, &mut self.stats, None);
        self.nodes[id.0] = PNode::Leaf { view, bounds, exact };
    }

    /// Pushes a fresh leaf over an owned (not yet interned) clause set.
    pub(crate) fn push_dnf_leaf(&mut self, dnf: &Dnf, space: &ProbabilitySpace) -> PartialNodeId {
        let view = self.lineage.intern(dnf);
        self.push_leaf(view, space, None)
    }

    /// Pushes a fresh inner node over already-pushed children.
    pub(crate) fn push_inner(&mut self, op: Op, children: Vec<PartialNodeId>) -> PartialNodeId {
        let id = PartialNodeId(self.nodes.len());
        self.nodes.push(PNode::Inner { op, children });
        id
    }

    /// Appends a child to an existing inner node (an independent-or node
    /// absorbing a fresh component, or a Shannon node growing a branch for a
    /// previously-empty domain value).
    pub(crate) fn add_child(&mut self, parent: PartialNodeId, child: PartialNodeId) {
        if let PNode::Inner { children, .. } = &mut self.nodes[parent.0] {
            children.push(child);
        }
    }

    /// Replaces a node (and implicitly orphans its former subtree) with an
    /// open leaf over `dnf` — the dirty-subtree fallback when a delta breaks
    /// the subtree's decomposition. Orphaned descendants stay in the node
    /// vector (ids must remain stable) but are unreachable from the root.
    pub(crate) fn replace_with_leaf(
        &mut self,
        id: PartialNodeId,
        dnf: &Dnf,
        space: &ProbabilitySpace,
    ) {
        let view = self.lineage.intern(dnf);
        let (bounds, exact) = leaf_bounds(&self.lineage, &view, space, &mut self.stats, None);
        self.nodes[id.0] = PNode::Leaf { view, bounds, exact };
    }

    /// The single atom of an exact singleton-atom leaf (the leaves
    /// common-atom factoring and Shannon branches produce), or `None`.
    pub(crate) fn leaf_single_atom(&self, id: PartialNodeId) -> Option<Atom> {
        match self.node(id) {
            PNode::Leaf { view, exact, .. }
                if *exact && view.len() == 1 && view.clause_len(&self.lineage, 0) == 1 =>
            {
                view.clause(&self.lineage, 0).next()
            }
            _ => None,
        }
    }

    /// Collects the variables mentioned anywhere in the subtree rooted at
    /// `id`. Every leaf keeps its view (exact folds included), so the union
    /// of leaf variables equals the variables of the subtree's formula.
    pub(crate) fn subtree_vars(
        &self,
        id: PartialNodeId,
        out: &mut std::collections::BTreeSet<events::VarId>,
    ) {
        match self.node(id) {
            PNode::Leaf { view, .. } => out.extend(view.vars(&self.lineage)),
            PNode::Inner { children, .. } => {
                for &c in children {
                    self.subtree_vars(c, out);
                }
            }
        }
    }

    /// Reconstructs the clause set of the formula the subtree rooted at `id`
    /// represents, from the decomposition itself:
    ///
    /// * a leaf contributes its view's clauses;
    /// * ⊗ children are independent disjuncts — union;
    /// * ⊕ branches are mutually exclusive disjuncts (`Φ = ⋁ᵤ v=u ∧ Φ|ᵤ`) —
    ///   union;
    /// * ⊙ children multiply — cross-product clause merge (lossless for both
    ///   common-atom factoring and the relational product factorization,
    ///   whose factor cross product is the original clause set by
    ///   construction).
    ///
    /// Appended clauses always land in leaf views, so this is current after
    /// any number of delta applications — it is what the dirty-subtree
    /// fallback rebuilds from.
    pub(crate) fn node_formula(&self, id: PartialNodeId) -> Vec<Clause> {
        match self.node(id) {
            PNode::Leaf { view, .. } => {
                (0..view.len()).map(|i| Clause::from_atoms(view.clause(&self.lineage, i))).collect()
            }
            PNode::Inner { op, children } => match op {
                Op::Or | Op::Xor => children.iter().flat_map(|&c| self.node_formula(c)).collect(),
                Op::And => {
                    let mut acc = vec![Clause::empty()];
                    for &c in children {
                        let factor = self.node_formula(c);
                        let mut next = Vec::with_capacity(acc.len() * factor.len());
                        for a in &acc {
                            for b in &factor {
                                let merged = a.and(b);
                                if merged.is_consistent() {
                                    next.push(merged);
                                }
                            }
                        }
                        acc = next;
                    }
                    acc
                }
            },
        }
    }

    /// Current bounds of the whole tree (Proposition 5.4), computed bottom-up
    /// from the cached leaf bounds.
    pub fn bounds(&self, space: &ProbabilitySpace) -> Bounds {
        let _ = space; // leaf bounds are cached; parameter kept for symmetry
        self.node_bounds(self.root)
    }

    fn node_bounds(&self, id: PartialNodeId) -> Bounds {
        match &self.nodes[id.0] {
            PNode::Leaf { bounds, .. } => *bounds,
            PNode::Inner { op, children } => {
                let child_bounds = children.iter().map(|&c| self.node_bounds(c));
                match op {
                    Op::Or => Bounds::combine_or(child_bounds),
                    Op::And => Bounds::combine_and(child_bounds),
                    Op::Xor => Bounds::combine_xor(child_bounds),
                }
            }
        }
    }

    /// Returns the open (non-exact) leaf with the widest bounds interval, or
    /// `None` if every leaf is exact (the tree is complete).
    pub fn widest_open_leaf(&self) -> Option<PartialNodeId> {
        let mut best: Option<(PartialNodeId, f64)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if let PNode::Leaf { bounds, exact, .. } = node {
                if *exact {
                    continue;
                }
                let w = bounds.width();
                if best.map(|(_, bw)| w > bw).unwrap_or(true) {
                    best = Some((PartialNodeId(i), w));
                }
            }
        }
        best.map(|(id, _)| id)
    }

    /// `true` when every leaf is exact, i.e. the d-tree is complete.
    pub fn is_complete(&self) -> bool {
        self.nodes.iter().all(|n| match n {
            PNode::Leaf { exact, .. } => *exact,
            PNode::Inner { .. } => true,
        })
    }

    /// Refines the given leaf by one decomposition step of Figure 1 (replacing
    /// the leaf with an inner node over new leaves). Returns `false` if the
    /// node is already exact or is not a leaf.
    pub fn refine(
        &mut self,
        id: PartialNodeId,
        space: &ProbabilitySpace,
        opts: &CompileOptions,
    ) -> bool {
        self.refine_inner(id, space, opts, None)
    }

    /// Like [`PartialDTree::refine`], but with a memo layered over the bucket
    /// bounds of the new leaves, so a resumed compilation reuses bounds
    /// computed by earlier slices (or other lineages sharing the same
    /// [`crate::SubformulaCache`]). Bit-identical to the memo-less path:
    /// cached bounds are exactly what would be recomputed.
    pub(crate) fn refine_with_memo(
        &mut self,
        id: PartialNodeId,
        space: &ProbabilitySpace,
        opts: &CompileOptions,
        memo: &mut Memo<'_>,
    ) -> bool {
        self.refine_inner(id, space, opts, Some(memo))
    }

    fn refine_inner(
        &mut self,
        id: PartialNodeId,
        space: &ProbabilitySpace,
        opts: &CompileOptions,
        mut memo: Option<&mut Memo<'_>>,
    ) -> bool {
        let (view, exact) = match &self.nodes[id.0] {
            PNode::Leaf { view, exact, .. } => (view.clone(), *exact),
            PNode::Inner { .. } => return false,
        };
        if exact {
            return false;
        }

        // Step 1: subsumption removal.
        let (view, removed) = view.remove_subsumed(&self.lineage);
        self.stats.subsumed_clauses += removed;

        if view.len() <= 1 || view.is_tautology(&self.lineage) {
            let p = if view.is_empty() {
                0.0
            } else if view.is_tautology(&self.lineage) {
                1.0
            } else {
                view.clause_probability(&self.lineage, space, 0)
            };
            self.stats.exact_leaves += 1;
            self.nodes[id.0] = PNode::Leaf { view, bounds: Bounds::point(p), exact: true };
            return true;
        }

        // Step 2: independent-or.
        let components = view.independent_components(&self.lineage);
        if components.len() > 1 {
            self.stats.or_nodes += 1;
            let children: Vec<PartialNodeId> = components
                .into_iter()
                .map(|c| self.push_leaf(c, space, memo.as_deref_mut()))
                .collect();
            self.nodes[id.0] = PNode::Inner { op: Op::Or, children };
            return true;
        }

        // Step 3a: common-atom factoring.
        let common = view.common_atoms(&self.lineage);
        if !common.is_empty() {
            self.stats.and_nodes += 1;
            self.stats.exact_leaves += common.len();
            let vars: Vec<_> = common.iter().map(|a| a.var).collect();
            let rest = view.strip_vars(&mut self.lineage, &vars);
            let mut children: Vec<PartialNodeId> =
                common.iter().map(|a| self.push_exact_atom_leaf(*a, space.atom_prob(*a))).collect();
            children.push(self.push_leaf(rest, space, memo.as_deref_mut()));
            self.nodes[id.0] = PNode::Inner { op: Op::And, children };
            return true;
        }

        // Step 3b: relational product factorization.
        if let Some(origins) = &opts.origins {
            let factors =
                product_factorization_by(view.len(), |i| view.clause(&self.lineage, i), origins);
            if let Some(factors) = factors {
                self.stats.and_nodes += 1;
                let children: Vec<PartialNodeId> = factors
                    .into_iter()
                    .map(|clauses| {
                        let factor = self.lineage.intern_sorted_clauses(&clauses);
                        self.push_leaf(factor, space, memo.as_deref_mut())
                    })
                    .collect();
                self.nodes[id.0] = PNode::Inner { op: Op::And, children };
                return true;
            }
        }

        // Step 4: Shannon expansion.
        let var = choose_variable_ref(
            DnfRef::Arena(&self.lineage, &view),
            &opts.var_order,
            opts.origins.as_ref(),
        )
        .expect("non-constant DNF mentions a variable");
        self.stats.xor_nodes += 1;
        let mut branches = Vec::new();
        for (value, cofactor) in view.shannon_cofactors(&mut self.lineage, var, space) {
            self.stats.and_nodes += 1;
            self.stats.exact_leaves += 1;
            let atom_leaf =
                self.push_exact_atom_leaf(Atom::new(var, value), space.prob(var, value));
            let cof_leaf = self.push_leaf(cofactor, space, memo.as_deref_mut());
            let branch = PartialNodeId(self.nodes.len());
            self.nodes.push(PNode::Inner { op: Op::And, children: vec![atom_leaf, cof_leaf] });
            branches.push(branch);
        }
        self.nodes[id.0] = PNode::Inner { op: Op::Xor, children: branches };
        true
    }
}

fn leaf_bounds(
    arena: &LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    stats: &mut CompileStats,
    memo: Option<&mut Memo<'_>>,
) -> (Bounds, bool) {
    if view.is_empty() {
        return (Bounds::point(0.0), true);
    }
    if view.is_tautology(arena) {
        return (Bounds::point(1.0), true);
    }
    if view.len() == 1 {
        return (Bounds::point(view.clause_probability(arena, space, 0)), true);
    }
    if let Some(memo) = memo {
        let key = view.hash(arena);
        if let Some(b) = memo.get_bounds(key) {
            stats.bound_cache_hits += 1;
            return (b, false);
        }
        let b = dnf_bounds_ref(DnfRef::Arena(arena, view), space);
        stats.bound_evaluations += 1;
        memo.put_bounds(key, view.required_watermark(arena), b);
        return (b, false);
    }
    stats.bound_evaluations += 1;
    (dnf_bounds_ref(DnfRef::Arena(arena, view), space), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::dnf_bounds;
    use events::VarId;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn chain_dnf(vars: &[VarId]) -> Dnf {
        Dnf::from_clauses((0..vars.len() - 1).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])))
    }

    #[test]
    fn refinement_tightens_bounds_until_exact() {
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.6, 0.7]);
        let phi = chain_dnf(&vars);
        let exact = phi.exact_probability_enumeration(&s);
        let mut tree = PartialDTree::new(&phi, &s);
        let mut prev_width = tree.bounds(&s).width();
        assert!(tree.bounds(&s).contains(exact));
        let mut iterations = 0;
        while let Some(leaf) = tree.widest_open_leaf() {
            assert!(tree.refine(leaf, &s, &CompileOptions::default()));
            let b = tree.bounds(&s);
            assert!(b.contains(exact), "bounds {b:?} lost exact {exact}");
            iterations += 1;
            assert!(iterations < 1000, "refinement did not terminate");
            prev_width = prev_width.max(b.width());
        }
        assert!(tree.is_complete());
        let final_bounds = tree.bounds(&s);
        assert!(final_bounds.is_point());
        assert!((final_bounds.lower - exact).abs() < 1e-9);
    }

    #[test]
    fn refine_on_exact_leaf_is_noop() {
        let (s, vars) = bool_space(&[0.5, 0.5]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        let mut tree = PartialDTree::new(&phi, &s);
        assert!(tree.is_complete());
        assert_eq!(tree.widest_open_leaf(), None);
        let root = PartialNodeId(0);
        assert!(!tree.refine(root, &s, &CompileOptions::default()));
    }

    #[test]
    fn stats_track_decompositions() {
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.6]);
        // Two independent pairs: one ⊗ refinement then exact single clauses.
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let mut tree = PartialDTree::new(&phi, &s);
        let leaf = tree.widest_open_leaf().unwrap();
        tree.refine(leaf, &s, &CompileOptions::default());
        assert_eq!(tree.stats().or_nodes, 1);
        assert!(tree.is_complete());
        assert!(tree.num_nodes() >= 3);
    }

    #[test]
    fn bounds_of_fresh_tree_match_bucket_heuristic() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        let tree = PartialDTree::new(&phi, &s);
        let expected = dnf_bounds(&phi, &s);
        assert_eq!(tree.bounds(&s), expected);
    }
}
