//! Suspend/resume for anytime approximation: persistent d-tree frontiers
//! with priority-driven bound tightening.
//!
//! The depth-first compiler of [`crate::approx`] is *anytime*: truncate it
//! with a step or wall-clock budget and it returns sound `[L, U]` bounds.
//! But a truncated run used to throw its partial d-tree away, so buying the
//! interval one more millisecond of tightening meant recompiling from
//! scratch. This module keeps the frontier alive instead, following the
//! blueprint of the anytime-approximation literature: capture the partial
//! d-tree the truncated run materialised, order its open leaves by their
//! contribution to the global bound width, and let
//! [`ResumableCompilation::resume`] continue the expansion — no re-interning,
//! no re-exploration of settled subtrees.
//!
//! # Priorities
//!
//! Every open leaf carries a *width-contribution factor*: the derivative of
//! the root interval with respect to the leaf interval, accumulated top-down
//! through the combine rules of Proposition 5.4 (for an ⊗ child the sibling
//! product `Π (1 − Lⱼ)`, for an ⊙ child `Π Uⱼ`, for an ⊕ child `1`). The
//! priority of a leaf is `factor × width` — an estimate of how much root
//! width disappears if the leaf is resolved exactly. Factors are computed
//! when a leaf enters the frontier and are not refreshed as siblings tighten;
//! they order the work, they never affect soundness, and keeping them frozen
//! keeps the expansion order deterministic. Ties are broken by insertion
//! order, so a resumed run is a pure function of (frontier, budget).
//!
//! # Monotonicity
//!
//! Each refinement replaces a leaf's interval by the intersection of its old
//! interval with the freshly computed one, and re-combined ancestor intervals
//! are likewise intersected with their previous values. Both the old and the
//! new interval are sound, so their intersection is; consequently the root
//! interval of a resumed compilation *never widens* — each slice returns
//! bounds at least as tight as the last, regardless of how the total budget
//! is sliced.
//!
//! # Cache invalidation
//!
//! A handle is pinned to the probability-space generation and watermark it
//! was captured under, exactly like [`crate::SubformulaCache`] entries. If
//! the space's generation moved (an in-place mutation), every cached leaf
//! bound in the frontier is potentially stale, and the handle **fails
//! closed**: `resume` returns vacuous `[0, 1]` non-converged bounds and the
//! handle is poisoned permanently. Append-only growth (same generation,
//! higher watermark) is safe and the handle keeps working.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use events::{Clause, LineageArena, ProbabilitySpace};

use crate::approx::{ApproxOptions, ApproxResult, CapturedNode, ErrorBound, EXACT_LEAF_VARS};
use crate::bounds::Bounds;
use crate::cache::{Memo, SubformulaCache};
use crate::compile::CompileOptions;
use crate::partial::{PNode, PartialDTree, PartialNodeId};
use crate::stats::CompileStats;

/// Budget for one [`ResumableCompilation::resume`] slice. Both limits may be
/// combined; an exhausted (or zero) budget makes `resume` return promptly
/// with the current bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResumeBudget {
    /// Maximum number of refinement steps for this slice (`None` =
    /// unlimited).
    pub max_steps: Option<usize>,
    /// Wall-clock limit for this slice (`None` = unlimited).
    pub timeout: Option<Duration>,
}

impl ResumeBudget {
    /// No limits: resume until convergence (or a complete tree).
    pub fn unlimited() -> Self {
        ResumeBudget::default()
    }

    /// A pure step budget.
    pub fn steps(max_steps: usize) -> Self {
        ResumeBudget { max_steps: Some(max_steps), timeout: None }
    }

    /// A pure wall-clock budget.
    pub fn timeout(timeout: Duration) -> Self {
        ResumeBudget { max_steps: None, timeout: Some(timeout) }
    }

    fn exhausted(&self, steps: usize, start: Instant) -> bool {
        if let Some(max) = self.max_steps {
            if steps >= max {
                return true;
            }
        }
        if let Some(timeout) = self.timeout {
            if start.elapsed() >= timeout {
                return true;
            }
        }
        false
    }
}

/// One frontier entry: an open leaf keyed by its width-contribution priority.
/// Entries are invalidated lazily — a popped entry whose `stamp` no longer
/// matches the leaf's current stamp is skipped.
#[derive(Debug, Clone)]
struct FrontierEntry {
    priority: f64,
    seq: u64,
    node: usize,
    stamp: u64,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for FrontierEntry {}

impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; ties pop in insertion order (smaller seq
        // first) so the expansion order is fully deterministic.
        self.priority.total_cmp(&other.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A suspended approximate compilation: the partial d-tree frontier of a
/// budget-truncated [`crate::ApproxCompiler`] run, resumable in further
/// budgeted slices that monotonically tighten the bounds.
///
/// Obtained from [`crate::ApproxCompiler::run_resumable`] when the run does
/// not converge within its budget. See the module documentation in `resume.rs` for
/// the refinement order, the monotonicity guarantee, and the fail-closed
/// behaviour under probability-space invalidation.
#[derive(Debug, Clone)]
pub struct ResumableCompilation {
    tree: PartialDTree,
    error: ErrorBound,
    compile: CompileOptions,
    heap: BinaryHeap<FrontierEntry>,
    /// Current (clamped) bounds per node — the monotone refinement state.
    cur: Vec<Bounds>,
    parent: Vec<Option<usize>>,
    /// Width-contribution factor per node, frozen at frontier entry.
    factor: Vec<f64>,
    /// Lazy-invalidation stamps; bumped when a leaf leaves the frontier.
    stamp: Vec<u64>,
    seq: u64,
    open_leaves: usize,
    total_steps: usize,
    total_elapsed: Duration,
    generation: u64,
    watermark: u64,
    poisoned: bool,
}

/// Reconstructs the [`PartialDTree`] a truncated DFS run materialised from
/// its captured node stack, moving the run's arena into the tree.
pub(crate) fn tree_from_capture(
    mut arena: LineageArena,
    root: CapturedNode,
    stats: CompileStats,
) -> PartialDTree {
    let mut nodes = Vec::new();
    let root_id = build_nodes(&mut arena, &mut nodes, root);
    PartialDTree::from_raw(arena, nodes, root_id, stats)
}

fn build_nodes(
    arena: &mut LineageArena,
    nodes: &mut Vec<PNode>,
    cap: CapturedNode,
) -> PartialNodeId {
    match cap {
        CapturedNode::Leaf { view, bounds, exact } => {
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Leaf { view, bounds, exact });
            id
        }
        CapturedNode::Atom { atom, p } => {
            let view = arena.intern_sorted_clauses(&[Clause::singleton(atom)]);
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Leaf { view, bounds: Bounds::point(p), exact: true });
            id
        }
        CapturedNode::Inner { op, children } => {
            let kids: Vec<PartialNodeId> =
                children.into_iter().map(|c| build_nodes(arena, nodes, c)).collect();
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Inner { op, children: kids });
            id
        }
    }
}

/// Intersects two sound intervals. When floating-point rounding makes them
/// (barely) disjoint the result collapses deterministically to the crossing
/// point via [`Bounds::new`]'s reordering.
fn intersect(a: Bounds, b: Bounds) -> Bounds {
    Bounds::new(a.lower.max(b.lower), a.upper.min(b.upper))
}

impl ResumableCompilation {
    /// Builds a handle around a partial d-tree whose truncated run produced
    /// `result`: computes per-node bounds bottom-up (bit-identical to the
    /// run's output), width-contribution factors top-down, and seeds the
    /// frontier queue with every open leaf.
    pub(crate) fn from_tree(
        tree: PartialDTree,
        opts: &ApproxOptions,
        result: &ApproxResult,
        space: &ProbabilitySpace,
    ) -> Self {
        let n = tree.num_nodes();
        let mut handle = ResumableCompilation {
            tree,
            error: opts.error,
            compile: opts.compile.clone(),
            heap: BinaryHeap::new(),
            cur: vec![Bounds::vacuous(); n],
            parent: vec![None; n],
            factor: vec![0.0; n],
            stamp: vec![0; n],
            seq: 0,
            open_leaves: 0,
            total_steps: result.steps,
            total_elapsed: result.elapsed,
            generation: space.generation(),
            watermark: space.watermark(),
            poisoned: false,
        };
        let root = handle.root_index();
        handle.fill_subtree(root);
        handle.assign_factors(root, 1.0);
        debug_assert_eq!(
            handle.cur[root].lower.to_bits(),
            result.lower.to_bits(),
            "reconstructed frontier bounds must match the truncated run"
        );
        debug_assert_eq!(handle.cur[root].upper.to_bits(), result.upper.to_bits());
        handle
    }

    fn root_index(&self) -> usize {
        self.tree.root_id().0
    }

    /// Current bounds of the suspended compilation (vacuous if the handle
    /// failed closed).
    pub fn bounds(&self) -> Bounds {
        if self.poisoned {
            Bounds::vacuous()
        } else {
            self.cur[self.root_index()]
        }
    }

    /// Remaining interval width `U − L` — the quantity further resumption
    /// spends budget to shrink. Schedulers use this to prioritise handles.
    pub fn width(&self) -> f64 {
        self.bounds().width()
    }

    /// `true` when the bounds already satisfy the requested error guarantee.
    pub fn is_converged(&self) -> bool {
        !self.poisoned && self.error.satisfied_by(self.bounds())
    }

    /// `true` when the handle failed closed because the probability space it
    /// was captured under was invalidated (generation moved, or the space
    /// regressed behind the captured watermark). A poisoned handle stays
    /// poisoned; recompute from scratch against the new space.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of open leaves currently on the frontier.
    pub fn frontier_len(&self) -> usize {
        self.open_leaves
    }

    /// Total refinement steps across the initial run and every resumed slice.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Total wall-clock time across the initial run and every resumed slice.
    pub fn total_elapsed(&self) -> Duration {
        self.total_elapsed
    }

    /// Cumulative compilation statistics of the underlying partial d-tree.
    pub fn stats(&self) -> &CompileStats {
        self.tree.stats()
    }

    /// The probability-space generation this handle is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Continues the suspended compilation for one budgeted slice, returning
    /// the (monotonically tightened) bounds reached when the budget ran out —
    /// or converged bounds if the error guarantee was met first. The returned
    /// [`ApproxResult`] carries slice-local `steps`/`stats`/`elapsed`;
    /// cumulative totals live on the handle
    /// ([`ResumableCompilation::total_steps`],
    /// [`ResumableCompilation::total_elapsed`]).
    pub fn resume(&mut self, space: &ProbabilitySpace, budget: ResumeBudget) -> ApproxResult {
        self.resume_with(space, budget, None)
    }

    /// Like [`ResumableCompilation::resume`] with a shared
    /// [`SubformulaCache`] layered behind the slice's memo, so leaf bounds
    /// and small-leaf exact folds are reused across slices and lineages.
    /// Bit-identical to the uncached path.
    pub fn resume_cached(
        &mut self,
        space: &ProbabilitySpace,
        budget: ResumeBudget,
        cache: &SubformulaCache,
    ) -> ApproxResult {
        self.resume_with(space, budget, Some(cache))
    }

    fn resume_with(
        &mut self,
        space: &ProbabilitySpace,
        budget: ResumeBudget,
        cache: Option<&SubformulaCache>,
    ) -> ApproxResult {
        let start = Instant::now();
        if self.poisoned
            || space.generation() != self.generation
            || space.watermark() < self.watermark
        {
            // Fail closed: the frontier's cached bounds may be stale.
            self.poisoned = true;
            let elapsed = start.elapsed();
            self.total_elapsed += elapsed;
            let vacuous = Bounds::vacuous();
            return ApproxResult {
                lower: vacuous.lower,
                upper: vacuous.upper,
                estimate: self.error.estimate_from(vacuous),
                converged: false,
                steps: 0,
                stats: CompileStats::default(),
                elapsed,
            };
        }
        // Append-only growth is safe; advance so later regressions are
        // detected relative to the newest space seen.
        self.watermark = space.watermark();
        let stats_before = *self.tree.stats();
        let mut memo = Memo::with_shared(cache, self.generation, self.watermark);
        let mut slice_steps = 0usize;
        loop {
            let root_bounds = self.cur[self.root_index()];
            if self.error.satisfied_by(root_bounds) {
                break;
            }
            if budget.exhausted(slice_steps, start) {
                break;
            }
            let Some(entry) = self.heap.pop() else {
                // Complete tree (or only zero-width open leaves left): the
                // bounds are as tight as this frontier can make them.
                break;
            };
            if entry.stamp != self.stamp[entry.node] {
                continue; // invalidated entry, not a refinement step
            }
            self.refine_frontier(entry.node, space, &mut memo);
            slice_steps += 1;
        }
        self.total_steps += slice_steps;
        let elapsed = start.elapsed();
        self.total_elapsed += elapsed;
        let bounds = self.cur[self.root_index()];
        ApproxResult {
            lower: bounds.lower,
            upper: bounds.upper,
            estimate: self.error.estimate_from(bounds),
            converged: self.error.satisfied_by(bounds),
            steps: slice_steps,
            stats: self.tree.stats().since(&stats_before),
            elapsed,
        }
    }

    /// Refines one frontier leaf: exact-folds small leaves (mirroring the
    /// DFS fast path), otherwise applies one Figure-1 decomposition step,
    /// then clamps the node's interval against its previous value and
    /// re-propagates (with clamping) along the path to the root.
    fn refine_frontier(&mut self, node: usize, space: &ProbabilitySpace, memo: &mut Memo<'_>) {
        let old = self.cur[node];
        let f = self.factor[node];
        self.stamp[node] += 1;
        self.open_leaves = self.open_leaves.saturating_sub(1);

        let id = PartialNodeId(node);
        let view = match self.tree.node(id) {
            PNode::Leaf { view, .. } => view.clone(),
            PNode::Inner { .. } => return, // stale bookkeeping; nothing to do
        };

        if !view.num_vars_exceeds(self.tree.lineage(), EXACT_LEAF_VARS) {
            // Small leaf: fold its complete sub-d-tree, memoized exactly like
            // the depth-first compiler's `memo_exact`.
            let key = view.hash(self.tree.lineage());
            let p = if let Some(p) = memo.get_exact(key) {
                self.tree.stats_mut().exact_cache_hits += 1;
                p
            } else {
                let r = crate::exact::exact_probability_view(
                    self.tree.lineage_mut(),
                    &view,
                    space,
                    &self.compile,
                );
                let required = view.required_watermark(self.tree.lineage());
                let stats = self.tree.stats_mut();
                stats.exact_evaluations += 1;
                stats.or_nodes += r.stats.or_nodes;
                stats.and_nodes += r.stats.and_nodes;
                stats.xor_nodes += r.stats.xor_nodes;
                memo.put_exact(key, required, r.probability);
                r.probability
            };
            self.tree.stats_mut().exact_leaves += 1;
            self.tree.set_leaf_exact(id, p);
            self.cur[node] = intersect(Bounds::point(p), old);
        } else {
            let before = self.tree.num_nodes();
            self.tree.refine_with_memo(id, space, &self.compile, memo);
            let n = self.tree.num_nodes();
            self.parent.resize(n, None);
            self.cur.resize(n, Bounds::vacuous());
            self.factor.resize(n, 0.0);
            self.stamp.resize(n, 0);
            debug_assert!(n >= before);
            // The node is now either an exact leaf (rewritten in place) or an
            // inner node over freshly pushed children; (re)initialise the new
            // subtree's bounds bottom-up and its factors top-down, seeding
            // the frontier with the new open leaves.
            self.fill_subtree(node);
            self.assign_factors(node, f);
            self.cur[node] = intersect(self.cur[node], old);
        }
        self.propagate_up(node);
    }

    /// Sets parent links and computes `cur` bounds bottom-up for the subtree
    /// rooted at `id` (used for the initial capture and for subtrees created
    /// by a refinement step).
    fn fill_subtree(&mut self, id: usize) {
        match self.tree.node(PartialNodeId(id)) {
            PNode::Leaf { bounds, .. } => {
                self.cur[id] = *bounds;
            }
            PNode::Inner { op, children } => {
                let op = *op;
                let kids: Vec<usize> = children.iter().map(|c| c.0).collect();
                for &k in &kids {
                    self.parent[k] = Some(id);
                    self.fill_subtree(k);
                }
                self.cur[id] = self.combine(op, &kids);
            }
        }
    }

    /// Assigns width-contribution factors top-down from `f` at `id` and
    /// pushes every open leaf of the subtree onto the frontier queue.
    fn assign_factors(&mut self, id: usize, f: f64) {
        match self.tree.node(PartialNodeId(id)) {
            PNode::Leaf { exact, .. } => {
                let exact = *exact;
                let width = self.cur[id].width();
                if !exact && width > 0.0 {
                    self.factor[id] = f;
                    self.open_leaves += 1;
                    self.seq += 1;
                    self.heap.push(FrontierEntry {
                        priority: f * width,
                        seq: self.seq,
                        node: id,
                        stamp: self.stamp[id],
                    });
                }
            }
            PNode::Inner { op, children } => {
                let op = *op;
                let kids: Vec<usize> = children.iter().map(|c| c.0).collect();
                self.factor[id] = f;
                let child_factors = self.child_factors(op, &kids, f);
                for (&k, fk) in kids.iter().zip(child_factors) {
                    self.assign_factors(k, fk);
                }
            }
        }
    }

    /// The factor each child inherits through an inner node: the partial
    /// derivative of the node's combine rule with respect to that child,
    /// evaluated at the siblings' current bounds (lower bounds for ⊗ — the
    /// sensitivity of `1 − Π(1 − pⱼ)` — and upper bounds for ⊙).
    fn child_factors(&self, op: crate::partial::Op, kids: &[usize], f: f64) -> Vec<f64> {
        use crate::partial::Op;
        match op {
            Op::Xor => vec![f; kids.len()],
            Op::Or | Op::And => {
                let terms: Vec<f64> = kids
                    .iter()
                    .map(|&k| match op {
                        Op::Or => 1.0 - self.cur[k].lower,
                        Op::And => self.cur[k].upper,
                        Op::Xor => unreachable!(),
                    })
                    .collect();
                // Product of all terms except each index, via prefix/suffix
                // products (⊗ nodes can be very wide).
                let n = terms.len();
                let mut prefix = vec![1.0; n + 1];
                for i in 0..n {
                    prefix[i + 1] = prefix[i] * terms[i];
                }
                let mut suffix = vec![1.0; n + 1];
                for i in (0..n).rev() {
                    suffix[i] = suffix[i + 1] * terms[i];
                }
                (0..n).map(|i| f * prefix[i] * suffix[i + 1]).collect()
            }
        }
    }

    fn combine(&self, op: crate::partial::Op, kids: &[usize]) -> Bounds {
        use crate::partial::Op;
        let child_bounds = kids.iter().map(|&k| self.cur[k]);
        match op {
            Op::Or => Bounds::combine_or(child_bounds),
            Op::And => Bounds::combine_and(child_bounds),
            Op::Xor => Bounds::combine_xor(child_bounds),
        }
    }

    /// Recombines every ancestor of `node`, intersecting each with its
    /// previous interval so the root bounds are monotone non-widening even
    /// under floating-point rounding.
    fn propagate_up(&mut self, mut node: usize) {
        while let Some(p) = self.parent[node] {
            let (op, kids) = match self.tree.node(PartialNodeId(p)) {
                PNode::Inner { op, children } => {
                    (*op, children.iter().map(|c| c.0).collect::<Vec<usize>>())
                }
                PNode::Leaf { .. } => unreachable!("parents are inner nodes"),
            };
            let combined = self.combine(op, &kids);
            self.cur[p] = intersect(combined, self.cur[p]);
            node = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{ApproxCompiler, ApproxOptions, RefinementStrategy};
    use events::{Dnf, VarId};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    /// A chain DNF over enough variables that truncated budgets leave real
    /// work behind.
    fn hard_chain(n: usize) -> (ProbabilitySpace, Dnf) {
        let probs: Vec<f64> = (0..n).map(|i| 0.15 + 0.03 * (i as f64 % 22.0)).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..n - 1).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        (s, phi)
    }

    #[test]
    fn converged_run_returns_no_handle_and_matches_plain_run() {
        let (s, phi) = hard_chain(20);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(0.01));
        let plain = compiler.run(&phi, &s);
        let (resumable, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(plain.converged && resumable.converged);
        assert!(handle.is_none());
        assert_eq!(plain.estimate.to_bits(), resumable.estimate.to_bits());
        assert_eq!(plain.lower.to_bits(), resumable.lower.to_bits());
        assert_eq!(plain.upper.to_bits(), resumable.upper.to_bits());
        assert_eq!(plain.steps, resumable.steps);
        assert_eq!(plain.stats, resumable.stats);
    }

    #[test]
    fn truncated_run_is_bit_identical_to_plain_truncated_run() {
        let (s, phi) = hard_chain(40);
        for max_steps in [0, 1, 2, 5, 10] {
            let compiler =
                ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(max_steps));
            let plain = compiler.run(&phi, &s);
            let (resumable, handle) = compiler.run_resumable(&phi, &s, None);
            assert_eq!(plain.lower.to_bits(), resumable.lower.to_bits(), "steps {max_steps}");
            assert_eq!(plain.upper.to_bits(), resumable.upper.to_bits());
            assert_eq!(plain.steps, resumable.steps);
            assert_eq!(plain.stats, resumable.stats);
            assert_eq!(plain.converged, resumable.converged);
            if !resumable.converged {
                let h = handle.expect("non-converged run yields a handle");
                assert_eq!(h.bounds().lower.to_bits(), resumable.lower.to_bits());
                assert_eq!(h.bounds().upper.to_bits(), resumable.upper.to_bits());
                assert!(h.frontier_len() > 0);
            }
        }
    }

    #[test]
    fn resume_tightens_monotonically_to_convergence() {
        let (s, phi) = hard_chain(40);
        let exact = {
            let r = crate::exact::exact_probability(&phi, &s, &CompileOptions::default());
            r.probability
        };
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-6).with_max_steps(3));
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(!first.converged);
        let mut handle = handle.expect("truncated");
        let mut prev = handle.bounds();
        assert!(prev.contains(exact));
        let mut slices = 0;
        while !handle.is_converged() {
            let r = handle.resume(&s, ResumeBudget::steps(4));
            let b = r.bounds();
            assert!(b.lower >= prev.lower - 1e-15, "lower regressed: {prev:?} -> {b:?}");
            assert!(b.upper <= prev.upper + 1e-15, "upper regressed: {prev:?} -> {b:?}");
            assert!(b.contains(exact), "lost the exact probability {exact}: {b:?}");
            prev = b;
            slices += 1;
            assert!(slices < 10_000, "resume did not converge");
            if r.steps == 0 && !r.converged {
                break; // complete tree without convergence (shouldn't happen)
            }
        }
        assert!(handle.is_converged());
        assert!((handle.bounds().midpoint() - exact).abs() <= 1e-6 + 1e-9);
        assert!(handle.total_steps() >= first.steps);
    }

    #[test]
    fn split_resume_is_bit_identical_to_one_shot_resume() {
        let (s, phi) = hard_chain(36);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(4));
        let (_, one) = compiler.run_resumable(&phi, &s, None);
        let (_, split) = compiler.run_resumable(&phi, &s, None);
        let mut one = one.expect("truncated");
        let mut split = split.expect("truncated");
        let total = 30;
        let r_one = one.resume(&s, ResumeBudget::steps(total));
        let mut done = 0;
        let mut r_split = None;
        for chunk in [7, 3, 11, 9] {
            r_split = Some(split.resume(&s, ResumeBudget::steps(chunk)));
            done += chunk;
        }
        assert_eq!(done, total);
        let r_split = r_split.unwrap();
        assert_eq!(r_one.lower.to_bits(), r_split.lower.to_bits());
        assert_eq!(r_one.upper.to_bits(), r_split.upper.to_bits());
        assert_eq!(r_one.estimate.to_bits(), r_split.estimate.to_bits());
        assert_eq!(one.total_steps(), split.total_steps());
        // Cumulative structural stats agree; only the private-memo hit/miss
        // split may differ (each slice starts a fresh per-slice memo), so
        // compare the cache-insensitive totals.
        let (a, b) = (one.stats(), split.stats());
        assert_eq!(a.inner_nodes(), b.inner_nodes());
        assert_eq!(a.exact_leaves, b.exact_leaves);
        assert_eq!(a.closed_leaves, b.closed_leaves);
        assert_eq!(a.subsumed_clauses, b.subsumed_clauses);
        assert_eq!(
            a.bound_evaluations + a.bound_cache_hits,
            b.bound_evaluations + b.bound_cache_hits
        );
        assert_eq!(
            a.exact_evaluations + a.exact_cache_hits,
            b.exact_evaluations + b.exact_cache_hits
        );
    }

    #[test]
    fn resume_with_cache_is_bit_identical_to_uncached() {
        let (s, phi) = hard_chain(36);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(4));
        let (_, plain) = compiler.run_resumable(&phi, &s, None);
        let cache = SubformulaCache::new();
        let (_, cached) = compiler.run_resumable(&phi, &s, Some(&cache));
        let mut plain = plain.expect("truncated");
        let mut cached = cached.expect("truncated");
        for _ in 0..5 {
            let a = plain.resume(&s, ResumeBudget::steps(6));
            let b = cached.resume_cached(&s, ResumeBudget::steps(6), &cache);
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn zero_budget_resume_returns_promptly_with_current_bounds() {
        let (s, phi) = hard_chain(40);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(2));
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        let r = handle.resume(&s, ResumeBudget::steps(0));
        assert_eq!(r.steps, 0);
        assert!(!r.converged);
        assert_eq!(r.lower.to_bits(), first.lower.to_bits());
        assert_eq!(r.upper.to_bits(), first.upper.to_bits());
        let r = handle.resume(&s, ResumeBudget::timeout(Duration::ZERO));
        assert_eq!(r.steps, 0);
        assert_eq!(r.lower.to_bits(), first.lower.to_bits());
    }

    #[test]
    fn generation_move_fails_closed() {
        let (mut s, phi) = hard_chain(30);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(2));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        // An in-place invalidation bumps the generation: the handle must not
        // serve bounds computed under the retired space state.
        s.invalidate();
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(!r.converged);
        assert_eq!(r.lower, 0.0);
        assert_eq!(r.upper, 1.0);
        assert_eq!(r.steps, 0);
        assert!(handle.is_poisoned());
        assert_eq!(handle.bounds(), Bounds::vacuous());
        // Poisoning is permanent, even against a space that matches again.
        let r2 = handle.resume(&s, ResumeBudget::unlimited());
        assert!(!r2.converged);
        assert_eq!((r2.lower, r2.upper), (0.0, 1.0));
    }

    #[test]
    fn appends_do_not_poison_the_handle() {
        let (mut s, phi) = hard_chain(30);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-6).with_max_steps(2));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        // Append-only growth keeps the generation; the handle keeps working.
        let _ = s.add_bool("appended", 0.5);
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged, "resume after append should still converge");
        assert!(!handle.is_poisoned());
    }

    #[test]
    fn priority_strategy_truncation_is_resumable_too() {
        let (s, phi) = hard_chain(30);
        let exact = crate::exact::exact_probability(&phi, &s, &CompileOptions::default());
        let compiler = ApproxCompiler::new(
            ApproxOptions::absolute(1e-7)
                .with_strategy(RefinementStrategy::PriorityRefinement)
                .with_max_steps(3),
        );
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(!first.converged);
        let mut handle = handle.expect("truncated priority run yields a handle");
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged);
        assert!((r.estimate - exact.probability).abs() <= 1e-7 + 1e-9);
    }
}
