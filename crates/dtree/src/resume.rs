//! Suspend/resume for anytime approximation: persistent d-tree frontiers
//! with priority-driven bound tightening.
//!
//! The depth-first compiler of [`crate::approx`] is *anytime*: truncate it
//! with a step or wall-clock budget and it returns sound `[L, U]` bounds.
//! But a truncated run used to throw its partial d-tree away, so buying the
//! interval one more millisecond of tightening meant recompiling from
//! scratch. This module keeps the frontier alive instead, following the
//! blueprint of the anytime-approximation literature: capture the partial
//! d-tree the truncated run materialised, order its open leaves by their
//! contribution to the global bound width, and let
//! [`ResumableCompilation::resume`] continue the expansion — no re-interning,
//! no re-exploration of settled subtrees.
//!
//! # Priorities
//!
//! Every open leaf carries a *width-contribution factor*: the derivative of
//! the root interval with respect to the leaf interval, accumulated top-down
//! through the combine rules of Proposition 5.4 (for an ⊗ child the sibling
//! product `Π (1 − Lⱼ)`, for an ⊙ child `Π Uⱼ`, for an ⊕ child `1`). The
//! priority of a leaf is `factor × width` — an estimate of how much root
//! width disappears if the leaf is resolved exactly. Factors are computed
//! when a leaf enters the frontier and are not refreshed as siblings tighten;
//! they order the work, they never affect soundness, and keeping them frozen
//! keeps the expansion order deterministic. Ties are broken by insertion
//! order, so a resumed run is a pure function of (frontier, budget).
//!
//! # Monotonicity
//!
//! Each refinement replaces a leaf's interval by the intersection of its old
//! interval with the freshly computed one, and re-combined ancestor intervals
//! are likewise intersected with their previous values. Both the old and the
//! new interval are sound, so their intersection is; consequently the root
//! interval of a resumed compilation *never widens* — each slice returns
//! bounds at least as tight as the last, regardless of how the total budget
//! is sliced.
//!
//! # Cache invalidation
//!
//! A handle is pinned to the probability-space generation and watermark it
//! was captured under, exactly like [`crate::SubformulaCache`] entries. If
//! the space's generation moved (an in-place mutation), every cached leaf
//! bound in the frontier is potentially stale, and the handle **fails
//! closed**: `resume` returns vacuous `[0, 1]` non-converged bounds and the
//! handle is poisoned permanently. Append-only growth (same generation,
//! higher watermark) is safe and the handle keeps working.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::time::{Duration, Instant};

use events::{Atom, Clause, Dnf, LineageArena, ProbabilitySpace, VarId};

use crate::approx::{ApproxOptions, ApproxResult, CapturedNode, ErrorBound, EXACT_LEAF_VARS};
use crate::bounds::Bounds;
use crate::cache::{Memo, SubformulaCache};
use crate::compile::CompileOptions;
use crate::partial::{PNode, PartialDTree, PartialNodeId};
use crate::stats::CompileStats;

/// Budget for one [`ResumableCompilation::resume`] slice. Both limits may be
/// combined; an exhausted (or zero) budget makes `resume` return promptly
/// with the current bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResumeBudget {
    /// Maximum number of refinement steps for this slice (`None` =
    /// unlimited).
    pub max_steps: Option<usize>,
    /// Wall-clock limit for this slice (`None` = unlimited).
    pub timeout: Option<Duration>,
}

impl ResumeBudget {
    /// No limits: resume until convergence (or a complete tree).
    pub fn unlimited() -> Self {
        ResumeBudget::default()
    }

    /// A pure step budget.
    pub fn steps(max_steps: usize) -> Self {
        ResumeBudget { max_steps: Some(max_steps), timeout: None }
    }

    /// A pure wall-clock budget.
    pub fn timeout(timeout: Duration) -> Self {
        ResumeBudget { max_steps: None, timeout: Some(timeout) }
    }

    fn exhausted(&self, steps: usize, start: Instant) -> bool {
        if let Some(max) = self.max_steps {
            if steps >= max {
                return true;
            }
        }
        if let Some(timeout) = self.timeout {
            if start.elapsed() >= timeout {
                return true;
            }
        }
        false
    }
}

/// Pre-fetched observability handles for resume slices. Handles are resolved
/// once in [`ResumableCompilation::attach_obs`] so the hot slice path never
/// touches the registry's name map; the default (no handles) records nowhere.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResumeObs {
    obs: obs::Obs,
    slices: obs::Counter,
    steps: obs::Counter,
    poisoned: obs::Counter,
    slice_seconds: obs::Histogram,
    width: obs::Histogram,
    exact_hits: obs::Counter,
    bound_hits: obs::Counter,
    exact_evals: obs::Counter,
}

impl ResumeObs {
    fn new(o: &obs::Obs) -> ResumeObs {
        ResumeObs {
            obs: o.clone(),
            slices: o.counter("dtree.resume.slices"),
            steps: o.counter("dtree.resume.steps"),
            poisoned: o.counter("dtree.resume.poisoned"),
            slice_seconds: o.histogram("dtree.resume.slice_seconds"),
            width: o.histogram("dtree.resume.width"),
            exact_hits: o.counter("dtree.cache.exact_hits"),
            bound_hits: o.counter("dtree.cache.bound_hits"),
            exact_evals: o.counter("dtree.cache.exact_evals"),
        }
    }
}

/// One frontier entry: an open leaf keyed by its width-contribution priority.
/// Entries are invalidated lazily — a popped entry whose `stamp` no longer
/// matches the leaf's current stamp is skipped.
#[derive(Debug, Clone)]
struct FrontierEntry {
    priority: f64,
    seq: u64,
    node: usize,
    stamp: u64,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for FrontierEntry {}

impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; ties pop in insertion order (smaller seq
        // first) so the expansion order is fully deterministic.
        self.priority.total_cmp(&other.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A suspended approximate compilation: the partial d-tree frontier of a
/// budget-truncated [`crate::ApproxCompiler`] run, resumable in further
/// budgeted slices that monotonically tighten the bounds.
///
/// Obtained from [`crate::ApproxCompiler::run_resumable`]: truncated runs
/// hand back an open frontier to keep refining, converged runs a settled
/// frontier whose only further use is absorbing appended lineage clauses via
/// [`ResumableCompilation::apply_delta`]. See the module documentation in
/// `resume.rs` for the refinement order, the monotonicity guarantee, and the
/// fail-closed behaviour under probability-space invalidation.
#[derive(Debug, Clone)]
pub struct ResumableCompilation {
    tree: PartialDTree,
    error: ErrorBound,
    compile: CompileOptions,
    heap: BinaryHeap<FrontierEntry>,
    /// Current (clamped) bounds per node — the monotone refinement state.
    cur: Vec<Bounds>,
    parent: Vec<Option<usize>>,
    /// Width-contribution factor per node, frozen at frontier entry.
    factor: Vec<f64>,
    /// Lazy-invalidation stamps; bumped when a leaf leaves the frontier.
    stamp: Vec<u64>,
    seq: u64,
    open_leaves: usize,
    total_steps: usize,
    total_elapsed: Duration,
    generation: u64,
    watermark: u64,
    poisoned: bool,
    /// `(cumulative_steps, root interval width)` samples: one at capture, one
    /// after every resume slice and every applied delta — the
    /// width-vs-budget curve clients use to see when refinement stops paying.
    curve: Vec<(usize, f64)>,
    deltas_applied: usize,
    dirty_rebuilds: usize,
    /// Lazily filled per-node subtree variable sets, consulted by ⊗ routing.
    /// Walking a subtree per appended clause is O(tree); the cache makes
    /// routing O(depth) amortized: an entry is computed on first lookup and
    /// then maintained incrementally — every clause routed through a node
    /// extends that node's entry with the clause's variables. Refinement
    /// never changes a subtree's variable set (decomposition preserves the
    /// formula), so entries survive `resume` slices; entries of subtrees
    /// orphaned by a dirty rebuild go stale but are unreachable from the
    /// root and never consulted again.
    subtree_vars: BTreeMap<usize, BTreeSet<VarId>>,
    /// Write-only observability handles; never read back, so attached
    /// metrics cannot perturb results (see [`ResumableCompilation::attach_obs`]).
    obs: ResumeObs,
}

/// Reconstructs the [`PartialDTree`] a truncated DFS run materialised from
/// its captured node stack, moving the run's arena into the tree.
pub(crate) fn tree_from_capture(
    mut arena: LineageArena,
    root: CapturedNode,
    stats: CompileStats,
) -> PartialDTree {
    let mut nodes = Vec::new();
    let root_id = build_nodes(&mut arena, &mut nodes, root);
    PartialDTree::from_raw(arena, nodes, root_id, stats)
}

fn build_nodes(
    arena: &mut LineageArena,
    nodes: &mut Vec<PNode>,
    cap: CapturedNode,
) -> PartialNodeId {
    match cap {
        CapturedNode::Leaf { view, bounds, exact } => {
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Leaf { view, bounds, exact });
            id
        }
        CapturedNode::Atom { atom, p } => {
            let view = arena.intern_sorted_clauses(&[Clause::singleton(atom)]);
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Leaf { view, bounds: Bounds::point(p), exact: true });
            id
        }
        CapturedNode::Inner { op, children } => {
            let kids: Vec<PartialNodeId> =
                children.into_iter().map(|c| build_nodes(arena, nodes, c)).collect();
            let id = PartialNodeId(nodes.len());
            nodes.push(PNode::Inner { op, children: kids });
            id
        }
    }
}

/// Intersects two sound intervals. When floating-point rounding makes them
/// (barely) disjoint the result collapses deterministically to the crossing
/// point via [`Bounds::new`]'s reordering.
fn intersect(a: Bounds, b: Bounds) -> Bounds {
    Bounds::new(a.lower.max(b.lower), a.upper.min(b.upper))
}

impl ResumableCompilation {
    /// Builds a handle around a partial d-tree whose truncated run produced
    /// `result`: computes per-node bounds bottom-up (bit-identical to the
    /// run's output), width-contribution factors top-down, and seeds the
    /// frontier queue with every open leaf.
    pub(crate) fn from_tree(
        tree: PartialDTree,
        opts: &ApproxOptions,
        result: &ApproxResult,
        space: &ProbabilitySpace,
    ) -> Self {
        let n = tree.num_nodes();
        let mut handle = ResumableCompilation {
            tree,
            error: opts.error,
            compile: opts.compile.clone(),
            heap: BinaryHeap::new(),
            cur: vec![Bounds::vacuous(); n],
            parent: vec![None; n],
            factor: vec![0.0; n],
            stamp: vec![0; n],
            seq: 0,
            open_leaves: 0,
            total_steps: result.steps,
            total_elapsed: result.elapsed,
            generation: space.generation(),
            watermark: space.watermark(),
            poisoned: false,
            curve: Vec::new(),
            deltas_applied: 0,
            dirty_rebuilds: 0,
            subtree_vars: BTreeMap::new(),
            obs: ResumeObs::default(),
        };
        let root = handle.root_index();
        handle.fill_subtree(root);
        handle.assign_factors(root, 1.0);
        debug_assert_eq!(
            handle.cur[root].lower.to_bits(),
            result.lower.to_bits(),
            "reconstructed frontier bounds must match the truncated run"
        );
        debug_assert_eq!(handle.cur[root].upper.to_bits(), result.upper.to_bits());
        handle.curve.push((handle.total_steps, handle.cur[root].width()));
        handle
    }

    fn root_index(&self) -> usize {
        self.tree.root_id().0
    }

    /// Current bounds of the suspended compilation (vacuous if the handle
    /// failed closed).
    pub fn bounds(&self) -> Bounds {
        if self.poisoned {
            Bounds::vacuous()
        } else {
            self.cur[self.root_index()]
        }
    }

    /// Remaining interval width `U − L` — the quantity further resumption
    /// spends budget to shrink. Schedulers use this to prioritise handles.
    pub fn width(&self) -> f64 {
        self.bounds().width()
    }

    /// `true` when the bounds already satisfy the requested error guarantee.
    pub fn is_converged(&self) -> bool {
        !self.poisoned && self.error.satisfied_by(self.bounds())
    }

    /// `true` when the handle failed closed because the probability space it
    /// was captured under was invalidated (generation moved, or the space
    /// regressed behind the captured watermark). A poisoned handle stays
    /// poisoned; recompute from scratch against the new space.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of open leaves currently on the frontier.
    pub fn frontier_len(&self) -> usize {
        self.open_leaves
    }

    /// Total refinement steps across the initial run and every resumed slice.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Total wall-clock time across the initial run and every resumed slice.
    pub fn total_elapsed(&self) -> Duration {
        self.total_elapsed
    }

    /// Cumulative compilation statistics of the underlying partial d-tree.
    pub fn stats(&self) -> &CompileStats {
        self.tree.stats()
    }

    /// The probability-space generation this handle is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when the handle is still valid against `space`: not poisoned,
    /// same generation, and the space has not regressed behind the captured
    /// watermark. This is the *same* predicate `resume`/`apply_delta` fail
    /// closed on; maintenance layers use it to detect a stale handle up
    /// front and recompile instead of burning a slice on a poisoned resume.
    pub fn is_current(&self, space: &ProbabilitySpace) -> bool {
        !self.poisoned
            && space.generation() == self.generation
            && space.watermark() >= self.watermark
    }

    /// The point estimate the handle's error bound derives from the current
    /// bounds (interval midpoint for absolute/relative guarantees).
    pub fn estimate(&self) -> f64 {
        self.error.estimate_from(self.bounds())
    }

    /// The width-vs-budget curve: `(cumulative_steps, interval_width)`
    /// samples recorded at capture, after every resume slice, and after
    /// every applied delta. Monotone non-increasing in width between deltas;
    /// a delta can widen the interval again (the formula grew).
    pub fn width_curve(&self) -> &[(usize, f64)] {
        &self.curve
    }

    /// Number of clauses applied through
    /// [`ResumableCompilation::apply_delta`] over the handle's lifetime.
    pub fn deltas_applied(&self) -> usize {
        self.deltas_applied
    }

    /// Number of delta routings that fell back to rebuilding a dirty subtree
    /// (the appended clause broke the subtree's decomposition).
    pub fn dirty_rebuilds(&self) -> usize {
        self.dirty_rebuilds
    }

    /// Attaches observability: every subsequent slice records step counts,
    /// cache-probe outcomes, slice latency, and the root interval width into
    /// `o`'s registry, plus one `dtree.slice` trace event — the anytime
    /// width-tightening trajectory as an exportable series. The handles are
    /// write-only; attaching them never changes any result bit.
    pub fn attach_obs(&mut self, o: &obs::Obs) {
        self.obs = ResumeObs::new(o);
    }

    /// Continues the suspended compilation for one budgeted slice, returning
    /// the (monotonically tightened) bounds reached when the budget ran out —
    /// or converged bounds if the error guarantee was met first. The returned
    /// [`ApproxResult`] carries slice-local `steps`/`stats`/`elapsed`;
    /// cumulative totals live on the handle
    /// ([`ResumableCompilation::total_steps`],
    /// [`ResumableCompilation::total_elapsed`]).
    pub fn resume(&mut self, space: &ProbabilitySpace, budget: ResumeBudget) -> ApproxResult {
        self.resume_with(space, budget, None)
    }

    /// Like [`ResumableCompilation::resume`] with a shared
    /// [`SubformulaCache`] layered behind the slice's memo, so leaf bounds
    /// and small-leaf exact folds are reused across slices and lineages.
    /// Bit-identical to the uncached path.
    pub fn resume_cached(
        &mut self,
        space: &ProbabilitySpace,
        budget: ResumeBudget,
        cache: &SubformulaCache,
    ) -> ApproxResult {
        self.resume_with(space, budget, Some(cache))
    }

    fn resume_with(
        &mut self,
        space: &ProbabilitySpace,
        budget: ResumeBudget,
        cache: Option<&SubformulaCache>,
    ) -> ApproxResult {
        let start = Instant::now();
        if self.poisoned
            || space.generation() != self.generation
            || space.watermark() < self.watermark
        {
            // Fail closed: the frontier's cached bounds may be stale.
            self.poisoned = true;
            self.obs.poisoned.inc();
            let elapsed = start.elapsed();
            self.total_elapsed += elapsed;
            let vacuous = Bounds::vacuous();
            return ApproxResult {
                lower: vacuous.lower,
                upper: vacuous.upper,
                estimate: self.error.estimate_from(vacuous),
                converged: false,
                steps: 0,
                stats: CompileStats::default(),
                elapsed,
            };
        }
        // Append-only growth is safe; advance so later regressions are
        // detected relative to the newest space seen.
        self.watermark = space.watermark();
        let stats_before = *self.tree.stats();
        let mut memo = Memo::with_shared(cache, self.generation, self.watermark);
        let mut slice_steps = 0usize;
        loop {
            let root_bounds = self.cur[self.root_index()];
            if self.error.satisfied_by(root_bounds) {
                break;
            }
            if budget.exhausted(slice_steps, start) {
                break;
            }
            let Some(entry) = self.heap.pop() else {
                // Complete tree (or only zero-width open leaves left): the
                // bounds are as tight as this frontier can make them.
                break;
            };
            if entry.stamp != self.stamp[entry.node] {
                continue; // invalidated entry, not a refinement step
            }
            self.refine_frontier(entry.node, space, &mut memo);
            slice_steps += 1;
        }
        self.total_steps += slice_steps;
        let elapsed = start.elapsed();
        self.total_elapsed += elapsed;
        let bounds = self.cur[self.root_index()];
        self.curve.push((self.total_steps, bounds.width()));
        let slice_stats = self.tree.stats().since(&stats_before);
        let converged = self.error.satisfied_by(bounds);
        self.obs.slices.inc();
        self.obs.steps.add(slice_steps as u64);
        self.obs.slice_seconds.record_duration(elapsed);
        self.obs.width.record(bounds.width());
        self.obs.exact_hits.add(slice_stats.exact_cache_hits as u64);
        self.obs.bound_hits.add(slice_stats.bound_cache_hits as u64);
        self.obs.exact_evals.add(slice_stats.exact_evaluations as u64);
        self.obs
            .obs
            .event("dtree.slice")
            .u64("steps", slice_steps as u64)
            .u64("total_steps", self.total_steps as u64)
            .f64("width", bounds.width())
            .bool("converged", converged)
            .emit();
        ApproxResult {
            lower: bounds.lower,
            upper: bounds.upper,
            estimate: self.error.estimate_from(bounds),
            converged,
            steps: slice_steps,
            stats: slice_stats,
            elapsed,
        }
    }

    /// Refines one frontier leaf: exact-folds small leaves (mirroring the
    /// DFS fast path), otherwise applies one Figure-1 decomposition step,
    /// then clamps the node's interval against its previous value and
    /// re-propagates (with clamping) along the path to the root.
    fn refine_frontier(&mut self, node: usize, space: &ProbabilitySpace, memo: &mut Memo<'_>) {
        let old = self.cur[node];
        let f = self.factor[node];
        self.stamp[node] += 1;
        self.open_leaves = self.open_leaves.saturating_sub(1);

        let id = PartialNodeId(node);
        let view = match self.tree.node(id) {
            PNode::Leaf { view, .. } => view.clone(),
            PNode::Inner { .. } => return, // stale bookkeeping; nothing to do
        };

        if !view.num_vars_exceeds(self.tree.lineage(), EXACT_LEAF_VARS) {
            // Small leaf: fold its complete sub-d-tree, memoized exactly like
            // the depth-first compiler's `memo_exact`.
            let key = view.hash(self.tree.lineage());
            let p = if let Some(p) = memo.get_exact(key) {
                self.tree.stats_mut().exact_cache_hits += 1;
                p
            } else {
                let r = crate::exact::exact_probability_view(
                    self.tree.lineage_mut(),
                    &view,
                    space,
                    &self.compile,
                );
                let required = view.required_watermark(self.tree.lineage());
                let stats = self.tree.stats_mut();
                stats.exact_evaluations += 1;
                stats.or_nodes += r.stats.or_nodes;
                stats.and_nodes += r.stats.and_nodes;
                stats.xor_nodes += r.stats.xor_nodes;
                memo.put_exact(key, required, r.probability);
                r.probability
            };
            self.tree.stats_mut().exact_leaves += 1;
            self.tree.set_leaf_exact(id, p);
            self.cur[node] = intersect(Bounds::point(p), old);
        } else {
            let before = self.tree.num_nodes();
            self.tree.refine_with_memo(id, space, &self.compile, memo);
            let n = self.tree.num_nodes();
            self.parent.resize(n, None);
            self.cur.resize(n, Bounds::vacuous());
            self.factor.resize(n, 0.0);
            self.stamp.resize(n, 0);
            debug_assert!(n >= before);
            // The node is now either an exact leaf (rewritten in place) or an
            // inner node over freshly pushed children; (re)initialise the new
            // subtree's bounds bottom-up and its factors top-down, seeding
            // the frontier with the new open leaves.
            self.fill_subtree(node);
            self.assign_factors(node, f);
            self.cur[node] = intersect(self.cur[node], old);
        }
        self.propagate_up(node);
    }

    /// Sets parent links and computes `cur` bounds bottom-up for the subtree
    /// rooted at `id` (used for the initial capture and for subtrees created
    /// by a refinement step).
    fn fill_subtree(&mut self, id: usize) {
        match self.tree.node(PartialNodeId(id)) {
            PNode::Leaf { bounds, .. } => {
                self.cur[id] = *bounds;
            }
            PNode::Inner { op, children } => {
                let op = *op;
                let kids: Vec<usize> = children.iter().map(|c| c.0).collect();
                for &k in &kids {
                    self.parent[k] = Some(id);
                    self.fill_subtree(k);
                }
                self.cur[id] = self.combine(op, &kids);
            }
        }
    }

    /// Assigns width-contribution factors top-down from `f` at `id` and
    /// pushes every open leaf of the subtree onto the frontier queue.
    fn assign_factors(&mut self, id: usize, f: f64) {
        match self.tree.node(PartialNodeId(id)) {
            PNode::Leaf { exact, .. } => {
                let exact = *exact;
                let width = self.cur[id].width();
                if !exact && width > 0.0 {
                    self.factor[id] = f;
                    self.open_leaves += 1;
                    self.seq += 1;
                    self.heap.push(FrontierEntry {
                        priority: f * width,
                        seq: self.seq,
                        node: id,
                        stamp: self.stamp[id],
                    });
                }
            }
            PNode::Inner { op, children } => {
                let op = *op;
                let kids: Vec<usize> = children.iter().map(|c| c.0).collect();
                self.factor[id] = f;
                let child_factors = self.child_factors(op, &kids, f);
                for (&k, fk) in kids.iter().zip(child_factors) {
                    self.assign_factors(k, fk);
                }
            }
        }
    }

    /// The factor each child inherits through an inner node: the partial
    /// derivative of the node's combine rule with respect to that child,
    /// evaluated at the siblings' current bounds (lower bounds for ⊗ — the
    /// sensitivity of `1 − Π(1 − pⱼ)` — and upper bounds for ⊙).
    fn child_factors(&self, op: crate::partial::Op, kids: &[usize], f: f64) -> Vec<f64> {
        use crate::partial::Op;
        match op {
            Op::Xor => vec![f; kids.len()],
            Op::Or | Op::And => {
                let terms: Vec<f64> = kids
                    .iter()
                    .map(|&k| match op {
                        Op::Or => 1.0 - self.cur[k].lower,
                        Op::And => self.cur[k].upper,
                        Op::Xor => unreachable!(),
                    })
                    .collect();
                // Product of all terms except each index, via prefix/suffix
                // products (⊗ nodes can be very wide).
                let n = terms.len();
                let mut prefix = vec![1.0; n + 1];
                for i in 0..n {
                    prefix[i + 1] = prefix[i] * terms[i];
                }
                let mut suffix = vec![1.0; n + 1];
                for i in (0..n).rev() {
                    suffix[i] = suffix[i + 1] * terms[i];
                }
                (0..n).map(|i| f * prefix[i] * suffix[i + 1]).collect()
            }
        }
    }

    fn combine(&self, op: crate::partial::Op, kids: &[usize]) -> Bounds {
        use crate::partial::Op;
        let child_bounds = kids.iter().map(|&k| self.cur[k]);
        match op {
            Op::Or => Bounds::combine_or(child_bounds),
            Op::And => Bounds::combine_and(child_bounds),
            Op::Xor => Bounds::combine_xor(child_bounds),
        }
    }

    /// Recombines every ancestor of `node`, intersecting each with its
    /// previous interval so the root bounds are monotone non-widening even
    /// under floating-point rounding.
    fn propagate_up(&mut self, mut node: usize) {
        while let Some(p) = self.parent[node] {
            let (op, kids) = match self.tree.node(PartialNodeId(p)) {
                PNode::Inner { op, children } => {
                    (*op, children.iter().map(|c| c.0).collect::<Vec<usize>>())
                }
                PNode::Leaf { .. } => unreachable!("parents are inner nodes"),
            };
            let combined = self.combine(op, &kids);
            self.cur[p] = intersect(combined, self.cur[p]);
            node = p;
        }
    }

    /// Applies an **append-only lineage delta** to the suspended compilation:
    /// every appended clause is routed down the existing d-tree to the
    /// smallest subtree whose decomposition can absorb it, loosening only the
    /// touched leaf chain's bounds instead of discarding the tree.
    ///
    /// Routing rules (the delta-maintenance counterpart of Figure 1):
    ///
    /// * **⊗ (independent-or)** — the clause joins the unique component it
    ///   shares variables with; a clause over entirely fresh variables grows
    ///   a new component child; a clause bridging two components breaks the
    ///   partition and falls back to a dirty rebuild of the ⊗ subtree.
    /// * **⊙ (independent-and)** — factored-out atoms the clause also binds
    ///   are stripped and the remainder is routed into the residual child
    ///   (`a ∧ R ∨ c = a ∧ (R ∨ c∖a)` when `a ∈ c`); a clause that does not
    ///   cover the factored atoms falls back to a dirty rebuild.
    /// * **⊕ (Shannon on `v`)** — a clause binding `v = u` is routed (with
    ///   the `v`-atom stripped) into branch `u`'s cofactor, growing the
    ///   branch if `Φ|v=u` used to be empty; a `v`-free clause is pushed into
    ///   *every* branch's cofactor (`(Φ ∨ c)|v=u = Φ|v=u ∨ c`), including
    ///   branches grown for previously-empty domain values.
    /// * **Leaf** — the clause is appended to the leaf's view and the leaf's
    ///   bounds are recomputed from scratch; if it re-opens it re-enters the
    ///   frontier.
    ///
    /// Because the appended clause can *raise* the true probability,
    /// intervals along the touched chain are **replaced**, never intersected
    /// with their pre-delta values; untouched subtrees keep their bounds and
    /// frontier entries. The dirty-rebuild fallback collapses a subtree into
    /// one open leaf over its reconstructed formula plus the clause.
    ///
    /// The same fail-closed rule as [`ResumableCompilation::resume`] applies:
    /// a generation move or watermark regression poisons the handle and the
    /// call returns `false` (the caller must recompile from scratch). Returns
    /// `true` when the delta was applied.
    pub fn apply_delta(&mut self, space: &ProbabilitySpace, clauses: &[Clause]) -> bool {
        if self.poisoned
            || space.generation() != self.generation
            || space.watermark() < self.watermark
        {
            self.poisoned = true;
            return false;
        }
        self.watermark = space.watermark();
        for clause in clauses {
            if !clause.is_consistent() {
                continue;
            }
            let root = self.root_index();
            self.route_clause(root, clause, space);
            self.deltas_applied += 1;
        }
        self.curve.push((self.total_steps, self.width()));
        true
    }

    /// Routes one appended clause down the subtree at `node`; see
    /// [`ResumableCompilation::apply_delta`] for the rules.
    fn route_clause(&mut self, node: usize, clause: &Clause, space: &ProbabilitySpace) {
        use crate::partial::Op;
        // The clause's variables join this subtree's formula (stripping at
        // ⊙/⊕ only removes atoms the subtree already binds), so extending a
        // cached variable set keeps it sound. The one exception — a clause
        // subsumed at a ⊙ node binding extra variables — leaves a harmless
        // superset: a stale variable can only force a conservative dirty
        // rebuild or route a genuinely fresh clause into one component,
        // never break the independence the ⊗ bounds rely on.
        if let Some(vars) = self.subtree_vars.get_mut(&node) {
            vars.extend(clause.vars());
        }
        let (op, kids) = match self.tree.node(PartialNodeId(node)) {
            PNode::Leaf { .. } => {
                self.touch_leaf(node, clause, space);
                return;
            }
            PNode::Inner { op, children } => {
                (*op, children.iter().map(|c| c.0).collect::<Vec<usize>>())
            }
        };
        match op {
            Op::Or => {
                let clause_vars: BTreeSet<VarId> = clause.vars().collect();
                let mut hit = None;
                let mut hits = 0;
                for &k in &kids {
                    if self.subtree_overlaps(k, &clause_vars) {
                        hits += 1;
                        hit = Some(k);
                    }
                }
                match hits {
                    // Entirely fresh variables (or a constant clause): a new
                    // independent component.
                    0 => self.grow_or_child(node, clause, space),
                    1 => self.route_clause(hit.expect("hits == 1"), clause, space),
                    // The clause bridges components: the partition is broken.
                    _ => self.dirty_rebuild(node, clause, space),
                }
            }
            Op::And => {
                // Factored-out atoms (exact singleton-atom leaves) the clause
                // also binds can be stripped; the remainder routes into the
                // single residual child.
                let mut strip: Vec<VarId> = Vec::new();
                let mut rest: Vec<usize> = Vec::new();
                for &k in &kids {
                    match self.tree.leaf_single_atom(PartialNodeId(k)) {
                        Some(a) if clause.value_of(a.var) == Some(a.value) => strip.push(a.var),
                        _ => rest.push(k),
                    }
                }
                if rest.is_empty() {
                    // The clause binds every factor atom and possibly more:
                    // it is subsumed by the ⊙ node's formula — a no-op.
                    return;
                }
                if rest.len() == 1 {
                    let stripped = clause.project_out(&|v: VarId| strip.contains(&v));
                    self.route_clause(rest[0], &stripped, space);
                } else {
                    self.dirty_rebuild(node, clause, space);
                }
            }
            Op::Xor => {
                let Some(var) = self.shannon_var(&kids) else {
                    self.dirty_rebuild(node, clause, space);
                    return;
                };
                match clause.value_of(var) {
                    Some(value) => {
                        let rest = clause
                            .restrict(var, value)
                            .expect("a consistent clause never conflicts with its own binding");
                        match self.find_branch(&kids, var, value) {
                            BranchLookup::Found(cof) => self.route_clause(cof, &rest, space),
                            BranchLookup::Missing => {
                                self.grow_xor_branch(node, var, value, &rest, space)
                            }
                            BranchLookup::Malformed => self.dirty_rebuild(node, clause, space),
                        }
                    }
                    None => {
                        // `(Φ ∨ c)|v=u = Φ|v=u ∨ c` for every domain value:
                        // push the clause into every branch's cofactor,
                        // growing branches for previously-empty cofactors.
                        for value in 0..space.domain_size(var) {
                            // Re-scan the children: earlier iterations may
                            // have grown branches.
                            let kids_now = match self.tree.node(PartialNodeId(node)) {
                                PNode::Inner { children, .. } => {
                                    children.iter().map(|c| c.0).collect::<Vec<usize>>()
                                }
                                PNode::Leaf { .. } => return, // dirty-rebuilt
                            };
                            match self.find_branch(&kids_now, var, value) {
                                BranchLookup::Found(cof) => {
                                    self.route_clause(cof, clause, space);
                                }
                                BranchLookup::Missing => {
                                    self.grow_xor_branch(node, var, value, clause, space);
                                }
                                BranchLookup::Malformed => {
                                    self.dirty_rebuild(node, clause, space);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// `true` when the subtree at `k` mentions any of `vars`, consulting —
    /// and on a miss, filling — the per-node subtree-variable cache. The
    /// first lookup at a node pays the O(subtree) walk once; later deltas
    /// hit the incrementally maintained set.
    fn subtree_overlaps(&mut self, k: usize, vars: &BTreeSet<VarId>) -> bool {
        if !self.subtree_vars.contains_key(&k) {
            let mut set = BTreeSet::new();
            self.tree.subtree_vars(PartialNodeId(k), &mut set);
            self.subtree_vars.insert(k, set);
        }
        !self.subtree_vars[&k].is_disjoint(vars)
    }

    /// The Shannon variable of an ⊕ node, read off the first branch's atom
    /// leaf (`None` if the branch structure is not the expected
    /// `⊙(atom, cofactor)` — the caller falls back to a dirty rebuild).
    fn shannon_var(&self, kids: &[usize]) -> Option<VarId> {
        let &first = kids.first()?;
        match self.tree.node(PartialNodeId(first)) {
            PNode::Inner { op: crate::partial::Op::And, children } => {
                self.tree.leaf_single_atom(*children.first()?).map(|a| a.var)
            }
            _ => None,
        }
    }

    /// Locates the ⊕ branch binding `var = value`, returning its cofactor
    /// child.
    fn find_branch(&self, kids: &[usize], var: VarId, value: u32) -> BranchLookup {
        for &b in kids {
            let PNode::Inner { op: crate::partial::Op::And, children } =
                self.tree.node(PartialNodeId(b))
            else {
                return BranchLookup::Malformed;
            };
            if children.len() != 2 {
                return BranchLookup::Malformed;
            }
            let Some(atom) = self.tree.leaf_single_atom(children[0]) else {
                return BranchLookup::Malformed;
            };
            if atom.var != var {
                return BranchLookup::Malformed;
            }
            if atom.value == value {
                return BranchLookup::Found(children[1].0);
            }
        }
        BranchLookup::Missing
    }

    /// Grows a fresh independent component under an ⊗ node for a clause over
    /// entirely new variables.
    fn grow_or_child(&mut self, or: usize, clause: &Clause, space: &ProbabilitySpace) {
        let child = self.tree.push_dnf_leaf(&Dnf::singleton(clause.clone()), space);
        self.attach_new_subtree(or, child.0);
    }

    /// Grows an ⊕ branch `⊙(v=value, {rest})` for a domain value whose
    /// cofactor used to be empty.
    fn grow_xor_branch(
        &mut self,
        xor: usize,
        var: VarId,
        value: u32,
        rest: &Clause,
        space: &ProbabilitySpace,
    ) {
        let atom_leaf =
            self.tree.push_exact_atom_leaf(Atom::new(var, value), space.prob(var, value));
        let cof = self.tree.push_dnf_leaf(&Dnf::singleton(rest.clone()), space);
        let branch = self.tree.push_inner(crate::partial::Op::And, vec![atom_leaf, cof]);
        self.attach_new_subtree(xor, branch.0);
    }

    /// Attaches a freshly built subtree as a new child of `parent`: links it,
    /// fills its bounds, seeds its open leaves into the frontier, and
    /// refreshes the chain to the root.
    fn attach_new_subtree(&mut self, parent: usize, child: usize) {
        self.tree.add_child(PartialNodeId(parent), PartialNodeId(child));
        self.sync_len();
        self.parent[child] = Some(parent);
        self.fill_subtree(child);
        let f = self.factor_from_parent(child);
        self.assign_factors(child, f);
        self.refresh_up(child);
    }

    /// Appends one clause to a leaf's view, recomputing the leaf bounds from
    /// scratch and re-entering the frontier if the leaf re-opened.
    fn touch_leaf(&mut self, node: usize, clause: &Clause, space: &ProbabilitySpace) {
        self.retire_subtree(node);
        self.tree.append_to_leaf(PartialNodeId(node), std::slice::from_ref(clause), space);
        self.reopen_leaf(node);
    }

    /// The dirty-subtree fallback: the clause broke the decomposition at
    /// `node`, so the subtree collapses into one open leaf over its
    /// reconstructed formula plus the clause. Orphaned descendants stay in
    /// the node vector (bounded by total refinement work) but leave the
    /// frontier.
    fn dirty_rebuild(&mut self, node: usize, clause: &Clause, space: &ProbabilitySpace) {
        self.retire_subtree(node);
        let mut formula = self.tree.node_formula(PartialNodeId(node));
        formula.push(clause.clone());
        let dnf = Dnf::from_clauses(formula);
        self.tree.replace_with_leaf(PartialNodeId(node), &dnf, space);
        self.dirty_rebuilds += 1;
        self.reopen_leaf(node);
    }

    /// Removes every open leaf of the subtree at `node` from the frontier
    /// (stamp bump kills the heap entries lazily).
    fn retire_subtree(&mut self, node: usize) {
        match self.tree.node(PartialNodeId(node)) {
            PNode::Leaf { exact, .. } => {
                // Matches the frontier-entry condition of `assign_factors`:
                // a non-exact leaf with positive width has a live entry.
                if !*exact && self.cur[node].width() > 0.0 {
                    self.stamp[node] += 1;
                    self.open_leaves = self.open_leaves.saturating_sub(1);
                }
            }
            PNode::Inner { children, .. } => {
                let kids: Vec<usize> = children.iter().map(|c| c.0).collect();
                for k in kids {
                    self.retire_subtree(k);
                }
            }
        }
    }

    /// Publishes a (re)built leaf at `node`: replaces its interval, re-enters
    /// the frontier if it is open, and refreshes the chain to the root.
    fn reopen_leaf(&mut self, node: usize) {
        let (bounds, exact) = match self.tree.node(PartialNodeId(node)) {
            PNode::Leaf { bounds, exact, .. } => (*bounds, *exact),
            PNode::Inner { .. } => unreachable!("reopen target is a leaf"),
        };
        // REPLACE, never intersect: the formula grew, so the pre-delta
        // interval no longer bounds it.
        self.cur[node] = bounds;
        if !exact && bounds.width() > 0.0 {
            let f = self.factor_from_parent(node);
            self.factor[node] = f;
            self.open_leaves += 1;
            self.seq += 1;
            self.heap.push(FrontierEntry {
                priority: f * bounds.width(),
                seq: self.seq,
                node,
                stamp: self.stamp[node],
            });
        }
        self.refresh_up(node);
    }

    /// The width-contribution factor `node` inherits from its parent's
    /// combine rule at the siblings' current bounds (1.0 at the root).
    fn factor_from_parent(&self, node: usize) -> f64 {
        match self.parent[node] {
            None => 1.0,
            Some(p) => {
                let (op, kids) = match self.tree.node(PartialNodeId(p)) {
                    PNode::Inner { op, children } => {
                        (*op, children.iter().map(|c| c.0).collect::<Vec<usize>>())
                    }
                    PNode::Leaf { .. } => unreachable!("parents are inner nodes"),
                };
                let idx = kids.iter().position(|&k| k == node).expect("child of its parent");
                self.child_factors(op, &kids, self.factor[p])[idx]
            }
        }
    }

    /// Grows the per-node vectors to the tree's current node count.
    fn sync_len(&mut self) {
        let n = self.tree.num_nodes();
        self.parent.resize(n, None);
        self.cur.resize(n, Bounds::vacuous());
        self.factor.resize(n, 0.0);
        self.stamp.resize(n, 0);
    }

    /// Recombines every ancestor of `node` **replacing** the stored interval
    /// — unlike [`ResumableCompilation::propagate_up`], which intersects.
    /// After a delta the touched chain's old intervals bound a smaller
    /// formula and must not be intersected in; untouched siblings keep their
    /// accumulated (still sound) intervals.
    fn refresh_up(&mut self, mut node: usize) {
        while let Some(p) = self.parent[node] {
            let (op, kids) = match self.tree.node(PartialNodeId(p)) {
                PNode::Inner { op, children } => {
                    (*op, children.iter().map(|c| c.0).collect::<Vec<usize>>())
                }
                PNode::Leaf { .. } => unreachable!("parents are inner nodes"),
            };
            self.cur[p] = self.combine(op, &kids);
            node = p;
        }
    }
}

/// Result of locating an ⊕ branch for a domain value.
enum BranchLookup {
    /// Branch exists; carries the cofactor child's node index.
    Found(usize),
    /// No branch for this value (its cofactor used to be empty).
    Missing,
    /// The node does not have the expected Shannon branch structure.
    Malformed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{ApproxCompiler, ApproxOptions, RefinementStrategy};
    use events::{Dnf, VarId};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    /// A chain DNF over enough variables that truncated budgets leave real
    /// work behind.
    fn hard_chain(n: usize) -> (ProbabilitySpace, Dnf) {
        let probs: Vec<f64> = (0..n).map(|i| 0.15 + 0.03 * (i as f64 % 22.0)).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..n - 1).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        (s, phi)
    }

    #[test]
    fn converged_run_returns_converged_handle_and_matches_plain_run() {
        let (s, phi) = hard_chain(20);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(0.01));
        let plain = compiler.run(&phi, &s);
        let (resumable, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(plain.converged && resumable.converged);
        assert_eq!(plain.estimate.to_bits(), resumable.estimate.to_bits());
        assert_eq!(plain.lower.to_bits(), resumable.lower.to_bits());
        assert_eq!(plain.upper.to_bits(), resumable.upper.to_bits());
        assert_eq!(plain.steps, resumable.steps);
        assert_eq!(plain.stats, resumable.stats);
        // The settled frontier is returned so later deltas can be absorbed
        // in place; resuming it is a no-op with identical bounds.
        let mut handle = handle.expect("converged runs still hand back their frontier");
        assert!(handle.is_converged());
        assert_eq!(handle.bounds().lower.to_bits(), plain.lower.to_bits());
        assert_eq!(handle.bounds().upper.to_bits(), plain.upper.to_bits());
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged && r.steps == 0);
        assert_eq!(r.lower.to_bits(), plain.lower.to_bits());
    }

    #[test]
    fn truncated_run_is_bit_identical_to_plain_truncated_run() {
        let (s, phi) = hard_chain(40);
        for max_steps in [0, 1, 2, 5, 10] {
            let compiler =
                ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(max_steps));
            let plain = compiler.run(&phi, &s);
            let (resumable, handle) = compiler.run_resumable(&phi, &s, None);
            assert_eq!(plain.lower.to_bits(), resumable.lower.to_bits(), "steps {max_steps}");
            assert_eq!(plain.upper.to_bits(), resumable.upper.to_bits());
            assert_eq!(plain.steps, resumable.steps);
            assert_eq!(plain.stats, resumable.stats);
            assert_eq!(plain.converged, resumable.converged);
            if !resumable.converged {
                let h = handle.expect("non-converged run yields a handle");
                assert_eq!(h.bounds().lower.to_bits(), resumable.lower.to_bits());
                assert_eq!(h.bounds().upper.to_bits(), resumable.upper.to_bits());
                assert!(h.frontier_len() > 0);
            }
        }
    }

    #[test]
    fn resume_tightens_monotonically_to_convergence() {
        let (s, phi) = hard_chain(40);
        let exact = {
            let r = crate::exact::exact_probability(&phi, &s, &CompileOptions::default());
            r.probability
        };
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-6).with_max_steps(3));
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(!first.converged);
        let mut handle = handle.expect("truncated");
        let mut prev = handle.bounds();
        assert!(prev.contains(exact));
        let mut slices = 0;
        while !handle.is_converged() {
            let r = handle.resume(&s, ResumeBudget::steps(4));
            let b = r.bounds();
            assert!(b.lower >= prev.lower - 1e-15, "lower regressed: {prev:?} -> {b:?}");
            assert!(b.upper <= prev.upper + 1e-15, "upper regressed: {prev:?} -> {b:?}");
            assert!(b.contains(exact), "lost the exact probability {exact}: {b:?}");
            prev = b;
            slices += 1;
            assert!(slices < 10_000, "resume did not converge");
            if r.steps == 0 && !r.converged {
                break; // complete tree without convergence (shouldn't happen)
            }
        }
        assert!(handle.is_converged());
        assert!((handle.bounds().midpoint() - exact).abs() <= 1e-6 + 1e-9);
        assert!(handle.total_steps() >= first.steps);
    }

    #[test]
    fn split_resume_is_bit_identical_to_one_shot_resume() {
        let (s, phi) = hard_chain(36);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(4));
        let (_, one) = compiler.run_resumable(&phi, &s, None);
        let (_, split) = compiler.run_resumable(&phi, &s, None);
        let mut one = one.expect("truncated");
        let mut split = split.expect("truncated");
        let total = 30;
        let r_one = one.resume(&s, ResumeBudget::steps(total));
        let mut done = 0;
        let mut r_split = None;
        for chunk in [7, 3, 11, 9] {
            r_split = Some(split.resume(&s, ResumeBudget::steps(chunk)));
            done += chunk;
        }
        assert_eq!(done, total);
        let r_split = r_split.unwrap();
        assert_eq!(r_one.lower.to_bits(), r_split.lower.to_bits());
        assert_eq!(r_one.upper.to_bits(), r_split.upper.to_bits());
        assert_eq!(r_one.estimate.to_bits(), r_split.estimate.to_bits());
        assert_eq!(one.total_steps(), split.total_steps());
        // Cumulative structural stats agree; only the private-memo hit/miss
        // split may differ (each slice starts a fresh per-slice memo), so
        // compare the cache-insensitive totals.
        let (a, b) = (one.stats(), split.stats());
        assert_eq!(a.inner_nodes(), b.inner_nodes());
        assert_eq!(a.exact_leaves, b.exact_leaves);
        assert_eq!(a.closed_leaves, b.closed_leaves);
        assert_eq!(a.subsumed_clauses, b.subsumed_clauses);
        assert_eq!(
            a.bound_evaluations + a.bound_cache_hits,
            b.bound_evaluations + b.bound_cache_hits
        );
        assert_eq!(
            a.exact_evaluations + a.exact_cache_hits,
            b.exact_evaluations + b.exact_cache_hits
        );
    }

    #[test]
    fn resume_with_cache_is_bit_identical_to_uncached() {
        let (s, phi) = hard_chain(36);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(4));
        let (_, plain) = compiler.run_resumable(&phi, &s, None);
        let cache = SubformulaCache::new();
        let (_, cached) = compiler.run_resumable(&phi, &s, Some(&cache));
        let mut plain = plain.expect("truncated");
        let mut cached = cached.expect("truncated");
        for _ in 0..5 {
            let a = plain.resume(&s, ResumeBudget::steps(6));
            let b = cached.resume_cached(&s, ResumeBudget::steps(6), &cache);
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn zero_budget_resume_returns_promptly_with_current_bounds() {
        let (s, phi) = hard_chain(40);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(2));
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        let r = handle.resume(&s, ResumeBudget::steps(0));
        assert_eq!(r.steps, 0);
        assert!(!r.converged);
        assert_eq!(r.lower.to_bits(), first.lower.to_bits());
        assert_eq!(r.upper.to_bits(), first.upper.to_bits());
        let r = handle.resume(&s, ResumeBudget::timeout(Duration::ZERO));
        assert_eq!(r.steps, 0);
        assert_eq!(r.lower.to_bits(), first.lower.to_bits());
    }

    #[test]
    fn generation_move_fails_closed() {
        let (mut s, phi) = hard_chain(30);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(2));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        // An in-place invalidation bumps the generation: the handle must not
        // serve bounds computed under the retired space state.
        s.invalidate();
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(!r.converged);
        assert_eq!(r.lower, 0.0);
        assert_eq!(r.upper, 1.0);
        assert_eq!(r.steps, 0);
        assert!(handle.is_poisoned());
        assert_eq!(handle.bounds(), Bounds::vacuous());
        // Poisoning is permanent, even against a space that matches again.
        let r2 = handle.resume(&s, ResumeBudget::unlimited());
        assert!(!r2.converged);
        assert_eq!((r2.lower, r2.upper), (0.0, 1.0));
    }

    #[test]
    fn appends_do_not_poison_the_handle() {
        let (mut s, phi) = hard_chain(30);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-6).with_max_steps(2));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        // Append-only growth keeps the generation; the handle keeps working.
        let _ = s.add_bool("appended", 0.5);
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged, "resume after append should still converge");
        assert!(!handle.is_poisoned());
    }

    #[test]
    fn apply_delta_matches_recompiled_formula() {
        let (mut s, phi) = hard_chain(30);
        let first = *phi.vars().iter().next().expect("chain has variables");
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(5));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        // One clause extends an existing component, one is an independent
        // island over entirely fresh variables.
        let fresh = s.add_bool("fresh-0", 0.35);
        let shared = Clause::from_bools(&[first, fresh]);
        let island_a = s.add_bool("fresh-a", 0.25);
        let island_b = s.add_bool("fresh-b", 0.45);
        let island = Clause::from_bools(&[island_a, island_b]);
        assert!(handle.apply_delta(&s, &[shared.clone(), island.clone()]));
        assert!(!handle.is_poisoned());
        assert_eq!(handle.deltas_applied(), 2);
        let grown = phi.or(&Dnf::from_clauses(vec![shared, island]));
        let exact =
            crate::exact::exact_probability(&grown, &s, &CompileOptions::default()).probability;
        assert!(handle.bounds().contains(exact), "post-delta bounds lost {exact}");
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged);
        assert!((r.estimate - exact).abs() <= 1e-9 + 1e-9, "{} vs {exact}", r.estimate);
    }

    #[test]
    fn interleaved_deltas_and_slices_stay_sound() {
        let (mut s, phi) = hard_chain(24);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(3));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        let mut current = phi.clone();
        for i in 0..4usize {
            let vars: Vec<VarId> = current.vars().into_iter().collect();
            let anchor = vars[(i * 5) % vars.len()];
            let fresh = s.add_bool(format!("delta-{i}"), 0.2 + 0.1 * i as f64);
            let clause = Clause::from_bools(&[anchor, fresh]);
            assert!(handle.apply_delta(&s, std::slice::from_ref(&clause)));
            current = current.or(&Dnf::singleton(clause));
            let exact = crate::exact::exact_probability(&current, &s, &CompileOptions::default())
                .probability;
            assert!(
                handle.bounds().contains(exact),
                "bounds {:?} lost exact {exact} after delta {i}",
                handle.bounds()
            );
            let r = handle.resume(&s, ResumeBudget::steps(3));
            assert!(r.bounds().contains(exact), "bounds lost exact after slice {i}");
        }
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged);
        let exact =
            crate::exact::exact_probability(&current, &s, &CompileOptions::default()).probability;
        assert!((r.estimate - exact).abs() <= 1e-9 + 1e-9);
    }

    #[test]
    fn apply_delta_fails_closed_on_generation_move() {
        let (mut s, phi) = hard_chain(24);
        let first = *phi.vars().iter().next().expect("chain has variables");
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(3));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        s.invalidate();
        assert!(!handle.apply_delta(&s, &[Clause::from_bools(&[first])]));
        assert!(handle.is_poisoned());
        assert_eq!(handle.bounds(), Bounds::vacuous());
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(!r.converged);
        assert_eq!((r.lower, r.upper), (0.0, 1.0));
    }

    #[test]
    fn width_curve_records_capture_slices_and_deltas() {
        let (mut s, phi) = hard_chain(30);
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(3));
        let (_, handle) = compiler.run_resumable(&phi, &s, None);
        let mut handle = handle.expect("truncated");
        assert_eq!(handle.width_curve().len(), 1, "capture records the first sample");
        let w0 = handle.width_curve()[0].1;
        assert!(w0 > 0.0);
        handle.resume(&s, ResumeBudget::steps(4));
        assert_eq!(handle.width_curve().len(), 2);
        assert!(handle.width_curve()[1].1 <= w0, "resume slices never widen");
        let fresh = s.add_bool("curve-delta", 0.5);
        assert!(handle.apply_delta(&s, &[Clause::from_bools(&[fresh])]));
        assert_eq!(handle.width_curve().len(), 3);
        assert!(
            handle.width_curve().windows(2).all(|w| w[0].0 <= w[1].0),
            "cumulative steps are monotone"
        );
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged);
        let last = *handle.width_curve().last().expect("non-empty curve");
        assert_eq!(last.0, handle.total_steps());
    }

    #[test]
    fn priority_strategy_truncation_is_resumable_too() {
        let (s, phi) = hard_chain(30);
        let exact = crate::exact::exact_probability(&phi, &s, &CompileOptions::default());
        let compiler = ApproxCompiler::new(
            ApproxOptions::absolute(1e-7)
                .with_strategy(RefinementStrategy::PriorityRefinement)
                .with_max_steps(3),
        );
        let (first, handle) = compiler.run_resumable(&phi, &s, None);
        assert!(!first.converged);
        let mut handle = handle.expect("truncated priority run yields a handle");
        let r = handle.resume(&s, ResumeBudget::unlimited());
        assert!(r.converged);
        assert!((r.estimate - exact.probability).abs() <= 1e-7 + 1e-9);
    }
}
