//! Shared, thread-safe memoization of sub-formula results.
//!
//! The d-tree decomposition of the lineages of one query's answer tuples
//! keeps encountering the same sub-DNFs — both *within* a single DFS run
//! (a pending child is bounded by [`crate::approx`]'s `quick_bounds` and
//! later explored, which used to recompute the same exact probability) and
//! *across* lineages of a batch (answer tuples of the same query overlap
//! heavily in their lineage).
//!
//! [`SubformulaCache`] memoizes the two expensive per-sub-DNF quantities:
//!
//! * the **exact probability** of small leaves (and, through
//!   [`crate::exact_probability_cached`], of arbitrary sub-DNFs), and
//! * the **bucket bounds** of open leaves ([`crate::dnf_bounds`]).
//!
//! Entries are keyed by [`events::DnfHash`], the canonical fingerprint of a
//! normalised DNF. Both quantities are pure functions of
//! `(formula, probability space)`, and a cache instance must only ever be
//! used with **one** [`events::ProbabilitySpace`] — this is why the batch
//! engine creates a fresh cache per batch. Within that contract, reusing a
//! cached value is *bit-identical* to recomputing it: all producers are
//! deterministic, so caching never changes a result, only the work done.
//!
//! The map is sharded, each shard behind its own [`RwLock`], so the parallel
//! batch engine can probe and fill the cache from many threads with little
//! contention. Hit/miss counters are atomic and can be snapshotted with
//! [`SubformulaCache::stats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use events::DnfHash;

use crate::bounds::Bounds;

/// Number of independently locked shards. A small power of two is enough:
/// the critical sections are single hash-map probes.
const SHARDS: usize = 16;

/// One memo entry: whichever of the two quantities have been computed so far
/// for a sub-formula.
#[derive(Debug, Clone, Copy, Default)]
struct CacheEntry {
    exact: Option<f64>,
    bounds: Option<Bounds>,
}

/// A thread-safe memo table for exact leaf probabilities and bucket bounds,
/// keyed by canonical DNF hash. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct SubformulaCache {
    shards: [RwLock<HashMap<DnfHash, CacheEntry>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that found a stored value.
    pub hits: u64,
    /// Number of lookups that found nothing.
    pub misses: u64,
    /// Number of distinct sub-formulas currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl SubformulaCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SubformulaCache::default()
    }

    #[inline]
    fn shard(&self, key: DnfHash) -> &RwLock<HashMap<DnfHash, CacheEntry>> {
        &self.shards[key.shard(SHARDS)]
    }

    /// Looks up the exact probability stored for `key`, if any.
    pub fn lookup_exact(&self, key: DnfHash) -> Option<f64> {
        let found =
            self.shard(key).read().expect("cache shard poisoned").get(&key).and_then(|e| e.exact);
        self.count(found.is_some());
        found
    }

    /// Stores the exact probability of the sub-formula identified by `key`.
    pub fn store_exact(&self, key: DnfHash, probability: f64) {
        let mut shard = self.shard(key).write().expect("cache shard poisoned");
        shard.entry(key).or_default().exact = Some(probability);
    }

    /// Looks up the bucket bounds stored for `key`, if any.
    pub fn lookup_bounds(&self, key: DnfHash) -> Option<Bounds> {
        let found =
            self.shard(key).read().expect("cache shard poisoned").get(&key).and_then(|e| e.bounds);
        self.count(found.is_some());
        found
    }

    /// Stores the bucket bounds of the sub-formula identified by `key`.
    pub fn store_bounds(&self, key: DnfHash, bounds: Bounds) {
        let mut shard = self.shard(key).write().expect("cache shard poisoned");
        shard.entry(key).or_default().bounds = Some(bounds);
    }

    #[inline]
    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of distinct sub-formulas stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("cache shard poisoned").len()).sum()
    }

    /// `true` when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Per-run memo used by the DFS approximation: a private (lock-free) map in
/// front of an optional shared [`SubformulaCache`].
///
/// The private layer guarantees that *within one run* every sub-formula is
/// evaluated at most once even when no shared cache is attached; the shared
/// layer extends that guarantee across the lineages of a batch.
#[derive(Debug, Default)]
pub(crate) struct Memo<'c> {
    exact: HashMap<DnfHash, f64>,
    bounds: HashMap<DnfHash, Bounds>,
    shared: Option<&'c SubformulaCache>,
}

impl<'c> Memo<'c> {
    pub(crate) fn with_shared(shared: Option<&'c SubformulaCache>) -> Self {
        Memo { exact: HashMap::new(), bounds: HashMap::new(), shared }
    }

    /// Returns the memoized exact probability for `key`, consulting the
    /// private then the shared layer.
    pub(crate) fn get_exact(&mut self, key: DnfHash) -> Option<f64> {
        if let Some(&p) = self.exact.get(&key) {
            return Some(p);
        }
        let p = self.shared?.lookup_exact(key)?;
        self.exact.insert(key, p);
        Some(p)
    }

    /// Records an exact probability in both layers.
    pub(crate) fn put_exact(&mut self, key: DnfHash, probability: f64) {
        self.exact.insert(key, probability);
        if let Some(shared) = self.shared {
            shared.store_exact(key, probability);
        }
    }

    /// Returns the memoized bucket bounds for `key`.
    pub(crate) fn get_bounds(&mut self, key: DnfHash) -> Option<Bounds> {
        if let Some(&b) = self.bounds.get(&key) {
            return Some(b);
        }
        let b = self.shared?.lookup_bounds(key)?;
        self.bounds.insert(key, b);
        Some(b)
    }

    /// Records bucket bounds in both layers.
    pub(crate) fn put_bounds(&mut self, key: DnfHash, bounds: Bounds) {
        self.bounds.insert(key, bounds);
        if let Some(shared) = self.shared {
            shared.store_bounds(key, bounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Dnf, VarId};

    fn key(i: u32) -> DnfHash {
        Dnf::literal(VarId(i)).canonical_hash()
    }

    #[test]
    fn store_and_lookup_roundtrip() {
        let cache = SubformulaCache::new();
        let k = key(1);
        assert_eq!(cache.lookup_exact(k), None);
        cache.store_exact(k, 0.25);
        assert_eq!(cache.lookup_exact(k), Some(0.25));
        assert_eq!(cache.lookup_bounds(k), None);
        cache.store_bounds(k, Bounds::new(0.1, 0.4));
        let b = cache.lookup_bounds(k).unwrap();
        assert_eq!((b.lower, b.upper), (0.1, 0.4));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = SubformulaCache::new();
        let k = key(2);
        let _ = cache.lookup_exact(k); // miss (entry absent)
        cache.store_exact(k, 0.5);
        let _ = cache.lookup_exact(k); // hit
        let _ = cache.lookup_bounds(k); // miss (entry present, bounds absent)
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_fill_is_consistent() {
        let cache = SubformulaCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let k = key(i);
                        cache.store_exact(k, f64::from(i) / 100.0);
                        let _ = cache.lookup_exact(k);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        for i in 0..100u32 {
            assert_eq!(cache.lookup_exact(key(i)), Some(f64::from(i) / 100.0));
        }
    }

    #[test]
    fn memo_prefers_private_layer_and_fills_shared() {
        let shared = SubformulaCache::new();
        let mut memo = Memo::with_shared(Some(&shared));
        let k = key(9);
        assert_eq!(memo.get_exact(k), None);
        memo.put_exact(k, 0.75);
        assert_eq!(memo.get_exact(k), Some(0.75));
        // The shared layer saw the store.
        assert_eq!(shared.lookup_exact(k), Some(0.75));
        // A fresh memo over the same shared cache hits through it.
        let mut memo2 = Memo::with_shared(Some(&shared));
        assert_eq!(memo2.get_exact(k), Some(0.75));
    }

    #[test]
    fn memo_without_shared_layer_is_private() {
        let mut memo = Memo::with_shared(None);
        let k = key(3);
        assert_eq!(memo.get_bounds(k), None);
        memo.put_bounds(k, Bounds::point(0.3));
        assert!(memo.get_bounds(k).unwrap().is_point());
    }
}
