//! Shared, thread-safe memoization of sub-formula results.
//!
//! The d-tree decomposition of the lineages of one query's answer tuples
//! keeps encountering the same sub-DNFs — both *within* a single DFS run
//! (a pending child is bounded by [`crate::approx`]'s `quick_bounds` and
//! later explored, which used to recompute the same exact probability),
//! *across* lineages of a batch (answer tuples of the same query overlap
//! heavily in their lineage), and *across batches* (production traffic
//! repeats whole queries).
//!
//! [`SubformulaCache`] memoizes the two expensive per-sub-DNF quantities:
//!
//! * the **exact probability** of small leaves (and, through
//!   [`crate::exact_probability_cached`], of arbitrary sub-DNFs), and
//! * the **bucket bounds** of open leaves ([`crate::dnf_bounds`]).
//!
//! Entries are keyed by [`events::DnfHash`], the canonical fingerprint of a
//! normalised DNF. Both quantities are pure functions of
//! `(formula, probability space)`, so each entry is additionally tagged with
//! the **generation** of the [`events::ProbabilitySpace`]
//! ([`events::ProbabilitySpace::generation`]) it was computed under, and
//! lookups validate the tag: when the space mutates (its generation changes),
//! every previous entry silently becomes a miss and is overwritten on the
//! next store. This is what makes the cache safe to keep alive *across*
//! batches and database changes — a stale value can never leak. Each entry
//! holds the value of one generation at a time, so a cache warms best with
//! one live space at a time; feeding it several spaces concurrently stays
//! correct but lets formulas with identical hashes overwrite each other.
//! Within that contract, reusing a cached value is *bit-identical* to
//! recomputing it: all producers are deterministic, so caching never changes
//! a result, only the work done.
//!
//! A long-lived cache must also be bounded: [`SubformulaCache::with_capacity`]
//! creates a cache with a total entry budget, enforced per shard by a CLOCK
//! (second-chance LRU-approximation) eviction policy — lookups set a
//! reference bit under the shared read lock, inserts over budget sweep the
//! clock hand past recently used entries and replace the first unreferenced
//! one. [`SubformulaCache::new`] stays unbounded, which is what the batch
//! engine uses for its default per-batch cache.
//!
//! The map is sharded, each shard behind its own [`RwLock`], so the parallel
//! batch engine can probe and fill the cache from many threads with little
//! contention. Hit/miss/stale/eviction counters are atomic and can be
//! snapshotted with [`SubformulaCache::stats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use events::DnfHash;

use crate::bounds::Bounds;

/// Maximum number of independently locked shards. A small power of two is
/// enough: the critical sections are single hash-map probes. Bounded caches
/// with a budget smaller than this use fewer shards so that the per-shard
/// budgets sum exactly to the configured total.
const MAX_SHARDS: usize = 16;

/// One memo entry: whichever of the two quantities have been computed so far
/// for a sub-formula, tagged with the space generation it is valid for, the
/// variable-count **watermark** its formula requires (one past the largest
/// `VarId` it mentions), and the CLOCK reference bit.
#[derive(Debug)]
struct CacheEntry {
    exact: Option<f64>,
    bounds: Option<Bounds>,
    generation: u64,
    /// Smallest space watermark under which every variable of the entry's
    /// formula exists. Valid while `watermark <= space.watermark()`: under
    /// one generation the space only grows by appends, so an entry computed
    /// at a lower watermark stays correct forever — the check only bites for
    /// clones that lag behind the space that stored the entry.
    watermark: u64,
    /// Set on every valid lookup (under the shard's read lock); cleared by
    /// the clock hand when the shard is over budget. An entry is only evicted
    /// after a full hand pass finds its bit still clear.
    referenced: AtomicBool,
}

impl CacheEntry {
    fn fresh(generation: u64, watermark: u64) -> Self {
        CacheEntry {
            exact: None,
            bounds: None,
            generation,
            watermark,
            referenced: AtomicBool::new(true),
        }
    }
}

/// One lock domain of the cache: a hash map plus the CLOCK ring/hand that
/// bounds it. Every key in `ring` is in `map` and vice versa.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<DnfHash, CacheEntry>,
    ring: Vec<DnfHash>,
    hand: usize,
    /// Entry budget of this shard; `None` = unbounded.
    budget: Option<usize>,
}

impl Shard {
    /// Inserts a value for an absent `key`, evicting one entry CLOCK-style
    /// when the shard is at budget. Returns `true` if an eviction happened.
    fn insert_new(&mut self, key: DnfHash, entry: CacheEntry) -> bool {
        match self.budget {
            Some(0) => false, // zero-capacity cache stores nothing
            None => {
                // Unbounded shard: eviction never runs, so don't maintain the
                // clock ring (it would duplicate every key for nothing).
                self.map.insert(key, entry);
                false
            }
            Some(budget) if self.map.len() >= budget => {
                // Second-chance sweep: clear reference bits until an entry
                // that has not been touched since the last pass comes under
                // the hand, then reuse its ring slot.
                loop {
                    let candidate = self.ring[self.hand];
                    let referenced = match self.map.get_mut(&candidate) {
                        Some(e) => std::mem::replace(e.referenced.get_mut(), false),
                        None => false,
                    };
                    if referenced {
                        self.hand = (self.hand + 1) % self.ring.len();
                    } else {
                        self.map.remove(&candidate);
                        self.ring[self.hand] = key;
                        self.hand = (self.hand + 1) % self.ring.len();
                        self.map.insert(key, entry);
                        return true;
                    }
                }
            }
            _ => {
                self.ring.push(key);
                self.map.insert(key, entry);
                false
            }
        }
    }
}

/// A thread-safe memo table for exact leaf probabilities and bucket bounds,
/// keyed by canonical DNF hash and scoped to a probability-space generation.
/// See the module documentation in `cache.rs`.
#[derive(Debug)]
pub struct SubformulaCache {
    shards: Vec<RwLock<Shard>>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SubformulaCache {
    fn default() -> Self {
        SubformulaCache::new()
    }
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that found a stored value of the current generation.
    pub hits: u64,
    /// Number of lookups that found nothing usable (including stale entries).
    pub misses: u64,
    /// Number of lookups that found an entry of an outdated generation
    /// (counted in `misses` as well). A burst of these right after a database
    /// mutation is expected; sustained stale traffic means some caller keeps
    /// using an old space.
    pub stale: u64,
    /// Number of entries evicted by the CLOCK policy to stay within the
    /// configured budget (always 0 for unbounded caches).
    pub evictions: u64,
    /// Number of distinct sub-formulas currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since an `earlier` snapshot of the same
    /// cache (`entries` is reported as-of `self`, not as a delta). This is
    /// how the batch engine reports per-batch effectiveness of a long-lived
    /// shared cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            stale: self.stale.saturating_sub(earlier.stale),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

impl SubformulaCache {
    /// Creates an empty, **unbounded** cache (the batch engine's default
    /// per-batch mode, where the batch's lifetime bounds the memory).
    pub fn new() -> Self {
        Self::build(MAX_SHARDS, None)
    }

    /// Creates an empty cache bounded to at most `capacity` entries in total,
    /// enforced per shard with CLOCK (second-chance) eviction. This is the
    /// right constructor for a long-lived cache shared across batches via
    /// [`std::sync::Arc`]; see the module documentation in `cache.rs`.
    pub fn with_capacity(capacity: usize) -> Self {
        // Shard budgets must sum exactly to `capacity`; small caches use
        // fewer shards so every shard keeps a few clock slots (a budget of 1
        // degenerates CLOCK into evict-on-every-insert).
        let shards = (capacity / 4).clamp(1, MAX_SHARDS);
        Self::build(shards, Some(capacity))
    }

    fn build(num_shards: usize, capacity: Option<usize>) -> Self {
        let shards = (0..num_shards)
            .map(|i| {
                let budget = capacity.map(|c| c / num_shards + usize::from(i < c % num_shards));
                RwLock::new(Shard { budget, ..Shard::default() })
            })
            .collect();
        SubformulaCache {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured total entry budget (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    #[inline]
    fn shard(&self, key: DnfHash) -> &RwLock<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Shared lookup logic: probe the entry for `key`, validate its
    /// generation and watermark, extract a field, and maintain the counters.
    fn lookup<T>(
        &self,
        key: DnfHash,
        generation: u64,
        watermark: u64,
        field: impl Fn(&CacheEntry) -> Option<T>,
    ) -> Option<T> {
        let shard = self.shard(key).read().expect("cache shard poisoned");
        let found = match shard.map.get(&key) {
            Some(e) if e.generation == generation && e.watermark <= watermark => {
                let v = field(e);
                if v.is_some() {
                    e.referenced.store(true, Ordering::Relaxed);
                }
                v
            }
            Some(_) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        };
        drop(shard);
        self.count(found.is_some());
        found
    }

    /// Shared store logic: update the entry for `key` in place when its
    /// generation matches, replace it wholesale when it is stale, insert
    /// (evicting if at budget) when absent. `watermark` is the variable-count
    /// watermark the stored formula *requires* (one past its largest
    /// `VarId`) — a pure function of the formula, so repeated stores for one
    /// key agree on it.
    fn store(
        &self,
        key: DnfHash,
        generation: u64,
        watermark: u64,
        apply: impl Fn(&mut CacheEntry),
    ) {
        let mut shard = self.shard(key).write().expect("cache shard poisoned");
        if let Some(e) = shard.map.get_mut(&key) {
            if e.generation != generation {
                *e = CacheEntry::fresh(generation, watermark);
            }
            apply(e);
            *e.referenced.get_mut() = true;
            return;
        }
        let mut entry = CacheEntry::fresh(generation, watermark);
        apply(&mut entry);
        if shard.insert_new(key, entry) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up the exact probability stored for `key`, valid under
    /// `generation` at the current space `watermark`.
    pub fn lookup_exact(&self, key: DnfHash, generation: u64, watermark: u64) -> Option<f64> {
        self.lookup(key, generation, watermark, |e| e.exact)
    }

    /// Stores the exact probability of the sub-formula identified by `key`,
    /// computed under the given space `generation`; `watermark` is the
    /// variable-count watermark the formula requires
    /// ([`events::Dnf::required_watermark`]).
    pub fn store_exact(&self, key: DnfHash, generation: u64, watermark: u64, probability: f64) {
        self.store(key, generation, watermark, |e| e.exact = Some(probability));
    }

    /// Looks up the bucket bounds stored for `key`, valid under `generation`
    /// at the current space `watermark`.
    pub fn lookup_bounds(&self, key: DnfHash, generation: u64, watermark: u64) -> Option<Bounds> {
        self.lookup(key, generation, watermark, |e| e.bounds)
    }

    /// Stores the bucket bounds of the sub-formula identified by `key`,
    /// computed under the given space `generation`; `watermark` is the
    /// variable-count watermark the formula requires.
    pub fn store_bounds(&self, key: DnfHash, generation: u64, watermark: u64, bounds: Bounds) {
        self.store(key, generation, watermark, |e| e.bounds = Some(bounds));
    }

    #[inline]
    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of distinct sub-formulas stored (across all generations).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("cache shard poisoned").map.len()).sum()
    }

    /// `true` when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept; eviction counters do not change
    /// — `clear` is bookkeeping, not policy).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.write().expect("cache shard poisoned");
            shard.map.clear();
            shard.ring.clear();
            shard.hand = 0;
        }
    }

    /// Snapshots the effectiveness counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Per-run memo used by the DFS approximation: a private (lock-free) map in
/// front of an optional shared [`SubformulaCache`], pinned to the generation
/// of the space the run evaluates against.
///
/// The private layer guarantees that *within one run* every sub-formula is
/// evaluated at most once even when no shared cache is attached; the shared
/// layer extends that guarantee across the lineages of a batch and, for a
/// long-lived cache, across batches.
#[derive(Debug, Default)]
pub(crate) struct Memo<'c> {
    exact: HashMap<DnfHash, f64>,
    bounds: HashMap<DnfHash, Bounds>,
    shared: Option<&'c SubformulaCache>,
    generation: u64,
    /// Current watermark of the space the run evaluates against (used to
    /// validate shared-layer lookups).
    watermark: u64,
}

impl<'c> Memo<'c> {
    pub(crate) fn with_shared(
        shared: Option<&'c SubformulaCache>,
        generation: u64,
        watermark: u64,
    ) -> Self {
        Memo { exact: HashMap::new(), bounds: HashMap::new(), shared, generation, watermark }
    }

    /// Returns the memoized exact probability for `key`, consulting the
    /// private then the shared layer.
    pub(crate) fn get_exact(&mut self, key: DnfHash) -> Option<f64> {
        if let Some(&p) = self.exact.get(&key) {
            return Some(p);
        }
        let p = self.shared?.lookup_exact(key, self.generation, self.watermark)?;
        self.exact.insert(key, p);
        Some(p)
    }

    /// Records an exact probability in both layers; `required` is the
    /// watermark the formula requires ([`events::Dnf::required_watermark`]).
    pub(crate) fn put_exact(&mut self, key: DnfHash, required: u64, probability: f64) {
        self.exact.insert(key, probability);
        if let Some(shared) = self.shared {
            shared.store_exact(key, self.generation, required, probability);
        }
    }

    /// Returns the memoized bucket bounds for `key`.
    pub(crate) fn get_bounds(&mut self, key: DnfHash) -> Option<Bounds> {
        if let Some(&b) = self.bounds.get(&key) {
            return Some(b);
        }
        let b = self.shared?.lookup_bounds(key, self.generation, self.watermark)?;
        self.bounds.insert(key, b);
        Some(b)
    }

    /// Records bucket bounds in both layers.
    pub(crate) fn put_bounds(&mut self, key: DnfHash, required: u64, bounds: Bounds) {
        self.bounds.insert(key, bounds);
        if let Some(shared) = self.shared {
            shared.store_bounds(key, self.generation, required, bounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Dnf, VarId};

    fn key(i: u32) -> DnfHash {
        Dnf::literal(VarId(i)).canonical_hash()
    }

    const GEN: u64 = 7;
    /// Watermark used by the plain round-trip tests: stores require it,
    /// lookups run at it, so the watermark check is always satisfied.
    const WM: u64 = 1;

    #[test]
    fn store_and_lookup_roundtrip() {
        let cache = SubformulaCache::new();
        let k = key(1);
        assert_eq!(cache.lookup_exact(k, GEN, WM), None);
        cache.store_exact(k, GEN, WM, 0.25);
        assert_eq!(cache.lookup_exact(k, GEN, WM), Some(0.25));
        assert_eq!(cache.lookup_bounds(k, GEN, WM), None);
        cache.store_bounds(k, GEN, WM, Bounds::new(0.1, 0.4));
        let b = cache.lookup_bounds(k, GEN, WM).unwrap();
        assert_eq!((b.lower, b.upper), (0.1, 0.4));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = SubformulaCache::new();
        let k = key(2);
        let _ = cache.lookup_exact(k, GEN, WM); // miss (entry absent)
        cache.store_exact(k, GEN, WM, 0.5);
        let _ = cache.lookup_exact(k, GEN, WM); // hit
        let _ = cache.lookup_bounds(k, GEN, WM); // miss (entry present, bounds absent)
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.stale, 0);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stale_generations_never_leak() {
        let cache = SubformulaCache::new();
        let k = key(3);
        cache.store_exact(k, GEN, WM, 0.25);
        // A lookup under a newer generation misses and is counted as stale.
        assert_eq!(cache.lookup_exact(k, GEN + 1, WM), None);
        assert_eq!(cache.stats().stale, 1);
        // Storing under the new generation replaces the whole entry …
        cache.store_bounds(k, GEN + 1, WM, Bounds::new(0.2, 0.3));
        assert_eq!(cache.len(), 1);
        // … so the old generation's exact value is gone, not resurrected.
        assert_eq!(cache.lookup_exact(k, GEN + 1, WM), None);
        assert_eq!(cache.lookup_exact(k, GEN, WM), None);
        assert!(cache.lookup_bounds(k, GEN + 1, WM).is_some());
    }

    #[test]
    fn bounded_cache_respects_budget_and_counts_evictions() {
        let budget = 10;
        let cache = SubformulaCache::with_capacity(budget);
        assert_eq!(cache.capacity(), Some(budget));
        for i in 0..100u32 {
            cache.store_exact(key(i), GEN, WM, f64::from(i));
            assert!(cache.len() <= budget, "len {} over budget", cache.len());
        }
        let s = cache.stats();
        assert_eq!(s.entries, budget);
        assert_eq!(s.evictions, 90);
        // The budget also holds exactly when capacity < number of shards.
        let tiny = SubformulaCache::with_capacity(3);
        for i in 0..50u32 {
            tiny.store_exact(key(i), GEN, WM, 0.5);
        }
        assert_eq!(tiny.len(), 3);
        // Degenerate zero-capacity cache stores nothing and never panics.
        let none = SubformulaCache::with_capacity(0);
        none.store_exact(key(1), GEN, WM, 0.5);
        assert_eq!(none.len(), 0);
        assert_eq!(none.lookup_exact(key(1), GEN, WM), None);
    }

    #[test]
    fn clock_eviction_prefers_untouched_entries() {
        // Capacity 4 gives a single shard, so the clock order is
        // deterministic.
        let cache = SubformulaCache::with_capacity(4);
        for i in 0..4u32 {
            cache.store_exact(key(i), GEN, WM, f64::from(i));
        }
        // Touch entries 0..3 except 2; the sweep clears everyone's bit once,
        // then evicts the first entry it finds unreferenced on the second
        // pass — which is entry 0 … but entry 0 was *looked up*, so its bit
        // is set and survives the first pass. After one full clearing pass
        // the hand is back at 0 with all bits clear; 0 is evicted.
        let _ = cache.lookup_exact(key(0), GEN, WM);
        let _ = cache.lookup_exact(key(1), GEN, WM);
        let _ = cache.lookup_exact(key(3), GEN, WM);
        cache.store_exact(key(10), GEN, WM, 10.0);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 1);
        // The new key is present.
        assert_eq!(cache.lookup_exact(key(10), GEN, WM), Some(10.0));
        // A second insert now evicts an entry whose bit was cleared by the
        // first sweep — the recently stored key(10) (bit set on store)
        // survives.
        cache.store_exact(key(11), GEN, WM, 11.0);
        assert_eq!(cache.lookup_exact(key(10), GEN, WM), Some(10.0));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = SubformulaCache::with_capacity(8);
        for i in 0..8u32 {
            cache.store_exact(key(i), GEN, WM, 0.5);
        }
        cache.clear();
        assert!(cache.is_empty());
        // The cache stays usable after clearing.
        cache.store_exact(key(1), GEN, WM, 0.5);
        assert_eq!(cache.lookup_exact(key(1), GEN, WM), Some(0.5));
    }

    #[test]
    fn stats_since_reports_deltas() {
        let cache = SubformulaCache::new();
        cache.store_exact(key(1), GEN, WM, 0.5);
        let _ = cache.lookup_exact(key(1), GEN, WM);
        let before = cache.stats();
        let _ = cache.lookup_exact(key(1), GEN, WM);
        let _ = cache.lookup_exact(key(2), GEN, WM);
        let delta = cache.stats().since(&before);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.entries, 1);
    }

    #[test]
    fn concurrent_fill_is_consistent() {
        let cache = SubformulaCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let k = key(i);
                        cache.store_exact(k, GEN, WM, f64::from(i) / 100.0);
                        let _ = cache.lookup_exact(k, GEN, WM);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        for i in 0..100u32 {
            assert_eq!(cache.lookup_exact(key(i), GEN, WM), Some(f64::from(i) / 100.0));
        }
    }

    #[test]
    fn concurrent_fill_of_bounded_cache_keeps_budget() {
        let cache = SubformulaCache::with_capacity(32);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let k = key(t * 1000 + i);
                        cache.store_exact(k, GEN, WM, 0.5);
                        let _ = cache.lookup_exact(k, GEN, WM);
                    }
                });
            }
        });
        assert!(cache.len() <= 32, "len {} over budget", cache.len());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn memo_prefers_private_layer_and_fills_shared() {
        let shared = SubformulaCache::new();
        let mut memo = Memo::with_shared(Some(&shared), GEN, WM);
        let k = key(9);
        assert_eq!(memo.get_exact(k), None);
        memo.put_exact(k, WM, 0.75);
        assert_eq!(memo.get_exact(k), Some(0.75));
        // The shared layer saw the store.
        assert_eq!(shared.lookup_exact(k, GEN, WM), Some(0.75));
        // A fresh memo over the same shared cache hits through it.
        let mut memo2 = Memo::with_shared(Some(&shared), GEN, WM);
        assert_eq!(memo2.get_exact(k), Some(0.75));
        // A memo pinned to a newer generation misses: the entry is stale.
        let mut memo3 = Memo::with_shared(Some(&shared), GEN + 1, WM);
        assert_eq!(memo3.get_exact(k), None);
    }

    #[test]
    fn memo_without_shared_layer_is_private() {
        let mut memo = Memo::with_shared(None, GEN, WM);
        let k = key(3);
        assert_eq!(memo.get_bounds(k), None);
        memo.put_bounds(k, WM, Bounds::point(0.3));
        assert!(memo.get_bounds(k).unwrap().is_point());
    }
}
