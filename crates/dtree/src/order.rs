//! Variable-elimination orders for Shannon expansion.
//!
//! The order of the variable choices greatly influences the size of the
//! d-tree (Section IV). The paper uses:
//!
//! * the **IQ order** of Lemma 6.8 for lineage of inequality (IQ) queries —
//!   pick a variable that co-occurs with *all* variables of *all other*
//!   relations, which makes its positive cofactor subsume the rest,
//! * the **most frequently occurring** variable as the general fallback.

use std::collections::{BTreeMap, BTreeSet};

use events::{Dnf, DnfRef, VarId, VarOrigins};

/// Strategy for choosing the next variable to eliminate by Shannon expansion.
#[derive(Debug, Clone, Default)]
pub enum VarOrder {
    /// Choose a variable occurring in the largest number of clauses (the
    /// paper's fallback heuristic).
    #[default]
    MostFrequent,
    /// Follow a fixed order: the first variable of the list that still occurs
    /// in the DNF is chosen; falls back to `MostFrequent` when none does.
    Fixed(Vec<VarId>),
    /// Try the IQ-query order of Lemma 6.8 first (requires variable origins);
    /// falls back to `MostFrequent` when no such variable exists.
    IqThenFrequent,
}

/// Chooses the next Shannon-expansion variable for `dnf` according to the
/// strategy, using origin labels when provided.
///
/// Returns `None` only when the DNF mentions no variable at all.
pub fn choose_variable(dnf: &Dnf, order: &VarOrder, origins: Option<&VarOrigins>) -> Option<VarId> {
    choose_variable_ref(DnfRef::Owned(dnf), order, origins)
}

/// Representation-generic core of [`choose_variable`]: owned DNFs and arena
/// views share one implementation, so the chosen variable — and with it the
/// whole d-tree shape — is identical on both paths.
pub fn choose_variable_ref(
    dnf: DnfRef<'_>,
    order: &VarOrder,
    origins: Option<&VarOrigins>,
) -> Option<VarId> {
    match order {
        VarOrder::MostFrequent => dnf.most_frequent_var(),
        VarOrder::Fixed(vars) => {
            let present = dnf.vars();
            vars.iter().copied().find(|v| present.contains(v)).or_else(|| dnf.most_frequent_var())
        }
        VarOrder::IqThenFrequent => {
            origins.and_then(|o| choose_iq_variable_ref(dnf, o)).or_else(|| dnf.most_frequent_var())
        }
    }
}

/// Implements the variable choice of Lemma 6.8 for IQ-query lineage.
///
/// A variable `v` from relation `Rᵢ` qualifies when the clauses containing
/// `v` mention **all** distinct variables of **every other** relation that
/// appear anywhere in the DNF. For such a variable the co-factor of `v`
/// subsumes `Φ|v`, which keeps the expansion linear (Theorem 6.9).
///
/// Returns `None` when no variable qualifies (e.g. the lineage is not from an
/// IQ query), in which case the caller falls back to the most-frequent
/// heuristic.
pub fn choose_iq_variable(dnf: &Dnf, origins: &VarOrigins) -> Option<VarId> {
    choose_iq_variable_ref(DnfRef::Owned(dnf), origins)
}

/// Representation-generic core of [`choose_iq_variable`].
pub fn choose_iq_variable_ref(dnf: DnfRef<'_>, origins: &VarOrigins) -> Option<VarId> {
    if dnf.is_empty() || dnf.is_tautology() {
        return None;
    }
    // Distinct variables per relation (origin group) in the whole DNF.
    let mut per_relation: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();
    for i in 0..dnf.clause_count() {
        for a in dnf.clause_atoms(i) {
            let group = origins.get(a.var)?;
            per_relation.entry(group).or_default().insert(a.var);
        }
    }
    if per_relation.len() < 2 {
        // A single relation: any variable trivially qualifies; pick the most
        // frequent to keep behaviour sensible.
        return dnf.most_frequent_var();
    }
    // Candidate variables, scanned in ascending id order for determinism.
    let candidates: BTreeSet<VarId> = dnf.vars();
    for &v in &candidates {
        let v_group = origins.get(v)?;
        // Distinct variables per relation restricted to clauses containing v.
        let mut restricted: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();
        for i in 0..dnf.clause_count() {
            if !dnf.mentions(i, v) {
                continue;
            }
            for a in dnf.clause_atoms(i) {
                let group = origins.get(a.var)?;
                restricted.entry(group).or_default().insert(a.var);
            }
        }
        let qualifies = per_relation.iter().all(|(group, vars)| {
            if *group == v_group {
                true
            } else {
                restricted.get(group).map(|r| r.len() == vars.len()).unwrap_or(false)
            }
        });
        if qualifies {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, ProbabilitySpace};

    fn bool_space(n: usize) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = (0..n).map(|i| s.add_bool(format!("x{i}"), 0.5)).collect();
        (s, vars)
    }

    #[test]
    fn most_frequent_is_default() {
        let (_, vars) = bool_space(3);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
        ]);
        assert_eq!(choose_variable(&dnf, &VarOrder::default(), None), Some(vars[0]));
    }

    #[test]
    fn fixed_order_follows_list_then_falls_back() {
        let (_, vars) = bool_space(4);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[1], vars[2]]),
            Clause::from_bools(&[vars[2]]),
        ]);
        let order = VarOrder::Fixed(vec![vars[0], vars[2], vars[1]]);
        // vars[0] is absent, vars[2] present.
        assert_eq!(choose_variable(&dnf, &order, None), Some(vars[2]));
        // Empty fixed list falls back to most frequent.
        assert_eq!(choose_variable(&dnf, &VarOrder::Fixed(vec![]), None), dnf.most_frequent_var());
    }

    /// Lineage of q():-R(X), S(Y), X < Y on R = {x1, x2}, S = {y1, y2} with
    /// sort order x1 < y1 < x2 < y2: clauses x1y1, x1y2, x2y2. Variable x1
    /// co-occurs with all S-variables, so it is the IQ choice of Lemma 6.8.
    #[test]
    fn iq_variable_choice_on_inequality_lineage() {
        let (_, vars) = bool_space(4);
        let (x1, x2, y1, y2) = (vars[0], vars[1], vars[2], vars[3]);
        let mut origins = VarOrigins::new();
        origins.set(x1, 0);
        origins.set(x2, 0);
        origins.set(y1, 1);
        origins.set(y2, 1);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[x1, y1]),
            Clause::from_bools(&[x1, y2]),
            Clause::from_bools(&[x2, y2]),
        ]);
        assert_eq!(choose_iq_variable(&dnf, &origins), Some(x1));
        assert_eq!(choose_variable(&dnf, &VarOrder::IqThenFrequent, Some(&origins)), Some(x1));
    }

    /// Lineage of the hard pattern R(X),S(X,Y),T(Y) on a complete bipartite
    /// probabilistic S has no IQ variable; the chooser falls back.
    #[test]
    fn iq_choice_fails_on_hard_pattern_lineage() {
        let (_, vars) = bool_space(6);
        let (r1, r2, s11, s22, t1, t2) = (vars[0], vars[1], vars[2], vars[3], vars[4], vars[5]);
        let mut origins = VarOrigins::new();
        for (v, g) in [(r1, 0), (r2, 0), (s11, 1), (s22, 1), (t1, 2), (t2, 2)] {
            origins.set(v, g);
        }
        // r1 s11 t1 ∨ r2 s22 t2: no variable co-occurs with all variables of
        // all other relations (r1 misses t2, etc.).
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[r1, s11, t1]),
            Clause::from_bools(&[r2, s22, t2]),
        ]);
        assert_eq!(choose_iq_variable(&dnf, &origins), None);
        // The combined strategy still returns something.
        assert!(choose_variable(&dnf, &VarOrder::IqThenFrequent, Some(&origins)).is_some());
    }

    #[test]
    fn iq_choice_with_missing_origins_returns_none() {
        let (_, vars) = bool_space(2);
        let origins = VarOrigins::new();
        let dnf = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        assert_eq!(choose_iq_variable(&dnf, &origins), None);
    }

    #[test]
    fn iq_choice_single_relation_uses_most_frequent() {
        let (_, vars) = bool_space(2);
        let mut origins = VarOrigins::new();
        origins.set(vars[0], 0);
        origins.set(vars[1], 0);
        let dnf =
            Dnf::from_clauses(vec![Clause::from_bools(&[vars[0]]), Clause::from_bools(&[vars[1]])]);
        assert_eq!(choose_iq_variable(&dnf, &origins), dnf.most_frequent_var());
    }

    #[test]
    fn empty_dnf_has_no_variable() {
        assert_eq!(choose_variable(&Dnf::empty(), &VarOrder::MostFrequent, None), None);
        let origins = VarOrigins::new();
        assert_eq!(choose_iq_variable(&Dnf::tautology(), &origins), None);
    }
}
