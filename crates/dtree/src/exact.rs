//! Exact confidence computation by on-the-fly d-tree evaluation.
//!
//! The "d-tree(error 0)" configuration of the paper's experiments: the
//! decompositions of Figure 1 are applied recursively, but the tree is never
//! materialised — each node's probability is computed from its children's
//! probabilities as soon as they are available, so memory stays proportional
//! to the recursion depth. Unlike the approximation path, no leaf bounds are
//! computed (the paper notes exact computation can be *faster* than
//! ε-approximation for this reason, cf. the discussion of Figure 6).
//!
//! The recursion runs on [`DnfView`]s over a [`LineageArena`]: the input
//! lineage is interned once, and every decomposition step afterwards is
//! index manipulation — no clause vectors are cloned on the hot path. The
//! result is bit-identical to the owned-`Dnf` recursion this replaced (kept
//! as [`crate::reference::exact_probability_reference`] for differential
//! testing and benchmarking).

use events::{product_factorization_by, DnfRef, DnfView, LineageArena};
use events::{Dnf, ProbabilitySpace};

use crate::cache::SubformulaCache;
use crate::compile::CompileOptions;
use crate::order::choose_variable_ref;
use crate::stats::CompileStats;

/// Result of an exact confidence computation.
#[derive(Debug, Clone, Copy)]
pub struct ExactResult {
    /// The exact probability of the DNF.
    pub probability: f64,
    /// Statistics about the (virtual) d-tree that was traversed.
    pub stats: CompileStats,
}

/// Scope of the shared cache during a run: the cache plus the generation and
/// watermark of the space the run evaluates against.
#[derive(Clone, Copy)]
struct CacheScope<'c> {
    cache: &'c SubformulaCache,
    generation: u64,
    watermark: u64,
}

/// Computes the exact probability of `dnf` by recursive decomposition,
/// without materialising the d-tree.
pub fn exact_probability(
    dnf: &Dnf,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
) -> ExactResult {
    let mut arena = LineageArena::with_capacity(dnf.len(), 4);
    let root = arena.intern(dnf);
    exact_probability_view(&mut arena, &root, space, opts)
}

/// Computes the exact probability of a lineage supplied as a **clause
/// stream** — e.g. clauses decoded one tuple at a time out of a disk-backed
/// table — without ever materializing an owned [`Dnf`]. The stream is
/// interned straight into a fresh arena
/// ([`LineageArena::intern_clause_stream`]) and evaluated in place, so peak
/// memory holds the interned (deduplicated) formula, never the raw clause
/// vector. Bit-identical to collecting the stream into a [`Dnf`] and calling
/// [`exact_probability`].
pub fn exact_probability_stream<I>(
    clauses: I,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
) -> ExactResult
where
    I: IntoIterator<Item = events::Clause>,
{
    let mut arena = LineageArena::new();
    let root = arena.intern_clause_stream(clauses);
    exact_probability_view(&mut arena, &root, space, opts)
}

/// [`exact_probability`] on an already-interned view — the zero-copy entry
/// point for callers that hold an arena (the batch engine interns each
/// lineage once and evaluates everything against it).
pub fn exact_probability_view(
    arena: &mut LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
) -> ExactResult {
    let mut stats = CompileStats::default();
    let probability = exact_rec(arena, view, space, opts, &mut stats, 0, None);
    ExactResult { probability, stats }
}

/// Like [`exact_probability`], but memoizing every non-trivial sub-DNF's
/// probability in a shared [`SubformulaCache`], so repeated sub-formulas —
/// within one lineage or across the lineages of a batch — are computed once.
///
/// Cache entries are tagged with `space.generation()` and the variable-count
/// watermark their formula requires: values survive append-only growth of
/// the space (fresh tables) and are retired by genuine in-place changes.
/// Because the evaluation is deterministic, a cached value is bit-identical
/// to what the uncached recursion would compute, so
/// `exact_probability_cached` returns exactly the probability
/// [`exact_probability`] would.
pub fn exact_probability_cached(
    dnf: &Dnf,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    cache: &SubformulaCache,
) -> ExactResult {
    let mut arena = LineageArena::with_capacity(dnf.len(), 4);
    let root = arena.intern(dnf);
    exact_probability_view_cached(&mut arena, &root, space, opts, cache)
}

/// [`exact_probability_cached`] on an already-interned view.
pub fn exact_probability_view_cached(
    arena: &mut LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    cache: &SubformulaCache,
) -> ExactResult {
    let mut stats = CompileStats::default();
    let scope = CacheScope { cache, generation: space.generation(), watermark: space.watermark() };
    let probability = exact_rec(arena, view, space, opts, &mut stats, 0, Some(scope));
    ExactResult { probability, stats }
}

fn exact_rec(
    arena: &mut LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    stats: &mut CompileStats,
    depth: usize,
    cache: Option<CacheScope<'_>>,
) -> f64 {
    // Memoize non-trivial sub-DNFs (constants and single clauses are cheaper
    // to recompute than to hash).
    if let Some(scope) = cache {
        if view.len() >= 2 {
            let key = view.hash(arena);
            if let Some(p) = scope.cache.lookup_exact(key, scope.generation, scope.watermark) {
                stats.exact_cache_hits += 1;
                return p;
            }
            let p = exact_step(arena, view, space, opts, stats, depth, cache);
            stats.exact_evaluations += 1;
            scope.cache.store_exact(key, scope.generation, view.required_watermark(arena), p);
            return p;
        }
    }
    exact_step(arena, view, space, opts, stats, depth, cache)
}

fn exact_step(
    arena: &mut LineageArena,
    view: &DnfView,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    stats: &mut CompileStats,
    depth: usize,
    cache: Option<CacheScope<'_>>,
) -> f64 {
    stats.max_depth = stats.max_depth.max(depth);

    if view.is_empty() {
        stats.exact_leaves += 1;
        return 0.0;
    }
    if view.is_tautology(arena) {
        stats.exact_leaves += 1;
        return 1.0;
    }

    // Step 1: subsumption removal (index filtering — no clause copies).
    let (view, removed) = view.remove_subsumed(arena);
    stats.subsumed_clauses += removed;

    // Single clause: product of atom marginals.
    if view.len() == 1 {
        stats.exact_leaves += 1;
        return view.clause_probability(arena, space, 0);
    }

    // Step 2: independent-or (⊗).
    let components = view.independent_components(arena);
    if components.len() > 1 {
        stats.or_nodes += 1;
        let mut prod = 1.0;
        for c in &components {
            prod *= 1.0 - exact_rec(arena, c, space, opts, stats, depth + 1, cache);
        }
        return 1.0 - prod;
    }

    // Step 3a: independent-and (⊙) by common-atom factoring.
    let common = view.common_atoms(arena);
    if !common.is_empty() {
        stats.and_nodes += 1;
        stats.exact_leaves += common.len();
        let factored: f64 = common.iter().map(|a| space.atom_prob(*a)).product();
        let vars: Vec<_> = common.iter().map(|a| a.var).collect();
        let rest = view.strip_vars(arena, &vars);
        return factored * exact_rec(arena, &rest, space, opts, stats, depth + 1, cache);
    }

    // Step 3b: independent-and (⊙) by relational product factorization.
    if let Some(origins) = &opts.origins {
        let factors = product_factorization_by(view.len(), |i| view.clause(arena, i), origins);
        if let Some(factors) = factors {
            stats.and_nodes += 1;
            let mut prod = 1.0;
            for clauses in factors {
                let factor = arena.intern_sorted_clauses(&clauses);
                prod *= exact_rec(arena, &factor, space, opts, stats, depth + 1, cache);
            }
            return prod;
        }
    }

    // Step 4: Shannon expansion (⊕).
    let var =
        choose_variable_ref(DnfRef::Arena(arena, &view), &opts.var_order, opts.origins.as_ref())
            .expect("non-constant DNF mentions at least one variable");
    stats.xor_nodes += 1;
    let mut total = 0.0;
    for (value, cofactor) in view.shannon_cofactors(arena, var, space) {
        stats.and_nodes += 1;
        stats.exact_leaves += 1;
        total += space.prob(var, value)
            * exact_rec(arena, &cofactor, space, opts, stats, depth + 1, cache);
    }
    total.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, VarId, VarOrigins};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    #[test]
    fn matches_enumeration_on_example_5_2() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        let r = exact_probability(&phi, &s, &CompileOptions::default());
        assert!((r.probability - 0.8456).abs() < 1e-12);
        assert!(r.stats.total_nodes() > 0);
    }

    #[test]
    fn stream_entry_point_is_bit_identical_to_owned_dnf() {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8, 0.45]);
        let clauses: Vec<Clause> = vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            // Duplicate + unsorted input: the stream interner canonicalizes.
            Clause::from_bools(&[vars[2], vars[0]]),
            Clause::from_bools(&[vars[3], vars[4]]),
        ];
        let owned =
            exact_probability(&Dnf::from_clauses(clauses.clone()), &s, &CompileOptions::default());
        let streamed = exact_probability_stream(clauses, &s, &CompileOptions::default());
        assert_eq!(streamed.probability.to_bits(), owned.probability.to_bits());
    }

    #[test]
    fn matches_enumeration_on_correlated_chains() {
        // Chain lineage x0x1 ∨ x1x2 ∨ x2x3 ∨ x3x4 needs Shannon expansion.
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.6, 0.7]);
        let phi = Dnf::from_clauses(
            (0..4).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let r = exact_probability(&phi, &s, &CompileOptions::default());
        let brute = phi.exact_probability_enumeration(&s);
        assert!((r.probability - brute).abs() < 1e-12);
        assert!(r.stats.xor_nodes > 0);
    }

    #[test]
    fn constants() {
        let (s, _) = bool_space(&[0.5]);
        assert_eq!(
            exact_probability(&Dnf::empty(), &s, &CompileOptions::default()).probability,
            0.0
        );
        assert_eq!(
            exact_probability(&Dnf::tautology(), &s, &CompileOptions::default()).probability,
            1.0
        );
    }

    #[test]
    fn hierarchical_lineage_avoids_shannon_with_origins() {
        // Lineage of the hierarchical query q():-R(A),S(A,B) on
        // R = {r1(a1), r2(a2)}, S = {s1(a1,b1), s2(a1,b2), s3(a2,b1)}:
        //   r1 s1 ∨ r1 s2 ∨ r2 s3
        // Connected components split on the A-value; within a component the
        // R-variable is common and factors out: no Shannon expansion needed.
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6, 0.7]);
        let (r1, r2, s1, s2, s3) = (vars[0], vars[1], vars[2], vars[3], vars[4]);
        let mut origins = VarOrigins::new();
        for (v, g) in [(r1, 0), (r2, 0), (s1, 1), (s2, 1), (s3, 1)] {
            origins.set(v, g);
        }
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[r1, s1]),
            Clause::from_bools(&[r1, s2]),
            Clause::from_bools(&[r2, s3]),
        ]);
        let opts = CompileOptions::with_origins(origins);
        let r = exact_probability(&phi, &s, &opts);
        let brute = phi.exact_probability_enumeration(&s);
        assert!((r.probability - brute).abs() < 1e-12);
        assert_eq!(r.stats.xor_nodes, 0, "hierarchical lineage must not need ⊕ nodes");
    }

    #[test]
    fn exact_equals_complete_dtree_evaluation() {
        let (s, vars) = bool_space(&[0.2, 0.8, 0.5, 0.4, 0.6, 0.3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
            Clause::from_bools(&[vars[3], vars[4]]),
            Clause::from_bools(&[vars[5]]),
        ]);
        let opts = CompileOptions::default();
        let direct = exact_probability(&phi, &s, &opts).probability;
        let tree = crate::compile(&phi, &s, &opts);
        let via_tree = tree.exact_probability(&s).unwrap();
        assert!((direct - via_tree).abs() < 1e-12);
    }

    #[test]
    fn large_independent_union_is_linear_and_exact() {
        // 200 independent single-literal clauses: exact probability is
        // 1 - Π(1 - p_i); the recursion must handle this without Shannon.
        let probs: Vec<f64> = (0..200).map(|i| 0.001 + (i as f64 % 50.0) / 60.0).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(vars.iter().map(|&v| Clause::from_bools(&[v])));
        let r = exact_probability(&phi, &s, &CompileOptions::default());
        let expected = 1.0 - probs.iter().map(|p| 1.0 - p).product::<f64>();
        assert!((r.probability - expected).abs() < 1e-9);
        assert_eq!(r.stats.xor_nodes, 0);
    }

    /// The arena recursion is bit-identical to the pre-arena owned-path
    /// recursion kept in [`crate::reference`].
    #[test]
    fn matches_reference_owned_path_bitwise() {
        let (s, vars) = bool_space(&[0.5, 0.4, 0.3, 0.6, 0.7, 0.9, 0.2, 0.8]);
        let phi = Dnf::from_clauses(
            (0..7).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let opts = CompileOptions::default();
        let arena_run = exact_probability(&phi, &s, &opts);
        let reference = crate::reference::exact_probability_reference(&phi, &s, &opts);
        assert_eq!(arena_run.probability.to_bits(), reference.probability.to_bits());
        assert_eq!(arena_run.stats, reference.stats);
    }
}
