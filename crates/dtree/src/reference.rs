//! The pre-arena **owned-`Dnf` reference implementations** of the exact and
//! approximate compilers.
//!
//! The production hot path ([`crate::exact_probability`],
//! [`crate::ApproxCompiler`]) runs on [`events::DnfView`]s over a
//! [`events::LineageArena`] — decomposition is index manipulation with zero
//! clause cloning. This module preserves the original algorithms that
//! re-materialise an owned [`Dnf`] at every decomposition step, for two
//! purposes:
//!
//! * **Differential testing** — the equivalence proptests pin the arena path
//!   bit-identical to this reference (same probabilities, same bounds, same
//!   d-tree node counts);
//! * **Benchmarking** — the `decomposition` criterion bench measures the
//!   arena path's speedup against this baseline.
//!
//! The reference is *not* wired into any production caller and intentionally
//! supports only the private per-run memo (no shared cache), mirroring what
//! `ApproxCompiler::run` / `exact_probability` did before the arena.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::Instant;

use events::VarOrigins;
use events::{product_factorization, Atom, Clause, Dnf, DnfHash, ProbabilitySpace, VarId};

use crate::approx::{ApproxOptions, ApproxResult, RefinementStrategy};
use crate::bounds::{independent_or_upper_bound, Bounds};
use crate::compile::CompileOptions;
use crate::exact::ExactResult;
use crate::order::VarOrder;
use crate::stats::CompileStats;

/// The pre-arena independent-or partitioning: map-based union-find over the
/// variable co-occurrence graph, kept verbatim.
fn independent_components_reference(dnf: &Dnf) -> Vec<Dnf> {
    if dnf.len() <= 1 {
        return vec![dnf.clone()];
    }
    let clauses = dnf.clauses();
    let mut var_to_first_clause: BTreeMap<VarId, usize> = BTreeMap::new();
    let mut uf: events::UnionFind<usize> = events::UnionFind::new();
    for (i, c) in clauses.iter().enumerate() {
        uf.insert(i);
        for v in c.vars() {
            match var_to_first_clause.entry(v) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::btree_map::Entry::Occupied(e) => uf.union(i, *e.get()),
            }
        }
    }
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..clauses.len() {
        let r = uf.find(i);
        by_root.entry(r).or_default().push(i);
    }
    let groups: Vec<Vec<usize>> = by_root.into_values().collect();
    if groups.len() <= 1 {
        return vec![dnf.clone()];
    }
    groups
        .into_iter()
        .map(|idxs| Dnf::from_clauses(idxs.into_iter().map(|i| clauses[i].clone())))
        .collect()
}

/// The pre-arena bucket-bounds implementation (BTreeSet buckets over owned
/// clauses), kept verbatim as the baseline's bound oracle.
pub fn dnf_bounds_reference(dnf: &Dnf, space: &ProbabilitySpace) -> Bounds {
    if dnf.is_empty() {
        return Bounds::point(0.0);
    }
    if dnf.is_tautology() {
        return Bounds::point(1.0);
    }
    let order: Vec<usize> =
        dnf.clauses_by_probability_desc(space).into_iter().map(|(i, _)| i).collect();
    let mut bounds = bucket_bounds_reference(dnf, space, &order);
    if let Some(fkg_upper) = independent_or_upper_bound(dnf, space) {
        bounds = Bounds::new(bounds.lower.min(fkg_upper), bounds.upper.min(fkg_upper));
    }
    bounds
}

fn bucket_bounds_reference(dnf: &Dnf, space: &ProbabilitySpace, order: &[usize]) -> Bounds {
    struct Bucket {
        vars: BTreeSet<VarId>,
        prob: f64,
    }
    let clauses = dnf.clauses();
    let mut buckets: Vec<Bucket> = Vec::new();
    for &i in order {
        let clause = &clauses[i];
        let cvars: Vec<VarId> = clause.vars().collect();
        let p = clause.probability(space);
        let slot = buckets.iter().position(|b| cvars.iter().all(|v| !b.vars.contains(v)));
        match slot {
            Some(idx) => {
                let b = &mut buckets[idx];
                b.vars.extend(cvars);
                b.prob = 1.0 - (1.0 - b.prob) * (1.0 - p);
            }
            None => {
                buckets.push(Bucket { vars: cvars.into_iter().collect(), prob: p });
            }
        }
    }
    let lower = buckets.iter().map(|b| b.prob).fold(0.0f64, f64::max);
    let upper: f64 = buckets.iter().map(|b| b.prob).sum();
    Bounds::new(lower, upper.min(1.0))
}

/// The pre-arena variable chooser over owned DNFs, kept verbatim.
fn choose_variable_reference(
    dnf: &Dnf,
    order: &VarOrder,
    origins: Option<&VarOrigins>,
) -> Option<VarId> {
    match order {
        VarOrder::MostFrequent => dnf.most_frequent_var(),
        VarOrder::Fixed(vars) => {
            let present = dnf.vars();
            vars.iter().copied().find(|v| present.contains(v)).or_else(|| dnf.most_frequent_var())
        }
        VarOrder::IqThenFrequent => origins
            .and_then(|o| choose_iq_variable_reference(dnf, o))
            .or_else(|| dnf.most_frequent_var()),
    }
}

fn choose_iq_variable_reference(dnf: &Dnf, origins: &VarOrigins) -> Option<VarId> {
    if dnf.is_empty() || dnf.is_tautology() {
        return None;
    }
    let mut per_relation: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();
    for clause in dnf.clauses() {
        for v in clause.vars() {
            let group = origins.get(v)?;
            per_relation.entry(group).or_default().insert(v);
        }
    }
    if per_relation.len() < 2 {
        return dnf.most_frequent_var();
    }
    let candidates: BTreeSet<VarId> = dnf.vars();
    for &v in &candidates {
        let v_group = origins.get(v)?;
        let mut restricted: BTreeMap<u32, BTreeSet<VarId>> = BTreeMap::new();
        for clause in dnf.clauses() {
            if !clause.mentions(v) {
                continue;
            }
            for w in clause.vars() {
                let group = origins.get(w)?;
                restricted.entry(group).or_default().insert(w);
            }
        }
        let qualifies = per_relation.iter().all(|(group, vars)| {
            if *group == v_group {
                true
            } else {
                restricted.get(group).map(|r| r.len() == vars.len()).unwrap_or(false)
            }
        });
        if qualifies {
            return Some(v);
        }
    }
    None
}

/// Leaf size threshold shared with the production path
/// (see `crate::approx`).
const EXACT_LEAF_VARS: usize = 12;

/// The original owned-path exact evaluation: every decomposition step builds
/// fresh `Dnf`s. Bit-identical to [`crate::exact_probability`].
pub fn exact_probability_reference(
    dnf: &Dnf,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
) -> ExactResult {
    let mut stats = CompileStats::default();
    let probability = exact_rec(dnf, space, opts, &mut stats, 0);
    ExactResult { probability, stats }
}

fn exact_rec(
    dnf: &Dnf,
    space: &ProbabilitySpace,
    opts: &CompileOptions,
    stats: &mut CompileStats,
    depth: usize,
) -> f64 {
    stats.max_depth = stats.max_depth.max(depth);

    if dnf.is_empty() {
        stats.exact_leaves += 1;
        return 0.0;
    }
    if dnf.is_tautology() {
        stats.exact_leaves += 1;
        return 1.0;
    }

    // Step 1: subsumption removal.
    let reduced = dnf.remove_subsumed();
    stats.subsumed_clauses += dnf.len() - reduced.len();
    let dnf = reduced;

    // Single clause: product of atom marginals.
    if dnf.len() == 1 {
        stats.exact_leaves += 1;
        return dnf.clauses()[0].probability(space);
    }

    // Step 2: independent-or (⊗).
    let components = independent_components_reference(&dnf);
    if components.len() > 1 {
        stats.or_nodes += 1;
        let mut prod = 1.0;
        for c in &components {
            prod *= 1.0 - exact_rec(c, space, opts, stats, depth + 1);
        }
        return 1.0 - prod;
    }

    // Step 3a: independent-and (⊙) by common-atom factoring.
    let common = dnf.common_atoms();
    if !common.is_empty() {
        stats.and_nodes += 1;
        stats.exact_leaves += common.len();
        let factored: f64 = common.iter().map(|a| space.atom_prob(*a)).product();
        let rest = dnf.strip_atoms(&common);
        return factored * exact_rec(&rest, space, opts, stats, depth + 1);
    }

    // Step 3b: independent-and (⊙) by relational product factorization.
    if let Some(origins) = &opts.origins {
        if let Some(factors) = product_factorization(dnf.clauses(), origins) {
            stats.and_nodes += 1;
            let mut prod = 1.0;
            for clauses in factors {
                prod *= exact_rec(&Dnf::from_clauses(clauses), space, opts, stats, depth + 1);
            }
            return prod;
        }
    }

    // Step 4: Shannon expansion (⊕).
    let var = choose_variable_reference(&dnf, &opts.var_order, opts.origins.as_ref())
        .expect("non-constant DNF mentions at least one variable");
    stats.xor_nodes += 1;
    let mut total = 0.0;
    for (value, cofactor) in dnf.shannon_cofactors(var, space) {
        stats.and_nodes += 1;
        stats.exact_leaves += 1;
        total += space.prob(var, value) * exact_rec(&cofactor, space, opts, stats, depth + 1);
    }
    total.min(1.0)
}

/// The original owned-path depth-first ε-approximation with leaf closing.
/// Bit-identical to [`crate::ApproxCompiler::run`] under the (default)
/// [`RefinementStrategy::DepthFirstClosing`] strategy; the priority strategy
/// is out of scope for the reference (it shares [`crate::PartialDTree`] with
/// the production path).
pub fn approx_reference(dnf: &Dnf, space: &ProbabilitySpace, opts: &ApproxOptions) -> ApproxResult {
    assert!(
        opts.strategy == RefinementStrategy::DepthFirstClosing,
        "the reference implements only the depth-first closing strategy"
    );
    let start = Instant::now();
    let mut dfs = Dfs {
        space,
        opts,
        frames: Vec::new(),
        stats: CompileStats::default(),
        steps: 0,
        start,
        budget_exhausted: false,
        exact_memo: HashMap::new(),
        bounds_memo: HashMap::new(),
    };
    let bounds = match dfs.explore(Work::Dnf(dnf.clone()), 0) {
        Outcome::Finished(b) | Outcome::StopAll(b) => b,
    };
    ApproxResult {
        lower: bounds.lower,
        upper: bounds.upper,
        estimate: opts.error.estimate_from(bounds),
        converged: opts.error.satisfied_by(bounds),
        steps: dfs.steps,
        stats: dfs.stats,
        elapsed: start.elapsed(),
    }
}

enum Work {
    Dnf(Dnf),
    Node(Op, Vec<Work>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Or,
    And,
    Xor,
}

enum Outcome {
    Finished(Bounds),
    StopAll(Bounds),
}

struct Frame {
    op: Op,
    done: Vec<Bounds>,
    pending: VecDeque<Bounds>,
}

impl Frame {
    fn allows_closing(&self) -> bool {
        self.op != Op::And
            || (self.done.iter().all(Bounds::is_point) && self.pending.iter().all(Bounds::is_point))
    }
}

struct Dfs<'a> {
    space: &'a ProbabilitySpace,
    opts: &'a ApproxOptions,
    frames: Vec<Frame>,
    stats: CompileStats,
    steps: usize,
    start: Instant,
    budget_exhausted: bool,
    exact_memo: HashMap<DnfHash, f64>,
    bounds_memo: HashMap<DnfHash, Bounds>,
}

impl Dfs<'_> {
    fn memo_exact(&mut self, dnf: &Dnf) -> f64 {
        let key = dnf.canonical_hash();
        if let Some(&p) = self.exact_memo.get(&key) {
            self.stats.exact_cache_hits += 1;
            return p;
        }
        let r = exact_probability_reference(dnf, self.space, &self.opts.compile);
        self.stats.exact_evaluations += 1;
        self.stats.or_nodes += r.stats.or_nodes;
        self.stats.and_nodes += r.stats.and_nodes;
        self.stats.xor_nodes += r.stats.xor_nodes;
        self.exact_memo.insert(key, r.probability);
        r.probability
    }

    fn memo_bounds(&mut self, dnf: &Dnf) -> Bounds {
        let key = dnf.canonical_hash();
        if let Some(&b) = self.bounds_memo.get(&key) {
            self.stats.bound_cache_hits += 1;
            return b;
        }
        let b = dnf_bounds_reference(dnf, self.space);
        self.stats.bound_evaluations += 1;
        self.bounds_memo.insert(key, b);
        b
    }

    fn global_bounds(&self, current: Bounds, pending_at_lower: bool) -> Bounds {
        let mut acc = current;
        for frame in self.frames.iter().rev() {
            let children: Vec<Bounds> = frame
                .done
                .iter()
                .copied()
                .chain(std::iter::once(acc))
                .chain(frame.pending.iter().map(|b| {
                    if pending_at_lower {
                        Bounds::point(b.lower)
                    } else {
                        *b
                    }
                }))
                .collect();
            acc = match frame.op {
                Op::Or => Bounds::combine_or(children),
                Op::And => Bounds::combine_and(children),
                Op::Xor => Bounds::combine_xor(children),
            };
        }
        acc
    }

    fn closing_allowed(&self) -> bool {
        self.frames.iter().all(Frame::allows_closing)
    }

    fn check_budget(&mut self) {
        if self.budget_exhausted {
            return;
        }
        if let Some(max) = self.opts.max_steps {
            if self.steps >= max {
                self.budget_exhausted = true;
            }
        }
        if let Some(timeout) = self.opts.timeout {
            if self.start.elapsed() >= timeout {
                self.budget_exhausted = true;
            }
        }
    }

    fn quick_bounds(&mut self, work: &Work) -> Bounds {
        match work {
            Work::Dnf(dnf) => {
                if dnf.is_empty() {
                    Bounds::point(0.0)
                } else if dnf.is_tautology() {
                    Bounds::point(1.0)
                } else if dnf.len() == 1 {
                    Bounds::point(dnf.clauses()[0].probability(self.space))
                } else if dnf.num_vars() <= EXACT_LEAF_VARS {
                    Bounds::point(self.memo_exact(dnf))
                } else {
                    self.memo_bounds(dnf)
                }
            }
            Work::Node(op, children) => {
                let bounds: Vec<Bounds> = children.iter().map(|c| self.quick_bounds(c)).collect();
                match op {
                    Op::Or => Bounds::combine_or(bounds),
                    Op::And => Bounds::combine_and(bounds),
                    Op::Xor => Bounds::combine_xor(bounds),
                }
            }
        }
    }

    fn explore(&mut self, work: Work, depth: usize) -> Outcome {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        match work {
            Work::Node(op, children) => self.explore_node(op, children, depth),
            Work::Dnf(dnf) => self.explore_dnf(dnf, depth),
        }
    }

    fn explore_node(&mut self, op: Op, children: Vec<Work>, depth: usize) -> Outcome {
        let pending: VecDeque<Bounds> =
            children.iter().skip(1).map(|c| self.quick_bounds(c)).collect();
        self.frames.push(Frame { op, done: Vec::new(), pending });
        for (i, child) in children.into_iter().enumerate() {
            if i > 0 {
                let frame = self.frames.last_mut().expect("frame pushed above");
                frame.pending.pop_front();
            }
            match self.explore(child, depth + 1) {
                Outcome::Finished(b) => {
                    let frame = self.frames.last_mut().expect("frame pushed above");
                    frame.done.push(b);
                }
                Outcome::StopAll(b) => {
                    self.frames.pop();
                    return Outcome::StopAll(b);
                }
            }
        }
        let frame = self.frames.pop().expect("frame pushed above");
        let combined = match op {
            Op::Or => Bounds::combine_or(frame.done),
            Op::And => Bounds::combine_and(frame.done),
            Op::Xor => Bounds::combine_xor(frame.done),
        };
        Outcome::Finished(combined)
    }

    fn explore_dnf(&mut self, dnf: Dnf, depth: usize) -> Outcome {
        if dnf.is_empty() {
            self.stats.exact_leaves += 1;
            return Outcome::Finished(Bounds::point(0.0));
        }
        if dnf.is_tautology() {
            self.stats.exact_leaves += 1;
            return Outcome::Finished(Bounds::point(1.0));
        }
        if dnf.len() == 1 {
            self.stats.exact_leaves += 1;
            return Outcome::Finished(Bounds::point(dnf.clauses()[0].probability(self.space)));
        }
        if dnf.num_vars() <= EXACT_LEAF_VARS {
            self.stats.exact_leaves += 1;
            let point = Bounds::point(self.memo_exact(&dnf));
            let global = self.global_bounds(point, false);
            if self.opts.error.satisfied_by(global) {
                return Outcome::StopAll(global);
            }
            return Outcome::Finished(point);
        }

        let current = self.memo_bounds(&dnf);

        let global = self.global_bounds(current, false);
        if self.opts.error.satisfied_by(global) {
            return Outcome::StopAll(global);
        }

        if self.closing_allowed() {
            let worst = self.global_bounds(current, true);
            if self.opts.error.satisfied_by(worst) {
                self.stats.closed_leaves += 1;
                return Outcome::Finished(current);
            }
        }

        self.check_budget();
        if self.budget_exhausted {
            self.stats.closed_leaves += 1;
            return Outcome::Finished(current);
        }

        self.steps += 1;
        let node = self.decompose(dnf);
        self.explore(node, depth)
    }

    fn decompose(&mut self, dnf: Dnf) -> Work {
        let reduced = dnf.remove_subsumed();
        self.stats.subsumed_clauses += dnf.len() - reduced.len();
        let dnf = reduced;

        if dnf.len() <= 1 || dnf.is_tautology() {
            return Work::Dnf(dnf);
        }

        let components = independent_components_reference(&dnf);
        if components.len() > 1 {
            self.stats.or_nodes += 1;
            return Work::Node(Op::Or, components.into_iter().map(Work::Dnf).collect());
        }

        let common = dnf.common_atoms();
        if !common.is_empty() {
            self.stats.and_nodes += 1;
            let rest = dnf.strip_atoms(&common);
            let mut children: Vec<Work> =
                common.iter().map(|a| Work::Dnf(Dnf::singleton(Clause::singleton(*a)))).collect();
            children.push(Work::Dnf(rest));
            return Work::Node(Op::And, children);
        }

        if let Some(origins) = &self.opts.compile.origins {
            if let Some(factors) = product_factorization(dnf.clauses(), origins) {
                self.stats.and_nodes += 1;
                return Work::Node(
                    Op::And,
                    factors.into_iter().map(|c| Work::Dnf(Dnf::from_clauses(c))).collect(),
                );
            }
        }

        let var = choose_variable_reference(
            &dnf,
            &self.opts.compile.var_order,
            self.opts.compile.origins.as_ref(),
        )
        .expect("non-constant DNF mentions a variable");
        self.stats.xor_nodes += 1;
        let mut branches = Vec::new();
        for (value, cofactor) in dnf.shannon_cofactors(var, self.space) {
            self.stats.and_nodes += 1;
            branches.push(Work::Node(
                Op::And,
                vec![
                    Work::Dnf(Dnf::singleton(Clause::singleton(Atom::new(var, value)))),
                    Work::Dnf(cofactor),
                ],
            ));
        }
        Work::Node(Op::Xor, branches)
    }
}
