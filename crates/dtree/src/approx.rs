//! Deterministic ε-approximation of DNF probability by incremental d-tree
//! compilation (Section V of the paper).
//!
//! Two refinement strategies are provided:
//!
//! * [`RefinementStrategy::DepthFirstClosing`] — the memory-efficient
//!   algorithm of Section V-D: depth-first compilation that keeps only the
//!   current root-to-leaf path, closes leaves whose worst-case contribution
//!   can no longer violate the error bound (Lemma 5.11 / Theorem 5.12), and
//!   stops as soon as the global bounds satisfy the sufficient condition of
//!   Proposition 5.8.
//! * [`RefinementStrategy::PriorityRefinement`] — the simpler algorithm also
//!   sketched in Section V-D: materialise the partial d-tree and repeatedly
//!   refine the open leaf with the widest bounds interval.
//!
//! The depth-first compiler runs on [`DnfView`]s over a [`LineageArena`]:
//! the input lineage is interned once, and every decomposition step — Shannon
//! cofactors, component splits, subsumption removal, common-atom factoring —
//! is index manipulation over the pooled clauses, with the memo keyed by the
//! views' incremental fingerprints. The results are bit-identical to the
//! pre-arena owned-`Dnf` compiler (preserved as
//! [`crate::reference::approx_reference`] for differential testing and as the
//! `decomposition` bench baseline).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use events::ProbabilitySpace;
use events::{product_factorization_by, Atom, Dnf, DnfRef, DnfView, LineageArena};

use crate::bounds::{dnf_bounds_ref, Bounds};
use crate::cache::{Memo, SubformulaCache};
use crate::compile::CompileOptions;
use crate::order::choose_variable_ref;
use crate::partial::PartialDTree;
use crate::resume::ResumableCompilation;
use crate::stats::CompileStats;

/// Leaf DNFs with at most this many distinct variables are evaluated exactly
/// (their complete sub-d-tree is folded on the fly) instead of being bounded
/// with the bucket heuristic and decomposed one step at a time. Small exact
/// leaves produce point bounds, which both tightens the global interval and
/// preserves the ε "slack" of Theorem 5.12 for the genuinely large leaves.
/// Shared with [`crate::resume`], whose refinement driver folds the same
/// class of leaves the same way so resumed slices converge like the DFS.
pub(crate) const EXACT_LEAF_VARS: usize = 12;

/// The approximation guarantee requested from the algorithm
/// (Definition 5.7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute (additive) error: the returned estimate `p̂` satisfies
    /// `p − ε ≤ p̂ ≤ p + ε`.
    Absolute(f64),
    /// Relative (multiplicative) error: the returned estimate `p̂` satisfies
    /// `(1 − ε)·p ≤ p̂ ≤ (1 + ε)·p`.
    Relative(f64),
}

impl ErrorBound {
    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        match self {
            ErrorBound::Absolute(e) | ErrorBound::Relative(e) => *e,
        }
    }

    /// The sufficient condition of Proposition 5.8: given d-tree bounds
    /// `[L, U]`, an ε-approximation can be read off iff
    /// * absolute: `U − L ≤ 2ε`,
    /// * relative: `(1 − ε)·U ≤ (1 + ε)·L`.
    pub fn satisfied_by(&self, bounds: Bounds) -> bool {
        match self {
            ErrorBound::Absolute(e) => bounds.upper - bounds.lower <= 2.0 * e + 1e-15,
            ErrorBound::Relative(e) => (1.0 - e) * bounds.upper <= (1.0 + e) * bounds.lower + 1e-15,
        }
    }

    /// An estimate guaranteed to be an ε-approximation whenever
    /// [`ErrorBound::satisfied_by`] holds for `bounds` (Proposition 5.8):
    /// * absolute: any value in `[U − ε, L + ε]` — we return the midpoint of
    ///   `[L, U]`, which always lies in that interval when it is non-empty;
    /// * relative: the midpoint of `[(1 − ε)·U, (1 + ε)·L]`.
    ///
    /// When the condition does not hold the bounds midpoint is returned as a
    /// best-effort estimate (with `converged = false` in [`ApproxResult`]).
    pub fn estimate_from(&self, bounds: Bounds) -> f64 {
        match self {
            ErrorBound::Absolute(_) => bounds.midpoint(),
            ErrorBound::Relative(e) => {
                if self.satisfied_by(bounds) {
                    0.5 * ((1.0 - e) * bounds.upper + (1.0 + e) * bounds.lower)
                } else {
                    bounds.midpoint()
                }
            }
        }
    }
}

/// Strategy used to pick which part of the d-tree to refine next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementStrategy {
    /// Memory-efficient depth-first compilation with leaf closing
    /// (Section V-D). This is the algorithm evaluated in the paper.
    #[default]
    DepthFirstClosing,
    /// Materialise the partial d-tree and repeatedly refine the leaf with the
    /// widest bounds interval.
    PriorityRefinement,
}

/// Options for the approximation algorithm.
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// The requested error guarantee.
    pub error: ErrorBound,
    /// Compilation options (variable order, origins, …).
    pub compile: CompileOptions,
    /// Refinement strategy.
    pub strategy: RefinementStrategy,
    /// Maximum number of decomposition steps (`None` = unlimited). When the
    /// budget is exhausted remaining leaves are closed with their current
    /// bounds and the result may not be converged — this implements the
    /// "given time budget" usage mentioned in the paper's introduction.
    pub max_steps: Option<usize>,
    /// Wall-clock timeout (`None` = unlimited).
    pub timeout: Option<Duration>,
}

impl ApproxOptions {
    /// Absolute ε-approximation with default strategy and no budget.
    pub fn absolute(epsilon: f64) -> Self {
        ApproxOptions {
            error: ErrorBound::Absolute(epsilon),
            compile: CompileOptions::default(),
            strategy: RefinementStrategy::default(),
            max_steps: None,
            timeout: None,
        }
    }

    /// Relative ε-approximation with default strategy and no budget.
    pub fn relative(epsilon: f64) -> Self {
        ApproxOptions {
            error: ErrorBound::Relative(epsilon),
            compile: CompileOptions::default(),
            strategy: RefinementStrategy::default(),
            max_steps: None,
            timeout: None,
        }
    }

    /// Sets the compilation options (variable order / origins).
    pub fn with_compile(mut self, compile: CompileOptions) -> Self {
        self.compile = compile;
        self
    }

    /// Sets the refinement strategy.
    pub fn with_strategy(mut self, strategy: RefinementStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the decomposition-step budget.
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Result of an approximate confidence computation.
#[derive(Debug, Clone, Copy)]
pub struct ApproxResult {
    /// Final lower bound on the probability.
    pub lower: f64,
    /// Final upper bound on the probability.
    pub upper: f64,
    /// The reported estimate (guaranteed to be an ε-approximation when
    /// `converged` is `true`).
    pub estimate: f64,
    /// `true` when the sufficient condition of Proposition 5.8 was met.
    pub converged: bool,
    /// Number of decomposition steps performed.
    pub steps: usize,
    /// Statistics about the traversed d-tree fragments.
    pub stats: CompileStats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl ApproxResult {
    /// The final bounds as a [`Bounds`] value.
    pub fn bounds(&self) -> Bounds {
        Bounds::new(self.lower, self.upper)
    }
}

/// The incremental ε-approximation compiler.
#[derive(Debug, Clone)]
pub struct ApproxCompiler {
    opts: ApproxOptions,
}

impl ApproxCompiler {
    /// Creates a compiler with the given options.
    pub fn new(opts: ApproxOptions) -> Self {
        ApproxCompiler { opts }
    }

    /// Runs the approximation on `dnf` over `space`.
    pub fn run(&self, dnf: &Dnf, space: &ProbabilitySpace) -> ApproxResult {
        self.run_owned(dnf, space, None)
    }

    fn run_owned(
        &self,
        dnf: &Dnf,
        space: &ProbabilitySpace,
        cache: Option<&SubformulaCache>,
    ) -> ApproxResult {
        let mut arena = LineageArena::with_capacity(dnf.len(), 4);
        let root = arena.intern(dnf);
        match self.opts.strategy {
            RefinementStrategy::DepthFirstClosing => self.run_dfs(&mut arena, root, space, cache),
            RefinementStrategy::PriorityRefinement => {
                self.run_priority(PartialDTree::from_parts(arena, root, space), space)
            }
        }
    }

    /// Like [`ApproxCompiler::run`], but with a shared [`SubformulaCache`]
    /// layered behind the per-run memo, so exact leaf probabilities and
    /// bucket bounds are reused across the lineages of a batch.
    ///
    /// Cache entries are tagged with `space.generation()` and the
    /// variable-count watermark their formula requires — they survive
    /// append-only growth of the space and are retired by genuine in-place
    /// changes, so one long-lived cache can be shared across batches and
    /// database inserts. Reusing cached values is bit-identical to
    /// recomputing them — the producers are deterministic — so `run_cached`
    /// returns exactly what [`ApproxCompiler::run`] would, only faster. The
    /// cache is consulted by the [`RefinementStrategy::DepthFirstClosing`]
    /// strategy; [`RefinementStrategy::PriorityRefinement`] materialises its
    /// own partial tree and ignores it.
    pub fn run_cached(
        &self,
        dnf: &Dnf,
        space: &ProbabilitySpace,
        cache: &SubformulaCache,
    ) -> ApproxResult {
        self.run_owned(dnf, space, Some(cache))
    }

    /// Runs the approximation on an already-interned view — the zero-copy
    /// entry point for callers that hold an arena (the batch engine interns
    /// each lineage once and evaluates everything against it). Bit-identical
    /// to [`ApproxCompiler::run`] / [`ApproxCompiler::run_cached`] on the
    /// materialised formula.
    pub fn run_view(
        &self,
        arena: &mut LineageArena,
        view: &DnfView,
        space: &ProbabilitySpace,
        cache: Option<&SubformulaCache>,
    ) -> ApproxResult {
        match self.opts.strategy {
            RefinementStrategy::DepthFirstClosing => {
                self.run_dfs(arena, view.clone(), space, cache)
            }
            RefinementStrategy::PriorityRefinement => {
                // The priority tree owns its arena; re-intern the view once.
                self.run_priority(PartialDTree::new(&view.to_dnf(arena), space), space)
            }
        }
    }

    /// Like [`ApproxCompiler::run_cached`] (pass `None` for no shared cache),
    /// but the second return value carries a [`ResumableCompilation`] handle
    /// holding the d-tree frontier the run materialised. For a
    /// budget-truncated run, calling [`ResumableCompilation::resume`]
    /// continues tightening the bounds from exactly where this run stopped —
    /// no re-interning, no re-exploration of settled subtrees. A *converged*
    /// run returns a converged handle: nothing is left to refine, but the
    /// settled frontier is exactly what lets a later
    /// [`ResumableCompilation::apply_delta`] absorb appended lineage clauses
    /// without recompiling. Results are bit-identical to
    /// [`ApproxCompiler::run`]: the frontier capture is pure bookkeeping and
    /// performs no floating-point operations of its own.
    pub fn run_resumable(
        &self,
        dnf: &Dnf,
        space: &ProbabilitySpace,
        cache: Option<&SubformulaCache>,
    ) -> (ApproxResult, Option<ResumableCompilation>) {
        let mut arena = LineageArena::with_capacity(dnf.len(), 4);
        let root = arena.intern(dnf);
        match self.opts.strategy {
            RefinementStrategy::DepthFirstClosing => {
                let (result, captured) = self.run_dfs_impl(&mut arena, root, space, cache, true);
                let mut captured = captured.expect("capture was enabled");
                let root_cap = captured.pop().expect("the run captures its root");
                debug_assert!(captured.is_empty(), "capture stack fully unwound");
                let tree = crate::resume::tree_from_capture(arena, root_cap, result.stats);
                let handle = ResumableCompilation::from_tree(tree, &self.opts, &result, space);
                (result, Some(handle))
            }
            RefinementStrategy::PriorityRefinement => {
                let tree = PartialDTree::from_parts(arena, root, space);
                let (result, tree) = self.run_priority_impl(tree, space);
                let handle = ResumableCompilation::from_tree(tree, &self.opts, &result, space);
                (result, Some(handle))
            }
        }
    }

    fn run_dfs(
        &self,
        arena: &mut LineageArena,
        root: DnfView,
        space: &ProbabilitySpace,
        cache: Option<&SubformulaCache>,
    ) -> ApproxResult {
        self.run_dfs_impl(arena, root, space, cache, false).0
    }

    fn run_dfs_impl(
        &self,
        arena: &mut LineageArena,
        root: DnfView,
        space: &ProbabilitySpace,
        cache: Option<&SubformulaCache>,
        capture: bool,
    ) -> (ApproxResult, Option<Vec<CapturedNode>>) {
        let start = Instant::now();
        let mut dfs = Dfs {
            arena,
            space,
            opts: &self.opts,
            frames: Vec::new(),
            stats: CompileStats::default(),
            steps: 0,
            start,
            budget_exhausted: false,
            memo: Memo::with_shared(cache, space.generation(), space.watermark()),
            capture: capture.then(Vec::new),
        };
        let outcome = dfs.explore(Work::View(root), 0);
        let bounds = match outcome {
            Outcome::Finished(b) => b,
            Outcome::StopAll(b) => b,
        };
        let captured = dfs.capture.take();
        let (steps, stats) = (dfs.steps, dfs.stats);
        (self.finish(bounds, steps, stats, start), captured)
    }

    fn run_priority(&self, tree: PartialDTree, space: &ProbabilitySpace) -> ApproxResult {
        self.run_priority_impl(tree, space).0
    }

    fn run_priority_impl(
        &self,
        mut tree: PartialDTree,
        space: &ProbabilitySpace,
    ) -> (ApproxResult, PartialDTree) {
        let start = Instant::now();
        let mut steps = 0usize;
        let result = loop {
            let bounds = tree.bounds(space);
            if self.opts.error.satisfied_by(bounds) || self.budget_exceeded(steps, start) {
                break self.finish(bounds, steps, *tree.stats(), start);
            }
            match tree.widest_open_leaf() {
                Some(leaf) => {
                    tree.refine(leaf, space, &self.opts.compile);
                    steps += 1;
                }
                None => {
                    // Complete tree: bounds are exact.
                    break self.finish(bounds, steps, *tree.stats(), start);
                }
            }
        };
        (result, tree)
    }

    fn budget_exceeded(&self, steps: usize, start: Instant) -> bool {
        if let Some(max) = self.opts.max_steps {
            if steps >= max {
                return true;
            }
        }
        if let Some(timeout) = self.opts.timeout {
            if start.elapsed() >= timeout {
                return true;
            }
        }
        false
    }

    fn finish(
        &self,
        bounds: Bounds,
        steps: usize,
        stats: CompileStats,
        start: Instant,
    ) -> ApproxResult {
        ApproxResult {
            lower: bounds.lower,
            upper: bounds.upper,
            estimate: self.opts.error.estimate_from(bounds),
            converged: self.opts.error.satisfied_by(bounds),
            steps,
            stats,
            elapsed: start.elapsed(),
        }
    }
}

/// Work items for the depth-first exploration: a sub-formula view to
/// decompose, a single factored-out atom (an exact singleton leaf — no need
/// to intern a one-clause formula for it), or an already-decomposed inner
/// node whose children still need exploring.
enum Work {
    View(DnfView),
    Atom(Atom),
    Node(Op, Vec<Work>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Or,
    And,
    Xor,
}

impl Op {
    fn to_partial(self) -> crate::partial::Op {
        match self {
            Op::Or => crate::partial::Op::Or,
            Op::And => crate::partial::Op::And,
            Op::Xor => crate::partial::Op::Xor,
        }
    }
}

/// One node of the partial d-tree a truncated DFS run implicitly materialised,
/// recorded as the exploration unwinds (each `explore` call that returns
/// [`Outcome::Finished`] pushes exactly one node; an inner node pops its
/// children back off). The capture performs no floating-point work — bounds
/// are copied from the values the run computed anyway — so enabling it cannot
/// change any result. Converged runs discard the stack unfinished (a
/// [`Outcome::StopAll`] unwind leaves it partially built, which is fine: a
/// handle is only constructed for non-converged runs, which always unwind
/// through `Finished`).
pub(crate) enum CapturedNode {
    /// A leaf: exact (point bounds) or closed with its bucket bounds.
    Leaf { view: DnfView, bounds: Bounds, exact: bool },
    /// A factored-out atom — an exact singleton leaf kept unmaterialised by
    /// the DFS; the reconstruction interns it as a one-clause view.
    Atom { atom: Atom, p: f64 },
    /// An inner decomposition node over the `children` captured beneath it.
    Inner { op: crate::partial::Op, children: Vec<CapturedNode> },
}

enum Outcome {
    /// The subtree finished with these (final) bounds — either exact or
    /// closed.
    Finished(Bounds),
    /// The global stopping condition was met; the value is the global bounds
    /// at that moment. Unwinds the entire exploration.
    StopAll(Bounds),
}

/// A stack frame of the depth-first exploration: one per inner node on the
/// current root-to-leaf path. `done` holds the final bounds of fully explored
/// children, `pending` the quick (bucket) bounds of children not yet visited
/// (a deque: the front is popped as each child starts exploration, which must
/// stay O(1) — ⊗/⊙ nodes can be very wide, e.g. one child per independent
/// component).
struct Frame {
    op: Op,
    done: Vec<Bounds>,
    pending: VecDeque<Bounds>,
}

impl Frame {
    /// Lemma 5.11 restricts leaf closing to d-trees whose ⊙ nodes have at
    /// most one non-exact child; an ⊙ frame with open (non-point) siblings
    /// therefore forbids closing anywhere beneath it.
    fn allows_closing(&self) -> bool {
        self.op != Op::And
            || (self.done.iter().all(Bounds::is_point) && self.pending.iter().all(Bounds::is_point))
    }
}

struct Dfs<'a> {
    arena: &'a mut LineageArena,
    space: &'a ProbabilitySpace,
    opts: &'a ApproxOptions,
    frames: Vec<Frame>,
    stats: CompileStats,
    steps: usize,
    start: Instant,
    budget_exhausted: bool,
    memo: Memo<'a>,
    /// When `Some`, the exploration records the partial d-tree it
    /// materialises (see [`CapturedNode`]); `None` for plain runs.
    capture: Option<Vec<CapturedNode>>,
}

impl Dfs<'_> {
    /// Exact probability of a small leaf, memoized so the same sub-DNF is
    /// never folded twice — neither when `quick_bounds` sees it as a pending
    /// child and `explore_view` later visits it, nor across the lineages of a
    /// batch when a shared cache is attached. The memo key is the view's
    /// incremental fingerprint — an O(clauses) combine of interned per-clause
    /// fingerprints, not a re-walk of every atom.
    fn memo_exact(&mut self, view: &DnfView) -> f64 {
        let key = view.hash(self.arena);
        if let Some(p) = self.memo.get_exact(key) {
            self.stats.exact_cache_hits += 1;
            return p;
        }
        let r =
            crate::exact::exact_probability_view(self.arena, view, self.space, &self.opts.compile);
        self.stats.exact_evaluations += 1;
        self.stats.or_nodes += r.stats.or_nodes;
        self.stats.and_nodes += r.stats.and_nodes;
        self.stats.xor_nodes += r.stats.xor_nodes;
        self.memo.put_exact(key, view.required_watermark(self.arena), r.probability);
        r.probability
    }

    /// Bucket bounds of an open leaf, memoized like [`Dfs::memo_exact`].
    fn memo_bounds(&mut self, view: &DnfView) -> Bounds {
        let key = view.hash(self.arena);
        if let Some(b) = self.memo.get_bounds(key) {
            self.stats.bound_cache_hits += 1;
            return b;
        }
        let b = dnf_bounds_ref(DnfRef::Arena(self.arena, view), self.space);
        self.stats.bound_evaluations += 1;
        self.memo.put_bounds(key, view.required_watermark(self.arena), b);
        b
    }

    /// Folds the current path's frames around `current` to obtain bounds for
    /// the whole d-tree. With `pending_at_lower` the still-open siblings are
    /// pinned to their lower bound (the worst case of Lemma 5.11, used for
    /// the closing check); otherwise their full bucket intervals are used
    /// (the stopping check of Proposition 5.8).
    fn global_bounds(&self, current: Bounds, pending_at_lower: bool) -> Bounds {
        let mut acc = current;
        for frame in self.frames.iter().rev() {
            let children: Vec<Bounds> = frame
                .done
                .iter()
                .copied()
                .chain(std::iter::once(acc))
                .chain(frame.pending.iter().map(|b| {
                    if pending_at_lower {
                        Bounds::point(b.lower)
                    } else {
                        *b
                    }
                }))
                .collect();
            acc = match frame.op {
                Op::Or => Bounds::combine_or(children),
                Op::And => Bounds::combine_and(children),
                Op::Xor => Bounds::combine_xor(children),
            };
        }
        acc
    }

    fn closing_allowed(&self) -> bool {
        self.frames.iter().all(Frame::allows_closing)
    }

    fn check_budget(&mut self) {
        if self.budget_exhausted {
            return;
        }
        if let Some(max) = self.opts.max_steps {
            if self.steps >= max {
                self.budget_exhausted = true;
            }
        }
        if let Some(timeout) = self.opts.timeout {
            if self.start.elapsed() >= timeout {
                self.budget_exhausted = true;
            }
        }
    }

    /// Captures a never-explored work item as (a tree of) leaves at its
    /// quick bounds, so an early-stopped run still hands back a *complete*
    /// d-tree: the unexplored siblings become open frontier leaves a later
    /// [`ResumableCompilation`] resume or delta can pick up. Bounds are
    /// re-read from the memo the sibling's `quick_bounds` call already
    /// populated — no stats counter moves, keeping a captured run's result
    /// bit-identical to a plain run's.
    fn capture_pending(&mut self, work: &Work) -> CapturedNode {
        match work {
            Work::Atom(atom) => CapturedNode::Atom { atom: *atom, p: self.space.atom_prob(*atom) },
            Work::View(view) => {
                let (bounds, exact) = self.pending_leaf_bounds(view);
                CapturedNode::Leaf { view: view.clone(), bounds, exact }
            }
            Work::Node(op, children) => CapturedNode::Inner {
                op: op.to_partial(),
                children: children.iter().map(|c| self.capture_pending(c)).collect(),
            },
        }
    }

    /// The bounds (and exactness) `quick_bounds` assigned to an unexplored
    /// view, re-read without touching the stats counters.
    fn pending_leaf_bounds(&mut self, view: &DnfView) -> (Bounds, bool) {
        if view.is_empty() {
            return (Bounds::point(0.0), true);
        }
        if view.is_tautology(self.arena) {
            return (Bounds::point(1.0), true);
        }
        if view.len() == 1 {
            return (Bounds::point(view.clause_probability(self.arena, self.space, 0)), true);
        }
        let key = view.hash(self.arena);
        if !view.num_vars_exceeds(self.arena, EXACT_LEAF_VARS) {
            let p = self.memo.get_exact(key).expect("pending leaves were bounded on frame entry");
            (Bounds::point(p), true)
        } else {
            let b = self.memo.get_bounds(key).expect("pending leaves were bounded on frame entry");
            (b, false)
        }
    }

    /// Quick bounds of a work item without exploring it: bucket bounds for
    /// views, point bounds for atoms, recursive combination for
    /// already-decomposed nodes.
    fn quick_bounds(&mut self, work: &Work) -> Bounds {
        match work {
            Work::Atom(atom) => Bounds::point(self.space.atom_prob(*atom)),
            Work::View(view) => {
                if view.is_empty() {
                    Bounds::point(0.0)
                } else if view.is_tautology(self.arena) {
                    Bounds::point(1.0)
                } else if view.len() == 1 {
                    Bounds::point(view.clause_probability(self.arena, self.space, 0))
                } else if !view.num_vars_exceeds(self.arena, EXACT_LEAF_VARS) {
                    Bounds::point(self.memo_exact(view))
                } else {
                    self.memo_bounds(view)
                }
            }
            Work::Node(op, children) => {
                let bounds: Vec<Bounds> = children.iter().map(|c| self.quick_bounds(c)).collect();
                match op {
                    Op::Or => Bounds::combine_or(bounds),
                    Op::And => Bounds::combine_and(bounds),
                    Op::Xor => Bounds::combine_xor(bounds),
                }
            }
        }
    }

    fn explore(&mut self, work: Work, depth: usize) -> Outcome {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        match work {
            Work::Node(op, children) => self.explore_node(op, children, depth),
            Work::View(view) => self.explore_view(view, depth),
            Work::Atom(atom) => {
                // A factored-out atom is an exact singleton leaf, exactly like
                // a one-clause DNF on the owned path.
                self.stats.exact_leaves += 1;
                let p = self.space.atom_prob(atom);
                if let Some(cap) = &mut self.capture {
                    cap.push(CapturedNode::Atom { atom, p });
                }
                Outcome::Finished(Bounds::point(p))
            }
        }
    }

    fn explore_node(&mut self, op: Op, children: Vec<Work>, depth: usize) -> Outcome {
        let pending: VecDeque<Bounds> =
            children.iter().skip(1).map(|c| self.quick_bounds(c)).collect();
        self.frames.push(Frame { op, done: Vec::new(), pending });
        let mut queue: VecDeque<Work> = children.into();
        let mut first = true;
        while let Some(child) = queue.pop_front() {
            if !first {
                // The child about to be explored leaves the pending list.
                let frame = self.frames.last_mut().expect("frame pushed above");
                frame.pending.pop_front();
            }
            first = false;
            match self.explore(child, depth + 1) {
                Outcome::Finished(b) => {
                    let frame = self.frames.last_mut().expect("frame pushed above");
                    frame.done.push(b);
                }
                Outcome::StopAll(b) => {
                    let frame = self.frames.pop().expect("frame pushed above");
                    if self.capture.is_some() {
                        // Keep the captured tree complete through the early
                        // stop: the interrupted child captured itself, the
                        // unexplored siblings become leaves at their quick
                        // bounds, and the frame wraps into its inner node.
                        let rest: Vec<CapturedNode> =
                            queue.iter().map(|c| self.capture_pending(c)).collect();
                        let cap = self.capture.as_mut().expect("checked above");
                        let explored = frame.done.len() + 1;
                        let mut kids = cap.split_off(cap.len() - explored);
                        kids.extend(rest);
                        cap.push(CapturedNode::Inner { op: op.to_partial(), children: kids });
                    }
                    return Outcome::StopAll(b);
                }
            }
        }
        let frame = self.frames.pop().expect("frame pushed above");
        if let Some(cap) = &mut self.capture {
            // Every fully explored child pushed exactly one captured node.
            let children = cap.split_off(cap.len() - frame.done.len());
            cap.push(CapturedNode::Inner { op: op.to_partial(), children });
        }
        let combined = match op {
            Op::Or => Bounds::combine_or(frame.done),
            Op::And => Bounds::combine_and(frame.done),
            Op::Xor => Bounds::combine_xor(frame.done),
        };
        Outcome::Finished(combined)
    }

    fn explore_view(&mut self, view: DnfView, depth: usize) -> Outcome {
        // Exact leaves: constants and single clauses.
        if view.is_empty() {
            self.stats.exact_leaves += 1;
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: Bounds::point(0.0), exact: true });
            }
            return Outcome::Finished(Bounds::point(0.0));
        }
        if view.is_tautology(self.arena) {
            self.stats.exact_leaves += 1;
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: Bounds::point(1.0), exact: true });
            }
            return Outcome::Finished(Bounds::point(1.0));
        }
        if view.len() == 1 {
            self.stats.exact_leaves += 1;
            let point = Bounds::point(view.clause_probability(self.arena, self.space, 0));
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: point, exact: true });
            }
            return Outcome::Finished(point);
        }
        // Small leaves: fold their complete sub-d-tree on the fly. This keeps
        // the ε slack for the large leaves and avoids paying the quadratic
        // bucket-bound heuristic on sub-DNFs that are cheaper to just solve.
        if !view.num_vars_exceeds(self.arena, EXACT_LEAF_VARS) {
            self.stats.exact_leaves += 1;
            let point = Bounds::point(self.memo_exact(&view));
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: point, exact: true });
            }
            // The global stopping condition may already hold with this leaf
            // resolved exactly.
            let global = self.global_bounds(point, false);
            if self.opts.error.satisfied_by(global) {
                return Outcome::StopAll(global);
            }
            return Outcome::Finished(point);
        }

        // Quick bounds of this leaf (the `Independent` heuristic of Fig. 3);
        // when the leaf was already bounded as a pending child the memo
        // returns the same bounds without recomputation.
        let current = self.memo_bounds(&view);

        // Check 1 (Proposition 5.8): can the whole computation stop now?
        let global = self.global_bounds(current, false);
        if self.opts.error.satisfied_by(global) {
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: current, exact: false });
            }
            return Outcome::StopAll(global);
        }

        // Check 2 (Theorem 5.12): can this leaf be closed — i.e. even in the
        // worst case over the remaining open leaves, keeping this leaf's
        // bucket bounds cannot break the ε-condition?
        if self.closing_allowed() {
            let worst = self.global_bounds(current, true);
            if self.opts.error.satisfied_by(worst) {
                self.stats.closed_leaves += 1;
                if let Some(cap) = &mut self.capture {
                    cap.push(CapturedNode::Leaf { view, bounds: current, exact: false });
                }
                return Outcome::Finished(current);
            }
        }

        // Budget: when exhausted, close unconditionally (best effort).
        self.check_budget();
        if self.budget_exhausted {
            self.stats.closed_leaves += 1;
            if let Some(cap) = &mut self.capture {
                cap.push(CapturedNode::Leaf { view, bounds: current, exact: false });
            }
            return Outcome::Finished(current);
        }

        // Otherwise decompose one step and recurse.
        self.steps += 1;
        let node = self.decompose(view);
        self.explore(node, depth)
    }

    /// One decomposition step of Figure 1, producing a [`Work::Node`] (or a
    /// `Work::View` when only subsumption removal applied). Pure index
    /// manipulation: no clause is copied, except inside the (rare) relational
    /// product factorization whose factors are projections — new clauses by
    /// construction — interned back into the arena.
    fn decompose(&mut self, view: DnfView) -> Work {
        // Step 1: subsumption removal.
        let (view, removed) = view.remove_subsumed(self.arena);
        self.stats.subsumed_clauses += removed;

        if view.len() <= 1 || view.is_tautology(self.arena) {
            return Work::View(view);
        }

        // Step 2: independent-or (⊗).
        let components = view.independent_components(self.arena);
        if components.len() > 1 {
            self.stats.or_nodes += 1;
            return Work::Node(Op::Or, components.into_iter().map(Work::View).collect());
        }

        // Step 3a: independent-and (⊙) by common-atom factoring.
        let common = view.common_atoms(self.arena);
        if !common.is_empty() {
            self.stats.and_nodes += 1;
            let vars: Vec<_> = common.iter().map(|a| a.var).collect();
            let rest = view.strip_vars(self.arena, &vars);
            let mut children: Vec<Work> = common.iter().map(|a| Work::Atom(*a)).collect();
            children.push(Work::View(rest));
            return Work::Node(Op::And, children);
        }

        // Step 3b: independent-and (⊙) by relational product factorization.
        if let Some(origins) = &self.opts.compile.origins {
            let factors =
                product_factorization_by(view.len(), |i| view.clause(self.arena, i), origins);
            if let Some(factors) = factors {
                self.stats.and_nodes += 1;
                return Work::Node(
                    Op::And,
                    factors
                        .into_iter()
                        .map(|c| Work::View(self.arena.intern_sorted_clauses(&c)))
                        .collect(),
                );
            }
        }

        // Step 4: Shannon expansion (⊕).
        let var = choose_variable_ref(
            DnfRef::Arena(self.arena, &view),
            &self.opts.compile.var_order,
            self.opts.compile.origins.as_ref(),
        )
        .expect("non-constant DNF mentions a variable");
        self.stats.xor_nodes += 1;
        let mut branches = Vec::new();
        for (value, cofactor) in view.shannon_cofactors(self.arena, var, self.space) {
            self.stats.and_nodes += 1;
            branches.push(Work::Node(
                Op::And,
                vec![Work::Atom(Atom::new(var, value)), Work::View(cofactor)],
            ));
        }
        Work::Node(Op::Xor, branches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, VarId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::exact::exact_probability;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn example_5_2() -> (ProbabilitySpace, Dnf) {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        (s, phi)
    }

    #[test]
    fn error_bound_conditions_match_proposition_5_8() {
        // Example 5.9: bounds [0.842, 0.848].
        let b = Bounds::new(0.842, 0.848);
        assert!(ErrorBound::Absolute(0.003).satisfied_by(b));
        assert!(ErrorBound::Absolute(0.004).satisfied_by(b));
        assert!(!ErrorBound::Absolute(0.002).satisfied_by(b));
        // The unique absolute 0.003-approximation is 0.845.
        let est = ErrorBound::Absolute(0.003).estimate_from(b);
        assert!((est - 0.845).abs() < 1e-12);
        // Relative condition.
        assert!(ErrorBound::Relative(0.01).satisfied_by(b));
        assert!(!ErrorBound::Relative(0.001).satisfied_by(b));
    }

    #[test]
    fn absolute_approximation_on_example_5_2() {
        let (s, phi) = example_5_2();
        let exact = phi.exact_probability_enumeration(&s);
        for eps in [0.05, 0.01, 0.001, 1e-6] {
            let r = ApproxCompiler::new(ApproxOptions::absolute(eps)).run(&phi, &s);
            assert!(r.converged, "eps={eps}");
            assert!((r.estimate - exact).abs() <= eps + 1e-12, "eps={eps} est={}", r.estimate);
            assert!(r.lower <= exact + 1e-12 && exact <= r.upper + 1e-12);
        }
    }

    #[test]
    fn relative_approximation_on_example_5_2() {
        let (s, phi) = example_5_2();
        let exact = phi.exact_probability_enumeration(&s);
        for eps in [0.1, 0.01, 0.001] {
            let r = ApproxCompiler::new(ApproxOptions::relative(eps)).run(&phi, &s);
            assert!(r.converged, "eps={eps}");
            assert!(
                r.estimate >= (1.0 - eps) * exact - 1e-12
                    && r.estimate <= (1.0 + eps) * exact + 1e-12,
                "eps={eps} est={} exact={exact}",
                r.estimate
            );
        }
    }

    #[test]
    fn priority_strategy_agrees_with_dfs() {
        let (s, phi) = example_5_2();
        let exact = phi.exact_probability_enumeration(&s);
        let dfs = ApproxCompiler::new(ApproxOptions::absolute(0.005)).run(&phi, &s);
        let pri = ApproxCompiler::new(
            ApproxOptions::absolute(0.005).with_strategy(RefinementStrategy::PriorityRefinement),
        )
        .run(&phi, &s);
        assert!(dfs.converged && pri.converged);
        assert!((dfs.estimate - exact).abs() <= 0.005 + 1e-12);
        assert!((pri.estimate - exact).abs() <= 0.005 + 1e-12);
    }

    #[test]
    fn zero_error_recovers_exact_probability() {
        let (s, phi) = example_5_2();
        let exact = phi.exact_probability_enumeration(&s);
        let r = ApproxCompiler::new(ApproxOptions::absolute(0.0)).run(&phi, &s);
        assert!(r.converged);
        assert!((r.estimate - exact).abs() < 1e-9);
    }

    #[test]
    fn constants_and_degenerate_inputs() {
        let (s, vars) = bool_space(&[0.4]);
        let empty = Dnf::empty();
        let r = ApproxCompiler::new(ApproxOptions::absolute(0.01)).run(&empty, &s);
        assert!(r.converged);
        assert_eq!(r.estimate, 0.0);
        let taut = Dnf::tautology();
        let r = ApproxCompiler::new(ApproxOptions::relative(0.01)).run(&taut, &s);
        assert!(r.converged);
        assert_eq!(r.estimate, 1.0);
        let single = Dnf::literal(vars[0]);
        let r = ApproxCompiler::new(ApproxOptions::absolute(0.0)).run(&single, &s);
        assert!(r.converged);
        assert!((r.estimate - 0.4).abs() < 1e-12);
    }

    /// Random correlated DNFs: the estimate must respect the requested error
    /// against brute-force enumeration, for both error types and both
    /// strategies — and the arena path must be bit-identical to the owned
    /// reference path, with the same d-tree statistics.
    #[test]
    fn randomized_error_guarantees() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for trial in 0..30 {
            let nvars = rng.gen_range(3..9);
            let probs: Vec<f64> = (0..nvars).map(|_| rng.gen_range(0.05..0.95)).collect();
            let (s, vars) = bool_space(&probs);
            let nclauses = rng.gen_range(2..7);
            let clauses: Vec<Clause> = (0..nclauses)
                .map(|_| {
                    let width = rng.gen_range(1..4usize);
                    Clause::from_bools(
                        &(0..width).map(|_| vars[rng.gen_range(0..nvars)]).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let phi = Dnf::from_clauses(clauses);
            if phi.is_empty() {
                continue;
            }
            let exact = phi.exact_probability_enumeration(&s);
            for (strategy, eps) in [
                (RefinementStrategy::DepthFirstClosing, 0.01),
                (RefinementStrategy::DepthFirstClosing, 0.1),
                (RefinementStrategy::PriorityRefinement, 0.05),
            ] {
                let r = ApproxCompiler::new(ApproxOptions::absolute(eps).with_strategy(strategy))
                    .run(&phi, &s);
                assert!(r.converged, "trial {trial}");
                assert!(
                    (r.estimate - exact).abs() <= eps + 1e-9,
                    "trial {trial} strategy {strategy:?} eps {eps}: est {} exact {exact}",
                    r.estimate
                );
                if strategy == RefinementStrategy::DepthFirstClosing {
                    let reference =
                        crate::reference::approx_reference(&phi, &s, &ApproxOptions::absolute(eps));
                    assert_eq!(r.estimate.to_bits(), reference.estimate.to_bits());
                    assert_eq!(r.lower.to_bits(), reference.lower.to_bits());
                    assert_eq!(r.upper.to_bits(), reference.upper.to_bits());
                    assert_eq!(r.steps, reference.steps);
                    assert_eq!(r.stats, reference.stats);
                }
                let rel = ApproxCompiler::new(ApproxOptions::relative(eps).with_strategy(strategy))
                    .run(&phi, &s);
                assert!(rel.converged, "trial {trial}");
                assert!(
                    (rel.estimate - exact).abs() <= eps * exact + 1e-9,
                    "trial {trial}: rel est {} exact {exact}",
                    rel.estimate
                );
            }
        }
    }

    /// With a generous error the algorithm should stop early — fewer
    /// decomposition steps than with a tight error.
    #[test]
    fn looser_errors_take_fewer_steps() {
        // A chain DNF that needs genuine work.
        let probs: Vec<f64> = (0..14).map(|i| 0.2 + 0.04 * i as f64).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..13).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let loose = ApproxCompiler::new(ApproxOptions::absolute(0.2)).run(&phi, &s);
        let tight = ApproxCompiler::new(ApproxOptions::absolute(1e-4)).run(&phi, &s);
        assert!(loose.converged && tight.converged);
        assert!(
            loose.steps <= tight.steps,
            "loose {} steps vs tight {} steps",
            loose.steps,
            tight.steps
        );
        let exact = phi.exact_probability_enumeration(&s);
        assert!((loose.estimate - exact).abs() <= 0.2 + 1e-9);
        assert!((tight.estimate - exact).abs() <= 1e-4 + 1e-9);
    }

    #[test]
    fn step_budget_limits_work_but_keeps_sound_bounds() {
        let probs: Vec<f64> = (0..16).map(|i| 0.2 + 0.04 * i as f64).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..15).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let exact = phi.exact_probability_enumeration(&s);
        let r = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(3)).run(&phi, &s);
        assert!(r.steps <= 4);
        // Bounds stay sound even without convergence.
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
        // The leaf-closing statistics reflect the forced closures.
        assert!(r.stats.closed_leaves > 0 || r.converged);
    }

    #[test]
    fn timeout_is_respected() {
        let probs: Vec<f64> = (0..18).map(|i| 0.2 + 0.03 * i as f64).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..17).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let r = ApproxCompiler::new(
            ApproxOptions::absolute(0.0).with_timeout(Duration::from_millis(0)),
        )
        .run(&phi, &s);
        // With a zero timeout the first leaf is closed immediately; the
        // result is the bucket bounds of the whole DNF.
        let exact = phi.exact_probability_enumeration(&s);
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
    }

    /// Example 5.13: the closing decision at Φ2 of the Figure-4 d-tree.
    /// We reproduce it directly through the `Frame`/`global_bounds`
    /// machinery.
    #[test]
    fn example_5_13_closing_decision() {
        let (s, _) = bool_space(&[0.5]);
        let opts = ApproxOptions::absolute(0.012);
        let mut arena = LineageArena::new();
        let dfs = Dfs {
            arena: &mut arena,
            space: &s,
            opts: &opts,
            frames: vec![
                Frame {
                    op: Op::Or,
                    // Φ1 is closed with bounds [0.1, 0.11].
                    done: vec![Bounds::new(0.1, 0.11)],
                    pending: VecDeque::new(),
                },
                Frame {
                    op: Op::Xor,
                    done: vec![],
                    // Φ3 is open with bucket bounds [0.35, 0.38].
                    pending: VecDeque::from(vec![Bounds::new(0.35, 0.38)]),
                },
                Frame {
                    op: Op::And,
                    // {x = 1} with exact probability 0.5.
                    done: vec![Bounds::point(0.5)],
                    pending: VecDeque::new(),
                },
            ],
            stats: CompileStats::default(),
            steps: 0,
            start: Instant::now(),
            budget_exhausted: false,
            memo: Memo::default(),
            capture: None,
        };
        let phi2 = Bounds::new(0.4, 0.44);
        // Check (1): with all leaves at their current bounds the condition
        // fails (U − L = 0.049 > 0.024).
        let stop = dfs.global_bounds(phi2, false);
        assert!((stop.lower - 0.595).abs() < 1e-9);
        assert!((stop.upper - 0.644).abs() < 1e-9);
        assert!(!opts.error.satisfied_by(stop));
        // Check (2): pinning the open leaf Φ3 to its lower bound gives
        // U' − L = 0.0223 ≤ 0.024, so Φ2 may be closed.
        let close = dfs.global_bounds(phi2, true);
        assert!((close.lower - 0.595).abs() < 1e-9);
        assert!((close.upper - 0.6173).abs() < 1e-9, "upper = {}", close.upper);
        assert!(opts.error.satisfied_by(close));
        assert!(dfs.closing_allowed());
    }

    #[test]
    fn closing_is_disallowed_under_wide_and_frames() {
        let (s, _) = bool_space(&[0.5]);
        let opts = ApproxOptions::absolute(0.01);
        let mut arena = LineageArena::new();
        let dfs = Dfs {
            arena: &mut arena,
            space: &s,
            opts: &opts,
            frames: vec![Frame {
                op: Op::And,
                done: vec![],
                pending: VecDeque::from(vec![Bounds::new(0.3, 0.6)]),
            }],
            stats: CompileStats::default(),
            steps: 0,
            start: Instant::now(),
            budget_exhausted: false,
            memo: Memo::default(),
            capture: None,
        };
        assert!(!dfs.closing_allowed());
    }

    /// The known double-evaluation is gone: a small leaf whose exact
    /// probability is computed for the pending-child quick bounds is *not*
    /// recomputed when the leaf is explored — the second request is a memo
    /// hit, observable in [`CompileStats`].
    #[test]
    fn small_leaves_are_evaluated_exactly_once_per_run() {
        // A chain over 30 variables: too large for the exact-leaf fast path
        // at the root, so the DFS decomposes and produces ⊕/⊙ nodes whose
        // pending children are bounded by `quick_bounds` (exactly the
        // situation where small leaves used to be folded twice).
        let probs: Vec<f64> = (0..30).map(|i| 0.15 + 0.02 * (i as f64 % 20.0)).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..29).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let r = ApproxCompiler::new(ApproxOptions::absolute(1e-6)).run(&phi, &s);
        assert!(r.converged);
        let exact = exact_probability(&phi, &s, &CompileOptions::default()).probability;
        assert!((r.estimate - exact).abs() <= 1e-6 + 1e-12);
        // Every small leaf visited both as a pending child and as an explored
        // node hits the memo the second time; at least one evaluation
        // happened, and no request beyond the first per distinct leaf
        // recomputed anything.
        assert!(r.stats.exact_cache_hits > 0, "stats: {:?}", r.stats);
        assert!(r.stats.exact_evaluations > 0);
    }

    /// A shared cache across runs: the second run of the same formula gets
    /// its sub-results from the cache and returns bit-identical output.
    #[test]
    fn shared_cache_reuses_results_across_runs_bit_identically() {
        let probs: Vec<f64> = (0..26).map(|i| 0.2 + 0.025 * (i as f64 % 16.0)).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..25).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        // Overlapping second lineage: shares a long sub-chain with `phi`.
        let psi = Dnf::from_clauses(
            (0..20).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-4));
        let cache = SubformulaCache::new();
        let uncached_phi = compiler.run(&phi, &s);
        let uncached_psi = compiler.run(&psi, &s);
        let cached_phi = compiler.run_cached(&phi, &s, &cache);
        let cached_psi = compiler.run_cached(&psi, &s, &cache);
        // A repeated run of the same lineage is served from the cache …
        let cached_phi2 = compiler.run_cached(&phi, &s, &cache);
        // … and all cached runs agree with the uncached ones to the bit.
        assert_eq!(uncached_phi.estimate.to_bits(), cached_phi.estimate.to_bits());
        assert_eq!(uncached_phi.lower.to_bits(), cached_phi.lower.to_bits());
        assert_eq!(uncached_phi.upper.to_bits(), cached_phi.upper.to_bits());
        assert_eq!(uncached_phi.estimate.to_bits(), cached_phi2.estimate.to_bits());
        assert_eq!(uncached_psi.estimate.to_bits(), cached_psi.estimate.to_bits());
        // The cache holds entries and was actually consulted.
        assert!(!cache.is_empty());
        assert!(cache.stats().hits > 0, "cache stats: {:?}", cache.stats());
    }

    /// Hierarchical-style lineage with origins: approximation with error 0
    /// equals the exact result and uses no Shannon expansion.
    #[test]
    fn origins_enable_factorized_approximation() {
        use events::VarOrigins;
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6]);
        let (r1, r2, s1, s2) = (vars[0], vars[1], vars[2], vars[3]);
        let mut origins = VarOrigins::new();
        for (v, g) in [(r1, 0), (r2, 0), (s1, 1), (s2, 1)] {
            origins.set(v, g);
        }
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[r1, s1]),
            Clause::from_bools(&[r1, s2]),
            Clause::from_bools(&[r2, s1]),
            Clause::from_bools(&[r2, s2]),
        ]);
        let opts = ApproxOptions::absolute(0.0).with_compile(CompileOptions::with_origins(origins));
        let r = ApproxCompiler::new(opts).run(&phi, &s);
        assert!(r.converged);
        let exact = phi.exact_probability_enumeration(&s);
        assert!((r.estimate - exact).abs() < 1e-9);
        assert_eq!(r.stats.xor_nodes, 0);
    }

    /// `run_view` over a caller-owned arena is bit-identical to `run` (which
    /// interns internally) — the hook the batch engine uses.
    #[test]
    fn run_view_matches_run() {
        let probs: Vec<f64> = (0..20).map(|i| 0.2 + 0.03 * (i as f64 % 12.0)).collect();
        let (s, vars) = bool_space(&probs);
        let phi = Dnf::from_clauses(
            (0..19).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(1e-4));
        let owned_entry = compiler.run(&phi, &s);
        let mut arena = LineageArena::new();
        let root = arena.intern(&phi);
        let view_entry = compiler.run_view(&mut arena, &root, &s, None);
        assert_eq!(owned_entry.estimate.to_bits(), view_entry.estimate.to_bits());
        assert_eq!(owned_entry.lower.to_bits(), view_entry.lower.to_bits());
        assert_eq!(owned_entry.upper.to_bits(), view_entry.upper.to_bits());
        assert_eq!(owned_entry.steps, view_entry.steps);
        assert_eq!(owned_entry.stats, view_entry.stats);
    }
}
