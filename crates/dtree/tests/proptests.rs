//! Property-based tests for the d-tree compiler and approximation algorithm.

use dtree::{
    compile, dnf_bounds, exact_probability, ApproxCompiler, ApproxOptions, CompileOptions,
    RefinementStrategy,
};
use events::{Atom, Clause, Dnf, ProbabilitySpace, VarId};
use proptest::prelude::*;

/// Strategy producing a probability space and a random DNF over it.
fn arb_space_and_dnf() -> impl Strategy<Value = (ProbabilitySpace, Dnf)> {
    (2usize..=8).prop_flat_map(|nvars| {
        let probs = prop::collection::vec(0.05f64..0.95, nvars);
        let clauses = prop::collection::vec(
            prop::collection::vec((0..nvars, prop::bool::ANY), 1..=4usize),
            1..=7usize,
        );
        (probs, clauses).prop_map(|(probs, clause_specs)| {
            let mut space = ProbabilitySpace::new();
            let vars: Vec<VarId> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| space.add_bool(format!("x{i}"), p))
                .collect();
            let clauses = clause_specs.into_iter().map(|atoms| {
                Clause::from_atoms(atoms.into_iter().map(|(vi, pos)| {
                    if pos {
                        Atom::pos(vars[vi])
                    } else {
                        Atom::neg(vars[vi])
                    }
                }))
            });
            (space, Dnf::from_clauses(clauses))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive compilation yields a complete d-tree whose one-pass
    /// probability matches brute-force enumeration (Propositions 4.3/4.5).
    #[test]
    fn compile_is_exact((space, dnf) in arb_space_and_dnf()) {
        let tree = compile(&dnf, &space, &CompileOptions::default());
        prop_assert!(tree.is_complete());
        let p_tree = tree.exact_probability(&space).unwrap();
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!((p_tree - p_ref).abs() < 1e-9, "tree {p_tree} ref {p_ref}");
    }

    /// The on-the-fly exact evaluator agrees with enumeration.
    #[test]
    fn exact_evaluator_matches_enumeration((space, dnf) in arb_space_and_dnf()) {
        let r = exact_probability(&dnf, &space, &CompileOptions::default());
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!((r.probability - p_ref).abs() < 1e-9);
    }

    /// The bucket heuristic of Figure 3 always brackets the exact probability
    /// (Proposition 5.1).
    #[test]
    fn bucket_bounds_are_sound((space, dnf) in arb_space_and_dnf()) {
        let b = dnf_bounds(&dnf, &space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(b.lower <= p_ref + 1e-9, "lower {} > exact {}", b.lower, p_ref);
        prop_assert!(b.upper >= p_ref - 1e-9, "upper {} < exact {}", b.upper, p_ref);
    }

    /// Bounds of a partially compiled d-tree bracket the exact probability
    /// (Proposition 5.4), at every cut-off depth.
    #[test]
    fn partial_dtree_bounds_are_sound((space, dnf) in arb_space_and_dnf(), depth in 0usize..4) {
        let opts = CompileOptions { max_depth: Some(depth), ..Default::default() };
        let tree = compile(&dnf, &space, &opts);
        let b = tree.bounds(&space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(b.lower <= p_ref + 1e-9);
        prop_assert!(b.upper >= p_ref - 1e-9);
    }

    /// The depth-first approximation with absolute error guarantee really is
    /// within ε of the exact probability, and its bounds are sound.
    #[test]
    fn absolute_approximation_guarantee(
        (space, dnf) in arb_space_and_dnf(),
        eps in prop::sample::select(vec![0.2, 0.05, 0.01, 0.001]),
    ) {
        let r = ApproxCompiler::new(ApproxOptions::absolute(eps)).run(&dnf, &space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(r.converged);
        prop_assert!((r.estimate - p_ref).abs() <= eps + 1e-9,
            "estimate {} exact {} eps {}", r.estimate, p_ref, eps);
        prop_assert!(r.lower <= p_ref + 1e-9 && p_ref <= r.upper + 1e-9);
    }

    /// Same for the relative error guarantee.
    #[test]
    fn relative_approximation_guarantee(
        (space, dnf) in arb_space_and_dnf(),
        eps in prop::sample::select(vec![0.2, 0.05, 0.01]),
    ) {
        let r = ApproxCompiler::new(ApproxOptions::relative(eps)).run(&dnf, &space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(r.converged);
        prop_assert!((r.estimate - p_ref).abs() <= eps * p_ref + 1e-9,
            "estimate {} exact {} eps {}", r.estimate, p_ref, eps);
    }

    /// The priority-refinement strategy honours the same guarantee.
    #[test]
    fn priority_strategy_guarantee(
        (space, dnf) in arb_space_and_dnf(),
        eps in prop::sample::select(vec![0.1, 0.01]),
    ) {
        let r = ApproxCompiler::new(
            ApproxOptions::absolute(eps).with_strategy(RefinementStrategy::PriorityRefinement),
        )
        .run(&dnf, &space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(r.converged);
        prop_assert!((r.estimate - p_ref).abs() <= eps + 1e-9);
    }

    /// A step budget never produces unsound bounds.
    #[test]
    fn budgeted_runs_stay_sound(
        (space, dnf) in arb_space_and_dnf(),
        budget in 0usize..6,
    ) {
        let r = ApproxCompiler::new(ApproxOptions::absolute(1e-9).with_max_steps(budget))
            .run(&dnf, &space);
        let p_ref = dnf.exact_probability_enumeration(&space);
        prop_assert!(r.lower <= p_ref + 1e-9 && p_ref <= r.upper + 1e-9);
    }
}
