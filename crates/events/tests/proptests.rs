//! Property-based tests for the event-algebra substrate.

use events::{Atom, Clause, Dnf, ProbabilitySpace, VarId};
use proptest::prelude::*;

/// Strategy: a probability space of `n` Boolean variables with probabilities
/// bounded away from 0 and 1, plus a random DNF over them.
fn arb_space_and_dnf(
    max_vars: usize,
    max_clauses: usize,
    max_clause_len: usize,
) -> impl Strategy<Value = (ProbabilitySpace, Dnf)> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let probs = prop::collection::vec(0.05f64..0.95, nvars);
        let clauses = prop::collection::vec(
            prop::collection::vec((0..nvars, prop::bool::ANY), 1..=max_clause_len),
            1..=max_clauses,
        );
        (probs, clauses).prop_map(|(probs, clause_specs)| {
            let mut space = ProbabilitySpace::new();
            let vars: Vec<VarId> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| space.add_bool(format!("x{i}"), p))
                .collect();
            let clauses = clause_specs.into_iter().map(|atoms| {
                Clause::from_atoms(atoms.into_iter().map(|(vi, positive)| {
                    if positive {
                        Atom::pos(vars[vi])
                    } else {
                        Atom::neg(vars[vi])
                    }
                }))
            });
            (space, Dnf::from_clauses(clauses))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Removing subsumed clauses never changes the probability.
    #[test]
    fn subsumption_preserves_probability((space, dnf) in arb_space_and_dnf(6, 6, 4)) {
        let p1 = dnf.exact_probability_enumeration(&space);
        let p2 = dnf.remove_subsumed().exact_probability_enumeration(&space);
        prop_assert!((p1 - p2).abs() < 1e-9, "p1={p1} p2={p2}");
    }

    /// Shannon expansion is exact: P(Φ) = Σ_a P(x=a)·P(Φ|x=a).
    #[test]
    fn shannon_expansion_is_exact((space, dnf) in arb_space_and_dnf(6, 6, 4)) {
        prop_assume!(!dnf.is_empty() && !dnf.is_tautology());
        let var = dnf.most_frequent_var().unwrap();
        let p = dnf.exact_probability_enumeration(&space);
        let mut total = 0.0;
        for value in 0..space.domain_size(var) {
            let cof = dnf.cofactor(var, value);
            total += space.prob(var, value) * cof.exact_probability_enumeration(&space);
        }
        prop_assert!((p - total).abs() < 1e-9, "p={p} shannon={total}");
    }

    /// Independent components multiply out: P(Φ) = 1 - Π (1 - P(Φi)).
    #[test]
    fn independent_or_is_exact((space, dnf) in arb_space_and_dnf(7, 6, 3)) {
        let p = dnf.exact_probability_enumeration(&space);
        let comps = dnf.independent_components();
        let combined = 1.0
            - comps
                .iter()
                .map(|c| 1.0 - c.exact_probability_enumeration(&space))
                .product::<f64>();
        if dnf.is_empty() {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert!((p - combined).abs() < 1e-9, "p={} combined={}", p, combined);
        }
    }

    /// The clause-probability sum is an upper bound and the max clause
    /// probability a lower bound on P(Φ).
    #[test]
    fn trivial_bounds_bracket_probability((space, dnf) in arb_space_and_dnf(6, 6, 4)) {
        prop_assume!(!dnf.is_empty());
        let p = dnf.exact_probability_enumeration(&space);
        let upper = dnf.clause_probability_sum(&space).min(1.0);
        let lower = dnf
            .clauses()
            .iter()
            .map(|c| c.probability(&space))
            .fold(0.0f64, f64::max);
        prop_assert!(p <= upper + 1e-9, "p={p} upper={upper}");
        prop_assert!(p >= lower - 1e-9, "p={p} lower={lower}");
    }

    /// Disjunction never decreases probability; conjunction never increases it.
    #[test]
    fn monotonicity_of_connectives(
        (space, dnf) in arb_space_and_dnf(6, 4, 3),
        (_, other_template) in arb_space_and_dnf(6, 4, 3),
    ) {
        // Re-interpret `other_template` over the first space by keeping only
        // variables that exist there.
        let nvars = space.num_vars() as u32;
        let other = Dnf::from_clauses(other_template.clauses().iter().filter_map(|c| {
            let atoms: Vec<Atom> = c.atoms().iter().copied().filter(|a| a.var.0 < nvars).collect();
            if atoms.is_empty() { None } else { Some(Clause::from_atoms(atoms)) }
        }));
        let p = dnf.exact_probability_enumeration(&space);
        let p_or = dnf.or(&other).exact_probability_enumeration(&space);
        let p_and = dnf.and(&other).exact_probability_enumeration(&space);
        prop_assert!(p_or >= p - 1e-9);
        prop_assert!(p_and <= p + 1e-9);
    }

    /// A clause's probability equals the product of its atoms' marginals.
    #[test]
    fn clause_probability_is_product(
        probs in prop::collection::vec(0.05f64..0.95, 1..6),
    ) {
        let mut space = ProbabilitySpace::new();
        let vars: Vec<VarId> =
            probs.iter().enumerate().map(|(i, &p)| space.add_bool(format!("x{i}"), p)).collect();
        let clause = Clause::from_bools(&vars);
        let expected: f64 = probs.iter().product();
        prop_assert!((clause.probability(&space) - expected).abs() < 1e-12);
    }

    /// `cofactor` never grows the clause count and drops the expanded variable.
    #[test]
    fn cofactor_shrinks((space, dnf) in arb_space_and_dnf(6, 6, 4)) {
        prop_assume!(!dnf.is_empty() && !dnf.is_tautology());
        let var = dnf.most_frequent_var().unwrap();
        for value in 0..space.domain_size(var) {
            let cof = dnf.cofactor(var, value);
            prop_assert!(cof.len() <= dnf.len());
            prop_assert!(!cof.vars().contains(&var));
        }
    }

    /// Arena views replay the owned decomposition operators exactly: random
    /// chains of cofactors / component splits / subsumption removal /
    /// common-atom stripping keep the view's materialisation, canonical hash,
    /// and structural queries bit-identical to the owned `Dnf` path.
    #[test]
    fn arena_views_track_owned_decomposition(
        (space, dnf) in arb_space_and_dnf(8, 8, 4),
        steps in prop::collection::vec((0u8..4, 0u32..1_000_000), 1..8),
    ) {
        use events::{DnfRef, LineageArena};
        let mut arena = LineageArena::new();
        let mut view = arena.intern(&dnf);
        let mut owned = dnf.clone();
        for (op, pick) in steps {
            // Invariants at every node of the walk.
            prop_assert_eq!(&view.to_dnf(&arena), &owned);
            prop_assert_eq!(view.hash(&arena), owned.canonical_hash());
            prop_assert_eq!(view.vars(&arena), owned.vars());
            prop_assert_eq!(view.most_frequent_var(&arena), owned.most_frequent_var());
            prop_assert_eq!(view.is_tautology(&arena), owned.is_tautology());
            prop_assert_eq!(view.required_watermark(&arena), owned.required_watermark());
            let r = DnfRef::Arena(&arena, &view);
            prop_assert_eq!(
                r.clauses_by_probability_desc(&space),
                DnfRef::Owned(&owned).clauses_by_probability_desc(&space)
            );
            if owned.is_empty() || owned.is_tautology() {
                break;
            }
            match op {
                0 => {
                    let vars: Vec<_> = owned.vars().into_iter().collect();
                    let var = vars[pick as usize % vars.len()];
                    let value = pick % space.domain_size(var);
                    owned = owned.cofactor(var, value);
                    view = view.cofactor(&mut arena, var, value);
                }
                1 => {
                    let comps_owned = owned.independent_components();
                    let comps_view = view.independent_components(&arena);
                    prop_assert_eq!(comps_owned.len(), comps_view.len());
                    let i = pick as usize % comps_owned.len();
                    owned = comps_owned[i].clone();
                    view = comps_view[i].clone();
                }
                2 => {
                    let reduced = owned.remove_subsumed();
                    let (v, removed) = view.remove_subsumed(&arena);
                    prop_assert_eq!(owned.len() - reduced.len(), removed);
                    owned = reduced;
                    view = v;
                }
                _ => {
                    let common = owned.common_atoms();
                    prop_assert_eq!(&view.common_atoms(&arena), &common);
                    if common.is_empty() {
                        continue;
                    }
                    let vars: Vec<_> = common.iter().map(|a| a.var).collect();
                    owned = owned.strip_atoms(&common);
                    view = view.strip_vars(&mut arena, &vars);
                }
            }
        }
        prop_assert_eq!(&view.to_dnf(&arena), &owned);
        prop_assert_eq!(view.hash(&arena), owned.canonical_hash());
    }
}
