//! Propositional event algebra over independent discrete random variables.
//!
//! This crate is the substrate underneath the d-tree confidence-computation
//! algorithm of *Olteanu, Huang, Koch — "Approximate Confidence Computation in
//! Probabilistic Databases", ICDE 2010*.  It provides:
//!
//! * [`ProbabilitySpace`] — a finite set of independent random variables, each
//!   with a finite domain and a discrete probability distribution (Section III
//!   of the paper),
//! * [`Atom`] — atomic events of the form `x = a`,
//! * [`Clause`] — conjunctions of atomic events (with consistency checking),
//! * [`Dnf`] — disjunctions of clauses, i.e. the lineage formulas produced by
//!   positive relational algebra on probabilistic databases,
//! * [`Valuation`] / possible-world enumeration (exact but exponential
//!   reference semantics used by the test-suite),
//! * independence partitioning (connected components of the variable
//!   co-occurrence graph) and product factorization, the structural analyses
//!   the d-tree compiler builds on,
//! * [`DnfHash`] — a canonical 128-bit fingerprint of a DNF (an incremental
//!   combine over per-clause fingerprints), the key under which sub-formula
//!   probabilities and bounds are memoized across the lineages of a query
//!   batch,
//! * [`LineageArena`] / [`DnfView`] / [`DnfRef`] — the arena-interned
//!   lineage representation the d-tree hot path decomposes with zero clause
//!   cloning,
//! * [`Formula`] — arbitrary positive ∧/∨ formulas and read-once (1OF)
//!   evaluation.
//!
//! # Quick example
//!
//! ```
//! use events::{ProbabilitySpace, Dnf, Clause};
//!
//! let mut space = ProbabilitySpace::new();
//! let x = space.add_bool("x", 0.3);
//! let y = space.add_bool("y", 0.2);
//! let z = space.add_bool("z", 0.7);
//! let v = space.add_bool("v", 0.8);
//!
//! // Φ = (x ∧ y) ∨ (x ∧ z) ∨ v   (Example 5.2 in the paper)
//! let phi = Dnf::from_clauses(vec![
//!     Clause::from_bools(&[x, y]),
//!     Clause::from_bools(&[x, z]),
//!     Clause::from_bools(&[v]),
//! ]);
//! let p = phi.exact_probability_enumeration(&space);
//! assert!((p - 0.8456).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod atom;
mod clause;
mod dnf;
mod error;
mod formula;
mod hash;
mod partition;
mod space;
mod world;

pub use arena::{ClauseAtoms, DnfRef, DnfView, LineageArena, LineageDelta};
pub use atom::{Atom, VarId, FALSE_VALUE, TRUE_VALUE};
pub use clause::Clause;
pub use dnf::Dnf;
pub use error::EventError;
pub use formula::Formula;
pub use hash::DnfHash;
pub use partition::{
    connected_components, connected_components_by, product_factorization, product_factorization_by,
    UnionFind, VarOrigins,
};
pub use space::{ProbabilitySpace, VariableInfo};
pub use world::{enumerate_worlds, Valuation};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EventError>;
