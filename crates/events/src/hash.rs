//! Canonical hashing of DNF formulas.
//!
//! Answer tuples of the same query share large parts of their lineage: the
//! d-tree decomposition of two overlapping lineages keeps producing the same
//! sub-DNFs, whose exact probabilities and bucket bounds are expensive to
//! recompute. To memoize those results across decomposition steps — and
//! across *lineages* inside one batch — sub-formulas need a cheap, canonical
//! identity.
//!
//! [`DnfHash`] provides that identity as a 128-bit fingerprint built as an
//! **incremental combine over per-clause fingerprints**:
//!
//! * every atom contributes a mixed 128-bit value ([`atom_contrib`]),
//! * a clause's raw fingerprint is the wrapping **sum** of its atoms'
//!   contributions (order-independent, so the [`crate::LineageArena`] can
//!   compute it once at intern time regardless of construction order),
//! * the clause digest finalizes the raw fingerprint with a non-linear mix
//!   that folds in the clause length (so atoms cannot migrate between
//!   clauses without changing the digest),
//! * the DNF hash is the wrapping sum of its clause digests plus a seed
//!   (order-independent over the clause *set*; [`crate::Dnf`] deduplicates,
//!   so set and multiset coincide).
//!
//! Guarantees:
//!
//! * **Canonical** — [`crate::Dnf`] normalises on construction, and the
//!   combine is order-independent at both levels, so two DNFs representing
//!   the same set of clauses hash identically no matter how they were built —
//!   owned [`crate::Dnf`]s and arena [`crate::DnfView`]s included.
//! * **Collision-resistant in practice** — each atom contributes an
//!   avalanche-mixed 128-bit value; clause digests re-mix non-linearly. For
//!   the workload sizes this repository targets (up to millions of distinct
//!   sub-formulas per batch) the collision probability of the 128-bit digest
//!   is negligible; callers that need certainty can keep the formula
//!   alongside the key and verify on lookup.
//! * **Cheap** — one pass over the atoms for an owned DNF; for an arena view
//!   the per-clause raw fingerprints are computed once at intern time and
//!   only combined (and mask-adjusted) afterwards.
//!
//! The hash identifies the *formula only*. Derived quantities such as
//! probabilities are additionally a function of the
//! [`crate::ProbabilitySpace`]; caches keyed by `DnfHash` must therefore
//! validate the space (generation and watermark) on lookup.

use crate::{Atom, Dnf};

/// A canonical 128-bit fingerprint of a [`Dnf`].
///
/// Equal DNFs (same normalised clause set) always produce equal hashes;
/// unequal DNFs produce equal hashes only with negligible probability. See
/// the module documentation in `hash.rs` for the guarantees and caveats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnfHash {
    hi: u64,
    lo: u64,
}

/// SplitMix64 finalizer: a cheap full-avalanche mixing function.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Marker mixed into every clause digest so that clause structure is part of
/// the digest (`{x, y}` and `{x}, {y}` must not collide trivially).
const CLAUSE_SEP: u64 = 0x9e37_79b9_7f4a_7c15;
/// Seeds of the two accumulators (128 independent bits).
const SEED_HI: u64 = 0x8000_0000_0000_001b;
const SEED_LO: u64 = 0x5bf0_3635_dcf3_e5ab;
/// Per-atom tweak of the low accumulator.
const ATOM_TWEAK_LO: u64 = 0xd6e8_feb8_6659_fd93;

/// The additive 128-bit contribution of one atom to its clause's raw
/// fingerprint. Exposed (crate-internal) so the [`crate::LineageArena`] can
/// subtract masked atoms from interned clause fingerprints.
#[inline]
pub(crate) fn atom_contrib(atom: Atom) -> (u64, u64) {
    let packed = ((atom.var.0 as u64) << 32) | atom.value as u64;
    (mix(packed ^ SEED_HI), mix(packed.rotate_left(13) ^ ATOM_TWEAK_LO))
}

/// Raw clause fingerprint: wrapping sum of atom contributions.
#[inline]
pub(crate) fn clause_fingerprint<I: IntoIterator<Item = Atom>>(atoms: I) -> (u64, u64) {
    let mut hi = 0u64;
    let mut lo = 0u64;
    for a in atoms {
        let (ah, al) = atom_contrib(a);
        hi = hi.wrapping_add(ah);
        lo = lo.wrapping_add(al);
    }
    (hi, lo)
}

/// Finalized clause digest from a raw fingerprint and the clause length.
#[inline]
pub(crate) fn clause_digest(fp: (u64, u64), len: usize) -> (u64, u64) {
    let n = len as u64;
    (mix(fp.0 ^ CLAUSE_SEP ^ n), mix(fp.1 ^ CLAUSE_SEP.rotate_left(31) ^ n.rotate_left(17)))
}

/// Combines clause digests into the final 128-bit DNF hash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HashCombiner {
    hi: u64,
    lo: u64,
}

impl HashCombiner {
    #[inline]
    pub(crate) fn new() -> Self {
        HashCombiner { hi: SEED_HI, lo: SEED_LO }
    }

    #[inline]
    pub(crate) fn add_clause(&mut self, fp: (u64, u64), len: usize) {
        let (dh, dl) = clause_digest(fp, len);
        self.hi = self.hi.wrapping_add(dh);
        self.lo = self.lo.wrapping_add(dl);
    }

    #[inline]
    pub(crate) fn finish(self) -> DnfHash {
        DnfHash { hi: self.hi, lo: self.lo }
    }
}

impl DnfHash {
    /// Computes the canonical hash of a DNF.
    ///
    /// Exposed as [`Dnf::canonical_hash`]; this associated function is the
    /// implementation.
    pub fn of(dnf: &Dnf) -> DnfHash {
        let mut c = HashCombiner::new();
        for clause in dnf.clauses() {
            c.add_clause(clause_fingerprint(clause.atoms().iter().copied()), clause.len());
        }
        c.finish()
    }

    /// The fingerprint as a single 128-bit integer.
    #[inline]
    pub fn to_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Maps the hash onto one of `n` shards (used by sharded caches).
    #[inline]
    pub fn shard(self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.lo as usize) % n
    }

    /// The hash of the formula obtained by adding one more clause (given by
    /// its raw fingerprint and length) to the clause set this hash covers.
    ///
    /// The combine is an order-independent wrapping sum of clause digests, so
    /// appending is O(1) — this is what makes lineage deltas cheap to
    /// fingerprint incrementally. The caller must ensure the clause is not
    /// already part of the hashed set ([`crate::Dnf`] and
    /// [`crate::DnfView`] deduplicate clauses).
    #[inline]
    pub(crate) fn with_clause(self, fp: (u64, u64), len: usize) -> DnfHash {
        let (dh, dl) = clause_digest(fp, len);
        DnfHash { hi: self.hi.wrapping_add(dh), lo: self.lo.wrapping_add(dl) }
    }
}

impl Dnf {
    /// The canonical 128-bit fingerprint of this DNF; see [`DnfHash`].
    pub fn canonical_hash(&self) -> DnfHash {
        DnfHash::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Clause, VarId};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn equal_dnfs_hash_equal_regardless_of_construction_order() {
        let a =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)]), Clause::from_bools(&[v(2)])]);
        let b =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(2)]), Clause::from_bools(&[v(1), v(0)])]);
        assert_eq!(a, b);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn different_dnfs_hash_differently() {
        let base = Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)])]);
        let variants = vec![
            Dnf::empty(),
            Dnf::tautology(),
            Dnf::literal(v(0)),
            Dnf::literal(v(1)),
            // Same variables, different clause structure.
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0)]), Clause::from_bools(&[v(1)])]),
            // Same variables, different value binding.
            Dnf::from_clauses(vec![Clause::from_atoms(vec![Atom::pos(v(0)), Atom::neg(v(1))])]),
        ];
        let mut seen = vec![base.canonical_hash()];
        for d in &variants {
            let h = d.canonical_hash();
            assert!(!seen.contains(&h), "collision for {d}");
            seen.push(h);
        }
    }

    #[test]
    fn hash_is_stable_across_clones() {
        let d =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(3), v(7)]), Clause::from_bools(&[v(1)])]);
        assert_eq!(d.canonical_hash(), d.clone().canonical_hash());
    }

    #[test]
    fn shard_is_in_range() {
        for i in 0..50u32 {
            let d = Dnf::literal(v(i));
            assert!(d.canonical_hash().shard(16) < 16);
        }
    }

    #[test]
    fn many_random_like_dnfs_have_no_pairwise_collisions() {
        // Deterministic pseudo-random battery: 2000 distinct structured DNFs.
        let mut hashes = std::collections::HashSet::new();
        let mut count = 0usize;
        for i in 0..20u32 {
            for j in 0..10u32 {
                for k in 0..10u32 {
                    let d = Dnf::from_clauses(vec![
                        Clause::from_bools(&[v(i), v(100 + j)]),
                        Clause::from_bools(&[v(200 + k)]),
                    ]);
                    assert!(
                        hashes.insert(d.canonical_hash().to_u128()),
                        "collision at {i},{j},{k}"
                    );
                    count += 1;
                }
            }
        }
        assert_eq!(count, 2000);
        assert_eq!(hashes.len(), 2000);
    }

    #[test]
    fn with_clause_matches_full_recompute() {
        let base =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)]), Clause::from_bools(&[v(4)])]);
        let extra = Clause::from_bools(&[v(2), v(3)]);
        let grown =
            Dnf::from_clauses(base.clauses().iter().cloned().chain(std::iter::once(extra.clone())));
        let incremental = base
            .canonical_hash()
            .with_clause(clause_fingerprint(extra.atoms().iter().copied()), extra.len());
        assert_eq!(incremental, grown.canonical_hash());
    }

    /// The digest must separate DNFs whose clauses could be confused by a
    /// purely additive (structure-free) combine: moving an atom between
    /// clauses, merging clauses, or splitting them all change the hash.
    #[test]
    fn clause_boundaries_are_part_of_the_digest() {
        let ab_c =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)]), Clause::from_bools(&[v(2)])]);
        let a_bc =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0)]), Clause::from_bools(&[v(1), v(2)])]);
        let abc = Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1), v(2)])]);
        let a_b_c = Dnf::from_clauses(vec![
            Clause::from_bools(&[v(0)]),
            Clause::from_bools(&[v(1)]),
            Clause::from_bools(&[v(2)]),
        ]);
        let hashes = [&ab_c, &a_bc, &abc, &a_b_c].map(|d| d.canonical_hash());
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "collision between variants {i} and {j}");
            }
        }
    }
}
