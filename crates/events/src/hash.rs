//! Canonical hashing of DNF formulas.
//!
//! Answer tuples of the same query share large parts of their lineage: the
//! d-tree decomposition of two overlapping lineages keeps producing the same
//! sub-DNFs, whose exact probabilities and bucket bounds are expensive to
//! recompute. To memoize those results across decomposition steps — and
//! across *lineages* inside one batch — sub-formulas need a cheap, canonical
//! identity.
//!
//! [`DnfHash`] provides that identity as a 128-bit fingerprint:
//!
//! * **Canonical** — [`crate::Dnf`] normalises on construction (clauses are
//!   sorted and deduplicated, atoms inside a clause are sorted), so two DNFs
//!   representing the same set of clauses hash identically no matter how they
//!   were built.
//! * **Collision-resistant in practice** — two independent 64-bit
//!   accumulators are mixed with a SplitMix64-style finalizer per atom and
//!   per clause boundary. For the workload sizes this repository targets
//!   (up to millions of distinct sub-formulas per batch) the collision
//!   probability of the combined 128-bit digest is negligible; callers that
//!   need certainty can keep the formula alongside the key and verify on
//!   lookup.
//! * **Cheap** — one pass over the atoms, no allocation.
//!
//! The hash identifies the *formula only*. Derived quantities such as
//! probabilities are additionally a function of the
//! [`crate::ProbabilitySpace`]; caches keyed by `DnfHash` must therefore not
//! be shared across different spaces.

use crate::Dnf;

/// A canonical 128-bit fingerprint of a [`Dnf`].
///
/// Equal DNFs (same normalised clause set) always produce equal hashes;
/// unequal DNFs produce equal hashes only with negligible probability. See
/// the [module documentation](self) for the guarantees and caveats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnfHash {
    hi: u64,
    lo: u64,
}

/// SplitMix64 finalizer: a cheap full-avalanche mixing function.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Marker mixed in at every clause boundary so that clause structure is part
/// of the digest (`{x, y}` and `{x}, {y}` must not collide trivially).
const CLAUSE_SEP: u64 = 0x9e37_79b9_7f4a_7c15;

impl DnfHash {
    /// Computes the canonical hash of a DNF.
    ///
    /// Exposed as [`Dnf::canonical_hash`]; this associated function is the
    /// implementation.
    pub fn of(dnf: &Dnf) -> DnfHash {
        // Two accumulators with different seeds give 128 independent bits.
        let mut hi: u64 = 0x8000_0000_0000_001b ^ dnf.len() as u64;
        let mut lo: u64 = 0x5bf0_3635_dcf3_e5ab ^ (dnf.len() as u64).rotate_left(17);
        for clause in dnf.clauses() {
            hi = mix(hi ^ CLAUSE_SEP);
            lo = mix(lo ^ CLAUSE_SEP.rotate_left(31));
            for atom in clause.atoms() {
                let packed = ((atom.var.0 as u64) << 32) | atom.value as u64;
                hi = mix(hi ^ packed);
                lo = mix(lo ^ packed.rotate_left(13) ^ 0xd6e8_feb8_6659_fd93);
            }
        }
        DnfHash { hi, lo }
    }

    /// The fingerprint as a single 128-bit integer.
    #[inline]
    pub fn to_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Maps the hash onto one of `n` shards (used by sharded caches).
    #[inline]
    pub fn shard(self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.lo as usize) % n
    }
}

impl Dnf {
    /// The canonical 128-bit fingerprint of this DNF; see [`DnfHash`].
    pub fn canonical_hash(&self) -> DnfHash {
        DnfHash::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Clause, VarId};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn equal_dnfs_hash_equal_regardless_of_construction_order() {
        let a =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)]), Clause::from_bools(&[v(2)])]);
        let b =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(2)]), Clause::from_bools(&[v(1), v(0)])]);
        assert_eq!(a, b);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn different_dnfs_hash_differently() {
        let base = Dnf::from_clauses(vec![Clause::from_bools(&[v(0), v(1)])]);
        let variants = vec![
            Dnf::empty(),
            Dnf::tautology(),
            Dnf::literal(v(0)),
            Dnf::literal(v(1)),
            // Same variables, different clause structure.
            Dnf::from_clauses(vec![Clause::from_bools(&[v(0)]), Clause::from_bools(&[v(1)])]),
            // Same variables, different value binding.
            Dnf::from_clauses(vec![Clause::from_atoms(vec![Atom::pos(v(0)), Atom::neg(v(1))])]),
        ];
        let mut seen = vec![base.canonical_hash()];
        for d in &variants {
            let h = d.canonical_hash();
            assert!(!seen.contains(&h), "collision for {d}");
            seen.push(h);
        }
    }

    #[test]
    fn hash_is_stable_across_clones() {
        let d =
            Dnf::from_clauses(vec![Clause::from_bools(&[v(3), v(7)]), Clause::from_bools(&[v(1)])]);
        assert_eq!(d.canonical_hash(), d.clone().canonical_hash());
    }

    #[test]
    fn shard_is_in_range() {
        for i in 0..50u32 {
            let d = Dnf::literal(v(i));
            assert!(d.canonical_hash().shard(16) < 16);
        }
    }

    #[test]
    fn many_random_like_dnfs_have_no_pairwise_collisions() {
        // Deterministic pseudo-random battery: 2000 distinct structured DNFs.
        let mut hashes = std::collections::HashSet::new();
        let mut count = 0usize;
        for i in 0..20u32 {
            for j in 0..10u32 {
                for k in 0..10u32 {
                    let d = Dnf::from_clauses(vec![
                        Clause::from_bools(&[v(i), v(100 + j)]),
                        Clause::from_bools(&[v(200 + k)]),
                    ]);
                    assert!(
                        hashes.insert(d.canonical_hash().to_u128()),
                        "collision at {i},{j},{k}"
                    );
                    count += 1;
                }
            }
        }
        assert_eq!(count, 2000);
        assert_eq!(hashes.len(), 2000);
    }
}
