//! Clauses: conjunctions of atomic events.

use std::fmt;

use crate::{Atom, ProbabilitySpace, VarId};

/// A conjunction of atomic events `(x1 = a1) ∧ … ∧ (xn = an)`.
///
/// Atoms are kept sorted by variable id (and value) and deduplicated, so a
/// clause behaves like the *set* of atomic formulas the paper works with. A
/// clause may be *inconsistent* (contain two atoms binding the same variable
/// to different values); inconsistent clauses have probability zero and are
/// dropped by [`crate::Dnf`] normalisation.
///
/// The empty clause is the constant `true` and has probability 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Clause {
    atoms: Vec<Atom>,
}

impl Clause {
    /// The empty clause (constant `true`).
    pub fn empty() -> Self {
        Clause { atoms: Vec::new() }
    }

    /// Builds a clause from an iterator of atoms, sorting and deduplicating.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut atoms: Vec<Atom> = atoms.into_iter().collect();
        atoms.sort_unstable();
        atoms.dedup();
        Clause { atoms }
    }

    /// Builds a clause of positive Boolean literals, one per variable.
    ///
    /// This is the common case for lineage of positive queries on
    /// tuple-independent databases.
    pub fn from_bools(vars: &[VarId]) -> Self {
        Clause::from_atoms(vars.iter().copied().map(Atom::pos))
    }

    /// A clause consisting of a single atom.
    pub fn singleton(atom: Atom) -> Self {
        Clause { atoms: vec![atom] }
    }

    /// Number of atoms in the clause.
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// `true` for the empty clause (constant `true`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atoms of the clause in sorted order.
    #[inline]
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Iterates over the variables mentioned by the clause (in sorted order,
    /// possibly with repetitions if the clause is inconsistent).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.atoms.iter().map(|a| a.var)
    }

    /// Returns `true` if the clause mentions `var`.
    pub fn mentions(&self, var: VarId) -> bool {
        self.atoms.iter().any(|a| a.var == var)
    }

    /// Returns the value the clause binds `var` to, if any.
    ///
    /// If the clause is inconsistent on `var` the first binding is returned.
    pub fn value_of(&self, var: VarId) -> Option<u32> {
        self.atoms.iter().find(|a| a.var == var).map(|a| a.value)
    }

    /// A clause is consistent iff it does not bind the same variable to two
    /// different values.
    pub fn is_consistent(&self) -> bool {
        self.atoms.windows(2).all(|w| !w[0].conflicts_with(&w[1]))
    }

    /// Returns `true` if adding `atom` to the clause would keep it consistent.
    pub fn consistent_with(&self, atom: Atom) -> bool {
        match self.value_of(atom.var) {
            Some(v) => v == atom.value,
            None => true,
        }
    }

    /// Conjunction of two clauses. The result may be inconsistent.
    pub fn and(&self, other: &Clause) -> Clause {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        atoms.extend_from_slice(&self.atoms);
        atoms.extend_from_slice(&other.atoms);
        Clause::from_atoms(atoms)
    }

    /// Adds a single atom to the clause (returning a new clause).
    pub fn with_atom(&self, atom: Atom) -> Clause {
        self.and(&Clause::singleton(atom))
    }

    /// Two clauses are independent iff they share no variable.
    ///
    /// Both atom lists are sorted by variable, so this is a linear merge.
    pub fn independent_of(&self, other: &Clause) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.atoms.len() && j < other.atoms.len() {
            match self.atoms[i].var.cmp(&other.atoms[j].var) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Returns `true` if `self` subsumes `other`, i.e. `self ⊆ other` as atom
    /// sets (so `other ⇒ self` and `other` is redundant in a DNF containing
    /// `self`).
    pub fn subsumes(&self, other: &Clause) -> bool {
        if self.atoms.len() > other.atoms.len() {
            return false;
        }
        // Sorted-merge subset test.
        let (mut i, mut j) = (0, 0);
        while i < self.atoms.len() && j < other.atoms.len() {
            match self.atoms[i].cmp(&other.atoms[j]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        i == self.atoms.len()
    }

    /// Probability of the clause: the product of the probabilities of its
    /// atoms, or 0 if the clause is inconsistent, or 1 if it is empty.
    pub fn probability(&self, space: &ProbabilitySpace) -> f64 {
        if !self.is_consistent() {
            return 0.0;
        }
        self.atoms.iter().map(|a| space.atom_prob(*a)).product()
    }

    /// Restricts the clause under the assignment `var = value` (Shannon
    /// expansion step):
    ///
    /// * `None` if the clause conflicts with the assignment (it is dropped
    ///   from the cofactor),
    /// * `Some(clause)` with the atom on `var` removed otherwise.
    pub fn restrict(&self, var: VarId, value: u32) -> Option<Clause> {
        match self.value_of(var) {
            Some(v) if v != value => None,
            Some(_) => Some(Clause {
                atoms: self.atoms.iter().copied().filter(|a| a.var != var).collect(),
            }),
            None => Some(self.clone()),
        }
    }

    /// Removes all atoms over the given (sorted-irrelevant) variable set,
    /// returning the remaining clause. Used by product factorization.
    pub fn project_out(&self, vars: &dyn Fn(VarId) -> bool) -> Clause {
        Clause { atoms: self.atoms.iter().copied().filter(|a| !vars(a.var)).collect() }
    }

    /// Keeps only atoms over variables selected by the predicate.
    pub fn project_onto(&self, vars: &dyn Fn(VarId) -> bool) -> Clause {
        Clause { atoms: self.atoms.iter().copied().filter(|a| vars(a.var)).collect() }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "⊤");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRUE_VALUE;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = Clause::from_atoms(vec![Atom::pos(v(2)), Atom::pos(v(1)), Atom::pos(v(2))]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.atoms()[0].var, v(1));
        assert_eq!(c.atoms()[1].var, v(2));
    }

    #[test]
    fn empty_clause_is_true() {
        let c = Clause::empty();
        assert!(c.is_empty());
        assert!(c.is_consistent());
        let space = ProbabilitySpace::new();
        assert_eq!(c.probability(&space), 1.0);
        assert_eq!(c.to_string(), "⊤");
    }

    #[test]
    fn consistency_detection() {
        let consistent = Clause::from_atoms(vec![Atom::pos(v(0)), Atom::neg(v(1))]);
        assert!(consistent.is_consistent());
        let inconsistent = Clause::from_atoms(vec![Atom::pos(v(0)), Atom::neg(v(0))]);
        assert!(!inconsistent.is_consistent());
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.5);
        let bad = Clause::from_atoms(vec![Atom::pos(x), Atom::neg(x)]);
        assert_eq!(bad.probability(&s), 0.0);
    }

    #[test]
    fn consistent_with_atom() {
        let c = Clause::from_atoms(vec![Atom::pos(v(0))]);
        assert!(c.consistent_with(Atom::pos(v(0))));
        assert!(!c.consistent_with(Atom::neg(v(0))));
        assert!(c.consistent_with(Atom::neg(v(1))));
    }

    #[test]
    fn probability_is_product_of_atom_probabilities() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        let y = s.add_bool("y", 0.2);
        let c = Clause::from_bools(&[x, y]);
        assert!((c.probability(&s) - 0.06).abs() < 1e-12);
        let c2 = Clause::from_atoms(vec![Atom::pos(x), Atom::neg(y)]);
        assert!((c2.probability(&s) - 0.3 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn independence_checks_variable_overlap() {
        let a = Clause::from_bools(&[v(0), v(1)]);
        let b = Clause::from_bools(&[v(2), v(3)]);
        let c = Clause::from_bools(&[v(1), v(2)]);
        assert!(a.independent_of(&b));
        assert!(b.independent_of(&a));
        assert!(!a.independent_of(&c));
        assert!(!c.independent_of(&b));
        // A clause is never independent of itself unless it is empty.
        assert!(!a.independent_of(&a));
        assert!(Clause::empty().independent_of(&a));
    }

    #[test]
    fn subsumption_is_subset_of_atoms() {
        let small = Clause::from_bools(&[v(0)]);
        let big = Clause::from_bools(&[v(0), v(1)]);
        let other = Clause::from_bools(&[v(1), v(2)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(small.subsumes(&small));
        assert!(!small.subsumes(&other));
        assert!(Clause::empty().subsumes(&small));
        // Same variable, different value: no subsumption.
        let neg = Clause::from_atoms(vec![Atom::neg(v(0))]);
        assert!(!small.subsumes(&neg));
    }

    #[test]
    fn restrict_implements_shannon_cofactor() {
        // Clause x0 ∧ x1 restricted on x0=true drops the x0 atom.
        let c = Clause::from_bools(&[v(0), v(1)]);
        let r = c.restrict(v(0), TRUE_VALUE).unwrap();
        assert_eq!(r, Clause::from_bools(&[v(1)]));
        // Restricted on x0=false the clause conflicts and is dropped.
        assert!(c.restrict(v(0), 0).is_none());
        // Restricting on a variable not mentioned leaves the clause unchanged.
        let r = c.restrict(v(7), 1).unwrap();
        assert_eq!(r, c);
    }

    #[test]
    fn projections_split_a_clause() {
        let c = Clause::from_bools(&[v(0), v(1), v(2)]);
        let left = c.project_onto(&|x: VarId| x.0 <= 1);
        let right = c.project_out(&|x: VarId| x.0 <= 1);
        assert_eq!(left, Clause::from_bools(&[v(0), v(1)]));
        assert_eq!(right, Clause::from_bools(&[v(2)]));
        assert_eq!(left.and(&right), c);
    }

    #[test]
    fn value_of_and_mentions() {
        let c = Clause::from_atoms(vec![Atom::new(v(3), 2), Atom::pos(v(5))]);
        assert_eq!(c.value_of(v(3)), Some(2));
        assert_eq!(c.value_of(v(5)), Some(1));
        assert_eq!(c.value_of(v(4)), None);
        assert!(c.mentions(v(3)));
        assert!(!c.mentions(v(4)));
    }

    #[test]
    fn display_joins_atoms_with_and() {
        let c = Clause::from_atoms(vec![Atom::pos(v(1)), Atom::neg(v(2))]);
        assert_eq!(c.to_string(), "x1 ∧ ¬x2");
    }
}
