//! Structural analyses of clause sets: union-find, independence partitioning
//! (connected components of the variable co-occurrence graph) and product
//! factorization (the independent-and decomposition of column-aligned DNFs).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

use crate::{Clause, VarId};

/// A generic union-find (disjoint-set) structure over hashable keys.
///
/// Used for the independent-or decomposition: variables co-occurring in a
/// clause are merged, and each resulting set is an independent component of
/// the DNF. The paper phrases this as computing connected components with
/// Tarjan's algorithm; union-find with path compression gives the same
/// components in near-linear time.
#[derive(Debug, Clone, Default)]
pub struct UnionFind<K: Eq + Hash + Ord + Copy> {
    parent: BTreeMap<K, K>,
    rank: BTreeMap<K, u32>,
    components: usize,
}

impl<K: Eq + Hash + Ord + Copy> UnionFind<K> {
    /// Creates an empty union-find.
    pub fn new() -> Self {
        UnionFind { parent: BTreeMap::new(), rank: BTreeMap::new(), components: 0 }
    }

    /// Inserts a key as its own singleton set (no-op if already present).
    pub fn insert(&mut self, k: K) {
        if let Entry::Vacant(e) = self.parent.entry(k) {
            e.insert(k);
            self.rank.insert(k, 0);
            self.components += 1;
        }
    }

    /// Finds the representative of `k`'s set, inserting `k` if needed.
    pub fn find(&mut self, k: K) -> K {
        self.insert(k);
        let mut root = k;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        // Path compression.
        let mut cur = k;
        while self.parent[&cur] != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: K, b: K) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        self.components -= 1;
        let (ra_rank, rb_rank) = (self.rank[&ra], self.rank[&rb]);
        if ra_rank < rb_rank {
            self.parent.insert(ra, rb);
        } else if ra_rank > rb_rank {
            self.parent.insert(rb, ra);
        } else {
            self.parent.insert(rb, ra);
            *self.rank.get_mut(&ra).expect("rank exists for inserted key") += 1;
        }
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: K, b: K) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently tracked.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Groups all keys by their representative.
    pub fn groups(&mut self) -> Vec<Vec<K>> {
        let keys: Vec<K> = self.parent.keys().copied().collect();
        let mut by_root: BTreeMap<K, Vec<K>> = BTreeMap::new();
        for k in keys {
            let r = self.find(k);
            by_root.entry(r).or_default().push(k);
        }
        by_root.into_values().collect()
    }
}

/// Partitions the clauses (given by index) into independent groups: two
/// clauses belong to the same group iff they are connected through shared
/// variables. This is the independent-or (⊗) partitioning of the paper.
pub fn connected_components(clauses: &[Clause]) -> Vec<Vec<usize>> {
    connected_components_by(clauses.len(), |i| clauses[i].vars())
}

/// Generic form of [`connected_components`]: `n` clauses, the `i`-th yielding
/// its variables through `vars_of`. Owned [`crate::Dnf`]s and arena
/// [`crate::DnfView`]s share this exact implementation, so the two paths
/// produce components in the **same order** — a prerequisite for the
/// bit-identity of the arena-backed d-tree compiler.
pub fn connected_components_by<F, I>(n: usize, mut vars_of: F) -> Vec<Vec<usize>>
where
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = VarId>,
{
    // Flat union-find over clause indices (same union-by-rank + full path
    // compression semantics as [`UnionFind`], so roots — and with them the
    // component order — are identical to the map-based structure, at a
    // fraction of the cost).
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u8> = vec![0; n];
    fn find(parent: &mut [u32], k: u32) -> u32 {
        let mut root = k;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = k;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    // Sorted flat map variable → first clause (binary-search insert; the
    // var sets of decomposition nodes are small, and even for large ones the
    // log-time probe beats a hash map's per-entry allocation churn).
    let mut var_to_first_clause: Vec<(VarId, u32)> = Vec::new();
    for i in 0..n {
        for v in vars_of(i) {
            match var_to_first_clause.binary_search_by_key(&v, |e| e.0) {
                Err(pos) => var_to_first_clause.insert(pos, (v, i as u32)),
                Ok(pos) => {
                    let (a, b) = (i as u32, var_to_first_clause[pos].1);
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        match rank[ra as usize].cmp(&rank[rb as usize]) {
                            std::cmp::Ordering::Less => parent[ra as usize] = rb,
                            std::cmp::Ordering::Greater => parent[rb as usize] = ra,
                            std::cmp::Ordering::Equal => {
                                parent[rb as usize] = ra;
                                rank[ra as usize] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    // Group by root in ascending root order (what the `BTreeMap` grouping of
    // the map-based implementation produced).
    let mut slot: Vec<u32> = vec![u32::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut roots: Vec<u32> = Vec::new();
    for i in 0..n {
        let r = find(&mut parent, i as u32);
        if slot[r as usize] == u32::MAX {
            slot[r as usize] = roots.len() as u32;
            roots.push(r);
            groups.push(Vec::new());
        }
        groups[slot[r as usize] as usize].push(i);
    }
    // Roots are discovered in ascending clause order; a set's root is always
    // its first-inserted... not necessarily — order groups by root id to
    // match the reference grouping exactly.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_unstable_by_key(|&g| roots[g]);
    order.into_iter().map(|g| std::mem::take(&mut groups[g])).collect()
}

/// Labels mapping each variable to the "origin group" it belongs to — for
/// query lineage, the input relation (or query subgoal) the variable's tuple
/// came from. Origin information drives both the independent-and product
/// factorization and the tractable variable-elimination orders of Section VI.
///
/// Variable ids are dense (one per tuple, allocated sequentially), so the
/// table is a flat vector indexed by id — the factorization gate probes it
/// for **every atom of every decomposition step**, which a tree map made the
/// single hottest lookup of the compiler. Cloning is cheap: the table is
/// behind an [`std::sync::Arc`] that is only copied on write, so per-lineage
/// front-ends can clone the origins into their compile options without
/// paying for the whole table — millions of variables would otherwise make
/// every confidence call `O(database)`.
#[derive(Debug, Clone, Default)]
pub struct VarOrigins {
    inner: std::sync::Arc<OriginTable>,
}

/// Sentinel for "no origin recorded".
const NO_ORIGIN: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct OriginTable {
    /// `groups[var.index()]` is the origin group, or [`NO_ORIGIN`].
    groups: Vec<u32>,
    /// Number of variables with a recorded origin.
    known: usize,
}

impl VarOrigins {
    /// Creates an empty origin map.
    pub fn new() -> Self {
        VarOrigins::default()
    }

    /// Records that `var` originates from group `group` (e.g. relation id).
    ///
    /// # Panics
    /// Panics on the reserved group id `u32::MAX`.
    pub fn set(&mut self, var: VarId, group: u32) {
        assert_ne!(group, NO_ORIGIN, "origin group id u32::MAX is reserved");
        let table = std::sync::Arc::make_mut(&mut self.inner);
        if table.groups.len() <= var.index() {
            table.groups.resize(var.index() + 1, NO_ORIGIN);
        }
        if table.groups[var.index()] == NO_ORIGIN {
            table.known += 1;
        }
        table.groups[var.index()] = group;
    }

    /// The origin group of `var`, if known.
    #[inline]
    pub fn get(&self, var: VarId) -> Option<u32> {
        match self.inner.groups.get(var.index()) {
            Some(&g) if g != NO_ORIGIN => Some(g),
            _ => None,
        }
    }

    /// Number of variables with a recorded origin.
    pub fn len(&self) -> usize {
        self.inner.known
    }

    /// `true` if no origin is recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.known == 0
    }

    /// The set of distinct origin groups mentioned by the given clause set.
    pub fn groups_of(&self, clauses: &[Clause]) -> BTreeSet<u32> {
        clauses.iter().flat_map(|c| c.vars()).filter_map(|v| self.get(v)).collect()
    }
}

/// Attempts the *independent-and* (⊙) product factorization of a clause set
/// whose variables carry origin labels.
///
/// The lineage of a conjunctive query has one variable per subgoal in each
/// clause; a partition `{G1, …, Gk}` of the subgoals factorizes the DNF iff
/// the clause set equals the cartesian product of its projections onto each
/// `Gi`. This function:
///
/// 1. groups origins that must stay together (pairwise product test),
/// 2. verifies the candidate factorization by checking
///    `|Φ| = Π |π_{Gi}(Φ)|` and membership of every recombined clause,
/// 3. returns the projected factor DNFs (as clause vectors) on success.
///
/// Returns `None` when no factorization into ≥ 2 factors exists (or cannot be
/// verified) — the caller then falls back to Shannon expansion.
pub fn product_factorization(clauses: &[Clause], origins: &VarOrigins) -> Option<Vec<Vec<Clause>>> {
    product_factorization_by(clauses.len(), |i| clauses[i].atoms().iter().copied(), origins)
}

/// Generic form of [`product_factorization`]: `n` clauses, the `i`-th
/// yielding its (sorted) atoms through `atoms_of`. Shared by the owned
/// [`crate::Dnf`] path and the arena [`crate::DnfView`] path so both produce
/// the same factors in the same order.
pub fn product_factorization_by<F, I>(
    n: usize,
    atoms_of: F,
    origins: &VarOrigins,
) -> Option<Vec<Vec<Clause>>>
where
    F: Fn(usize) -> I,
    I: Iterator<Item = crate::Atom>,
{
    if n < 2 {
        return None;
    }
    // Gate pass: every variable must have a known origin, and at least two
    // distinct groups must occur. The overwhelmingly common negative case
    // (single-relation lineage) is decided with two registers — no set is
    // built unless a second group actually shows up.
    let mut first_group: Option<u32> = None;
    let mut multi_group = false;
    for i in 0..n {
        for a in atoms_of(i) {
            let g = origins.get(a.var)?;
            match first_group {
                None => first_group = Some(g),
                Some(f) if f != g => multi_group = true,
                Some(_) => {}
            }
        }
    }
    if !multi_group {
        return None;
    }
    // Collect the origin groups present (projection may be empty for some
    // clause, which breaks the aligned-product structure, so require full
    // alignment — checked below).
    let mut group_set: BTreeSet<u32> = BTreeSet::new();
    for i in 0..n {
        for a in atoms_of(i) {
            group_set.insert(origins.get(a.var)?);
        }
    }
    let all_groups: Vec<u32> = group_set.into_iter().collect();

    // Projection of a clause onto an origin group. Atoms arrive sorted, so
    // the filtered sequence is a valid sorted clause.
    let project = |i: usize, g: u32| -> Clause {
        Clause::from_atoms(atoms_of(i).filter(|a| origins.get(a.var) == Some(g)))
    };

    // Pairwise merging: groups g and h must stay in the same factor if the
    // projection of the clause set onto {g, h} is not the product of the
    // projections onto {g} and {h}.
    let mut uf: UnionFind<u32> = UnionFind::new();
    for &g in &all_groups {
        uf.insert(g);
    }
    for i in 0..all_groups.len() {
        for j in (i + 1)..all_groups.len() {
            let (g, h) = (all_groups[i], all_groups[j]);
            let mut proj_g: BTreeSet<Clause> = BTreeSet::new();
            let mut proj_h: BTreeSet<Clause> = BTreeSet::new();
            let mut proj_gh: BTreeSet<(Clause, Clause)> = BTreeSet::new();
            for c in 0..n {
                let cg = project(c, g);
                let ch = project(c, h);
                proj_g.insert(cg.clone());
                proj_h.insert(ch.clone());
                proj_gh.insert((cg, ch));
            }
            if proj_gh.len() != proj_g.len() * proj_h.len() {
                uf.union(g, h);
            }
        }
    }
    let factors: Vec<Vec<u32>> = uf.groups();
    if factors.len() < 2 {
        return None;
    }

    // Build the projected factor clause sets and verify the product.
    let mut factor_clauses: Vec<Vec<Clause>> = Vec::with_capacity(factors.len());
    for group in &factors {
        let group_set: BTreeSet<u32> = group.iter().copied().collect();
        let mut seen: BTreeSet<Clause> = BTreeSet::new();
        for c in 0..n {
            let proj =
                Clause::from_atoms(atoms_of(c).filter(|a| {
                    origins.get(a.var).map(|g| group_set.contains(&g)).unwrap_or(false)
                }));
            seen.insert(proj);
        }
        // An empty projection in a factor means some clause has no variable
        // from this factor; the aligned-product structure does not hold.
        if seen.iter().any(|c| c.is_empty()) {
            return None;
        }
        factor_clauses.push(seen.into_iter().collect());
    }

    // Verify |Φ| = Π |π_Gi(Φ)| …
    let product_size: usize = factor_clauses.iter().map(|f| f.len()).product();
    if product_size != n {
        return None;
    }
    // … and that every original clause is the conjunction of its projections
    // (which holds by construction since projections partition each clause's
    // atoms) and every recombination is an original clause. Because sizes
    // match and recombinations of projections of original clauses include all
    // original clauses, it suffices to check that the original clause set,
    // viewed as a set, has the full product size (no duplicates collapse).
    let original: BTreeSet<Clause> = (0..n).map(|i| Clause::from_atoms(atoms_of(i))).collect();
    if original.len() != n {
        return None;
    }
    Some(factor_clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clause, Dnf, ProbabilitySpace};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn union_find_basic() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        uf.insert(1);
        uf.insert(2);
        uf.insert(3);
        assert_eq!(uf.num_components(), 3);
        uf.union(1, 2);
        assert_eq!(uf.num_components(), 2);
        assert!(uf.same_set(1, 2));
        assert!(!uf.same_set(1, 3));
        uf.union(2, 3);
        assert_eq!(uf.num_components(), 1);
        assert!(uf.same_set(1, 3));
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn union_find_auto_inserts_on_find() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        assert!(uf.is_empty());
        assert_eq!(uf.find(7), 7);
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn union_find_groups() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        for i in 0..6 {
            uf.insert(i);
        }
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(3, 4);
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
    }

    #[test]
    fn connected_components_of_clauses() {
        let clauses = vec![
            Clause::from_bools(&[v(0), v(1)]),
            Clause::from_bools(&[v(1), v(2)]),
            Clause::from_bools(&[v(3)]),
            Clause::from_bools(&[v(4), v(5)]),
            Clause::from_bools(&[v(5)]),
        ];
        let comps = connected_components(&clauses);
        assert_eq!(comps.len(), 3);
        // Component containing clause 0 also contains clause 1.
        let comp0 = comps.iter().find(|c| c.contains(&0)).unwrap();
        assert!(comp0.contains(&1));
        let comp3 = comps.iter().find(|c| c.contains(&3)).unwrap();
        assert!(comp3.contains(&4));
    }

    #[test]
    fn connected_components_all_connected() {
        let clauses = vec![
            Clause::from_bools(&[v(0), v(1)]),
            Clause::from_bools(&[v(1), v(2)]),
            Clause::from_bools(&[v(2), v(0)]),
        ];
        assert_eq!(connected_components(&clauses).len(), 1);
    }

    #[test]
    fn connected_components_empty_clause_is_isolated() {
        let clauses = vec![Clause::empty(), Clause::from_bools(&[v(0)])];
        assert_eq!(connected_components(&clauses).len(), 2);
    }

    #[test]
    fn var_origins_store_and_lookup() {
        let mut o = VarOrigins::new();
        assert!(o.is_empty());
        o.set(v(0), 10);
        o.set(v(1), 11);
        assert_eq!(o.len(), 2);
        assert_eq!(o.get(v(0)), Some(10));
        assert_eq!(o.get(v(2)), None);
        let groups = o.groups_of(&[Clause::from_bools(&[v(0), v(1)])]);
        assert_eq!(groups.len(), 2);
    }

    /// Lineage of q():-R(A),S(A,B): R joined with S on A. For R = {r1, r2},
    /// S = {s1(a1,b1), s2(a1,b2), s3(a2,b1)} the lineage of the Boolean query
    /// is r1·s1 ∨ r1·s2 ∨ r2·s3, which factorizes per connected component but
    /// not as one global product; whereas the lineage r1·s1 ∨ r1·s2 ∨ r2·s1 ∨
    /// r2·s2 (full cross product) factorizes as (r1 ∨ r2) ⊙ (s1 ∨ s2).
    #[test]
    fn product_factorization_detects_cross_product() {
        let r1 = v(0);
        let r2 = v(1);
        let s1 = v(2);
        let s2 = v(3);
        let mut origins = VarOrigins::new();
        origins.set(r1, 0);
        origins.set(r2, 0);
        origins.set(s1, 1);
        origins.set(s2, 1);
        let clauses = vec![
            Clause::from_bools(&[r1, s1]),
            Clause::from_bools(&[r1, s2]),
            Clause::from_bools(&[r2, s1]),
            Clause::from_bools(&[r2, s2]),
        ];
        let factors = product_factorization(&clauses, &origins).expect("is a product");
        assert_eq!(factors.len(), 2);
        let sizes: Vec<usize> = factors.iter().map(|f| f.len()).collect();
        assert_eq!(sizes, vec![2, 2]);
        // Semantics check: P(product) = P(factor1) * P(factor2).
        let mut space = ProbabilitySpace::new();
        let pr: Vec<_> =
            (0..4).map(|i| space.add_bool(format!("v{i}"), 0.1 * (i as f64 + 1.0))).collect();
        assert_eq!(pr[0], r1);
        let whole = Dnf::from_clauses(clauses.clone());
        let f1 = Dnf::from_clauses(factors[0].clone());
        let f2 = Dnf::from_clauses(factors[1].clone());
        let p_whole = whole.exact_probability_enumeration(&space);
        let p_product =
            f1.exact_probability_enumeration(&space) * f2.exact_probability_enumeration(&space);
        assert!((p_whole - p_product).abs() < 1e-12);
    }

    #[test]
    fn product_factorization_rejects_non_product() {
        let r1 = v(0);
        let r2 = v(1);
        let s1 = v(2);
        let s2 = v(3);
        let s3 = v(4);
        let mut origins = VarOrigins::new();
        for (var, g) in [(r1, 0), (r2, 0), (s1, 1), (s2, 1), (s3, 1)] {
            origins.set(var, g);
        }
        // r1 pairs with {s1, s2} but r2 pairs only with s3: not a product.
        let clauses = vec![
            Clause::from_bools(&[r1, s1]),
            Clause::from_bools(&[r1, s2]),
            Clause::from_bools(&[r2, s3]),
        ];
        assert!(product_factorization(&clauses, &origins).is_none());
    }

    #[test]
    fn product_factorization_requires_origins() {
        let clauses = vec![Clause::from_bools(&[v(0), v(2)]), Clause::from_bools(&[v(1), v(2)])];
        let origins = VarOrigins::new();
        assert!(product_factorization(&clauses, &origins).is_none());
    }

    #[test]
    fn product_factorization_single_group_returns_none() {
        let mut origins = VarOrigins::new();
        origins.set(v(0), 0);
        origins.set(v(1), 0);
        let clauses = vec![Clause::from_bools(&[v(0)]), Clause::from_bools(&[v(1)])];
        assert!(product_factorization(&clauses, &origins).is_none());
    }

    #[test]
    fn product_factorization_three_way() {
        // (a1 ∨ a2) ⊙ (b1) ⊙ (c1 ∨ c2): 2*1*2 = 4 clauses.
        let a1 = v(0);
        let a2 = v(1);
        let b1 = v(2);
        let c1 = v(3);
        let c2 = v(4);
        let mut origins = VarOrigins::new();
        for (var, g) in [(a1, 0), (a2, 0), (b1, 1), (c1, 2), (c2, 2)] {
            origins.set(var, g);
        }
        let mut clauses = Vec::new();
        for a in [a1, a2] {
            for c in [c1, c2] {
                clauses.push(Clause::from_bools(&[a, b1, c]));
            }
        }
        let factors = product_factorization(&clauses, &origins).expect("three-way product");
        assert_eq!(factors.len(), 3);
        let mut sizes: Vec<usize> = factors.iter().map(|f| f.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }
}
