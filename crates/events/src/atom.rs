//! Atomic events `x = a` over discrete random variables.

use std::fmt;

/// Domain value used for the Boolean literal `x = false`.
pub const FALSE_VALUE: u32 = 0;
/// Domain value used for the Boolean literal `x = true` (the paper's shortcut
/// `x` for `x = true`).
pub const TRUE_VALUE: u32 = 1;

/// Identifier of a random variable inside a [`crate::ProbabilitySpace`].
///
/// `VarId` is a thin newtype around `u32`: probabilistic databases routinely
/// create one variable per input tuple, so millions of variables must stay
/// cheap to store, hash, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The numeric index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(v: u32) -> Self {
        VarId(v)
    }
}

/// An atomic event `x = a`: a random variable bound to one of its domain
/// values.
///
/// For Boolean variables the paper writes `x` for `x = true` and `¬x` for
/// `x = false`; use [`Atom::pos`] and [`Atom::neg`] for those shortcuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The random variable.
    pub var: VarId,
    /// The domain value the variable is bound to.
    pub value: u32,
}

impl Atom {
    /// Creates the atomic event `var = value`.
    #[inline]
    pub fn new(var: VarId, value: u32) -> Self {
        Atom { var, value }
    }

    /// The positive Boolean literal `x` (i.e. `x = true`).
    #[inline]
    pub fn pos(var: VarId) -> Self {
        Atom { var, value: TRUE_VALUE }
    }

    /// The negative Boolean literal `¬x` (i.e. `x = false`).
    #[inline]
    pub fn neg(var: VarId) -> Self {
        Atom { var, value: FALSE_VALUE }
    }

    /// Returns `true` if the two atoms bind the *same variable* to
    /// *different values*, i.e. their conjunction is inconsistent.
    #[inline]
    pub fn conflicts_with(&self, other: &Atom) -> bool {
        self.var == other.var && self.value != other.value
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            TRUE_VALUE => write!(f, "{}", self.var),
            FALSE_VALUE => write!(f, "¬{}", self.var),
            v => write!(f, "{}={}", self.var, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip() {
        let v: VarId = 42u32.into();
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "x42");
    }

    #[test]
    fn atom_constructors() {
        let x = VarId(3);
        assert_eq!(Atom::pos(x), Atom::new(x, TRUE_VALUE));
        assert_eq!(Atom::neg(x), Atom::new(x, FALSE_VALUE));
        assert_eq!(Atom::new(x, 5).value, 5);
    }

    #[test]
    fn atom_conflicts() {
        let x = VarId(0);
        let y = VarId(1);
        assert!(Atom::pos(x).conflicts_with(&Atom::neg(x)));
        assert!(!Atom::pos(x).conflicts_with(&Atom::pos(x)));
        assert!(!Atom::pos(x).conflicts_with(&Atom::pos(y)));
        assert!(!Atom::pos(x).conflicts_with(&Atom::neg(y)));
        assert!(Atom::new(x, 2).conflicts_with(&Atom::new(x, 3)));
    }

    #[test]
    fn atom_display_uses_paper_shortcuts() {
        let x = VarId(1);
        assert_eq!(Atom::pos(x).to_string(), "x1");
        assert_eq!(Atom::neg(x).to_string(), "¬x1");
        assert_eq!(Atom::new(x, 4).to_string(), "x1=4");
    }

    #[test]
    fn atom_ordering_is_by_var_then_value() {
        let a = Atom::new(VarId(1), 0);
        let b = Atom::new(VarId(1), 1);
        let c = Atom::new(VarId(2), 0);
        assert!(a < b);
        assert!(b < c);
    }
}
