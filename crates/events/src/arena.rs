//! Arena-interned lineage: zero-copy decomposition views over a shared pool.
//!
//! The d-tree hot path (Shannon cofactors, independent-partition splits,
//! bound evaluation) used to re-materialise a fresh [`Dnf`] — a
//! `Vec<Clause>` of `Vec<Atom>` — at every decomposition step. For large
//! lineages that means one allocation per clause per step, and every memo
//! probe re-hashed the whole formula.
//!
//! [`LineageArena`] interns a lineage **once**: all atoms live in one pooled
//! `Vec<Atom>`, clauses are spans over the pool, and each clause's raw
//! 128-bit fingerprint (an order-independent, *subtractable* sum of atom
//! contributions — see [`crate::hash`]) is computed at intern time.
//!
//! [`DnfView`] then represents any sub-formula reachable by the paper's
//! decomposition steps as a list of clause ids; restrictions (Shannon
//! assignments, factored common atoms) are expressed as a **transient
//! restriction list** — a set of variables projected out of every clause —
//! that is applied and discharged inside one compaction pass.
//!
//! With that encoding the decomposition operators become index manipulation
//! over the pool:
//!
//! * `independent_components` and `remove_subsumed` only filter the id list
//!   — **no clause is ever copied**;
//! * `cofactor` / `shannon_cofactors` / `strip_vars` filter conflicting ids,
//!   mask the restricted variable, and immediately **compact**: surviving
//!   clauses are re-interned through the arena's content-dedup map — one
//!   flat pool append per *distinct* clause content ever touched, no
//!   per-clause heap allocations — so the returned views are mask-free and
//!   every later access is a raw slice scan (masks are transient, which is
//!   what keeps deep Shannon recursions fast);
//! * `hash` combines the interned per-clause fingerprints instead of
//!   re-walking every atom — O(clauses) memo keys.
//!
//! **Canonical-order invariant.** [`Dnf::from_clauses`] sorts clauses and
//! removes duplicates; results downstream (bucket bounds, first-fit order,
//! common-atom factoring) depend on that order. Every `DnfView` maintains
//! the same invariant over its *effective* clauses (interned atoms minus the
//! restriction list): operations that can reorder or alias clauses
//! re-canonicalise the id list by comparing effective atom sequences — an
//! index sort, never a copy. A view therefore behaves **bit-identically** to
//! the owned `Dnf` the same decomposition would have produced, which is
//! pinned by the equivalence proptests in `events/tests` and
//! `pdb/tests`.
//!
//! When views copy vs share:
//!
//! * share (index-only): component splits, subsumption removal, hashing,
//!   bounds, variable choice, sampling;
//! * pooled append of *distinct new* clause contents only: restrictions
//!   (cofactor / Shannon / common-atom stripping — the content-dedup map
//!   makes repeats free);
//! * copy once: interning a formula ([`LineageArena::intern`]) and the
//!   relational product factorization (whose factors are *projections* — new
//!   clauses by construction — and are interned back into the arena).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::hash::{clause_fingerprint, HashCombiner};
use crate::partition::connected_components_by;
use crate::{Atom, Clause, Dnf, DnfHash, ProbabilitySpace, VarId};

/// A pooled, append-only store of interned lineage clauses.
///
/// See the module documentation in `arena.rs` for the design. An arena is
/// typically created per compilation run (or per batch item), seeded with
/// [`LineageArena::intern`], and grown by restriction compaction and the
/// product factorization — deduplicated by clause content, so the pool is
/// bounded by the number of *distinct* clauses the run ever touches.
#[derive(Debug, Clone, Default)]
pub struct LineageArena {
    /// All atoms of all interned clauses, clause by clause.
    atoms: Vec<Atom>,
    /// Clause id → `(start, end)` span into `atoms`.
    spans: Vec<(u32, u32)>,
    /// Clause id → raw additive fingerprint of the *full* clause (computed
    /// once at intern time; see [`crate::hash`]).
    fps: Vec<(u64, u64)>,
    /// Content-dedup index: clause digest → id. Shannon recursions produce
    /// the same restricted clauses over and over; interning each content
    /// once bounds the pool by the number of *distinct* clauses touched.
    dedup: std::collections::HashMap<(u64, u64), u32>,
}

impl LineageArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        LineageArena::default()
    }

    /// Creates an arena with room for roughly `clauses` clauses of width
    /// `width`.
    pub fn with_capacity(clauses: usize, width: usize) -> Self {
        LineageArena {
            atoms: Vec::with_capacity(clauses * width),
            spans: Vec::with_capacity(clauses),
            fps: Vec::with_capacity(clauses),
            dedup: std::collections::HashMap::with_capacity(clauses),
        }
    }

    /// Number of interned clauses.
    pub fn num_clauses(&self) -> usize {
        self.spans.len()
    }

    /// Number of pooled atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Interns one clause (assumed consistent, sorted, deduplicated — the
    /// invariant [`Clause`] maintains) and returns its id. Identical clause
    /// content re-uses the existing id (verified by comparison, so a digest
    /// collision can never alias two different clauses).
    fn push_clause(&mut self, atoms: &[Atom]) -> u32 {
        let fp = clause_fingerprint(atoms.iter().copied());
        let digest = crate::hash::clause_digest(fp, atoms.len());
        if let Some(&id) = self.dedup.get(&digest) {
            if self.clause_atoms(id) == atoms {
                return id;
            }
        }
        let start = self.atoms.len() as u32;
        self.atoms.extend_from_slice(atoms);
        let end = self.atoms.len() as u32;
        let id = self.spans.len() as u32;
        self.spans.push((start, end));
        self.fps.push(fp);
        self.dedup.insert(digest, id);
        id
    }

    /// Interns a normalised [`Dnf`] (its clauses are already sorted, deduped
    /// and consistent), returning the root view over it. This is the one
    /// unavoidable copy of the lineage; every decomposition step afterwards
    /// is index manipulation.
    pub fn intern(&mut self, dnf: &Dnf) -> DnfView {
        let ids = dnf.clauses().iter().map(|c| self.push_clause(c.atoms())).collect();
        DnfView { ids }
    }

    /// Interns a **stream** of clauses in arbitrary order — the entry point
    /// for lineage construction that never materialises a `Vec<Clause>` (or
    /// an owned [`Dnf`]) first: query evaluation and storage-layer run
    /// iterators feed clauses one at a time as tuples stream by.
    ///
    /// Normalisation matches [`Dnf::from_clauses`]: inconsistent clauses are
    /// dropped, duplicate contents collapse, and the view's canonical-order
    /// invariant is maintained by binary insertion — so the returned view is
    /// bit-identical (materialisation and hash) to interning
    /// `Dnf::from_clauses(stream.collect())`, without the intermediate
    /// collection. Growing an existing view instead of starting fresh is
    /// [`LineageArena::append_clauses`], which additionally reports the
    /// [`LineageDelta`].
    pub fn intern_clause_stream<I>(&mut self, clauses: I) -> DnfView
    where
        I: IntoIterator<Item = Clause>,
    {
        let mut view = DnfView::empty();
        for clause in clauses {
            if !clause.is_consistent() {
                continue;
            }
            match view.ids.binary_search_by(|&e| self.clause_atoms(e).cmp(clause.atoms())) {
                Ok(_) => continue, // content already present
                Err(pos) => {
                    let id = self.push_clause(clause.atoms());
                    view.ids.insert(pos, id);
                }
            }
        }
        view
    }

    /// Interns an already-sorted, deduplicated, consistent clause sequence
    /// (e.g. a product-factorization factor, which arrives sorted out of a
    /// `BTreeSet`), returning a view over it.
    pub fn intern_sorted_clauses(&mut self, clauses: &[Clause]) -> DnfView {
        debug_assert!(clauses.windows(2).all(|w| w[0] < w[1]), "clauses must be sorted + deduped");
        let ids = clauses.iter().map(|c| self.push_clause(c.atoms())).collect();
        DnfView { ids }
    }

    /// The full (unmasked) atoms of clause `id`.
    #[inline]
    fn clause_atoms(&self, id: u32) -> &[Atom] {
        let (s, e) = self.spans[id as usize];
        &self.atoms[s as usize..e as usize]
    }

    /// Appends clauses to an existing view **in place**, returning the
    /// [`LineageDelta`] describing what actually changed.
    ///
    /// Inconsistent clauses and clauses whose content the view already
    /// contains are skipped (mirroring [`Dnf::from_clauses`] normalisation),
    /// so the delta carries only the genuinely new clauses. The view's
    /// canonical-order invariant is maintained by binary insertion, and the
    /// post-append fingerprint is computed incrementally from the view's
    /// previous hash — O(1) per appended clause instead of a re-combine over
    /// the whole formula.
    ///
    /// The grown view is bit-identical (materialisation and hash) to
    /// re-interning `old ∨ appended` from scratch, which is pinned by tests.
    pub fn append_clauses(&mut self, view: &mut DnfView, clauses: &[Clause]) -> LineageDelta {
        let mut hash = view.hash(self);
        let mut added: Vec<Clause> = Vec::new();
        for clause in clauses {
            if !clause.is_consistent() {
                continue;
            }
            match view.ids.binary_search_by(|&e| self.clause_atoms(e).cmp(clause.atoms())) {
                Ok(_) => continue, // content already present
                Err(pos) => {
                    let id = self.push_clause(clause.atoms());
                    view.ids.insert(pos, id);
                    hash = hash.with_clause(self.fps[id as usize], clause.len());
                    added.push(clause.clone());
                }
            }
        }
        debug_assert_eq!(hash, view.hash(self), "incremental delta hash diverged");
        LineageDelta { clauses: added, hash_after: hash, len_after: view.ids.len() }
    }
}

/// The result of appending clauses to a lineage: the clauses that were
/// actually new, plus the incrementally updated canonical fingerprint of the
/// grown formula.
///
/// Deltas are **owned** (they carry [`Clause`] values, not arena ids), so a
/// delta produced against one arena can be replayed into another — e.g. the
/// private arena inside a suspended d-tree compilation. An empty delta means
/// the append was a no-op (every clause was inconsistent or already present).
#[derive(Debug, Clone)]
pub struct LineageDelta {
    clauses: Vec<Clause>,
    hash_after: DnfHash,
    len_after: usize,
}

impl LineageDelta {
    /// Computes the delta taking the formula `old` to the formula `new`, or
    /// `None` if the edit was **not** a pure append (some clause of `old` is
    /// missing from `new` — a destructive edit, which delta maintenance must
    /// refuse so stale bounds cannot survive it).
    pub fn between(old: &Dnf, new: &Dnf) -> Option<LineageDelta> {
        // Both clause lists are sorted and deduplicated by construction:
        // one sorted merge yields containment and the difference at once.
        let mut added = Vec::new();
        let (a, b) = (old.clauses(), new.clauses());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => return None, // a[i] dropped by `new`
                std::cmp::Ordering::Greater => {
                    added.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        if i < a.len() {
            return None;
        }
        added.extend(b[j..].iter().cloned());
        Some(LineageDelta {
            clauses: added,
            hash_after: new.canonical_hash(),
            len_after: new.len(),
        })
    }

    /// The clauses the append actually added, in sorted order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// `true` when the append changed nothing.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Number of genuinely new clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Canonical hash of the formula *after* the append.
    pub fn hash_after(&self) -> DnfHash {
        self.hash_after
    }

    /// Number of clauses of the formula after the append.
    pub fn len_after(&self) -> usize {
        self.len_after
    }
}

/// A sub-formula of interned lineage: a set of clause ids in canonical
/// order.
///
/// Restriction lists are *transient*: the restriction operators (cofactor,
/// Shannon cofactors, common-atom stripping) apply their mask during
/// `DnfView::canonicalize`'s compaction pass and return mask-free views,
/// so every stored view reads its clauses as raw pooled slices — no per-atom
/// mask check on the hot iterators.
///
/// All accessors take the owning [`LineageArena`]; a view holds no reference
/// itself, so it can be stored in work lists and tree nodes without lifetime
/// plumbing. Cloning a view copies only the id list (`u32`s), never clause
/// content.
#[derive(Debug, Clone, Default)]
pub struct DnfView {
    /// Arena clause ids, kept in canonical order (see the module docs) and
    /// free of duplicates.
    ids: Vec<u32>,
}

impl DnfView {
    /// The empty view (constant `false`).
    pub fn empty() -> Self {
        DnfView::default()
    }

    /// Number of (effective) clauses.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` for the empty view (constant `false`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The atoms of the `i`-th clause, in sorted variable order, for every
    /// clause of the view.
    #[inline]
    pub fn atoms<'a>(&'a self, arena: &'a LineageArena) -> impl Iterator<Item = ClauseAtoms<'a>> {
        self.ids.iter().map(move |&id| ClauseAtoms(arena.clause_atoms(id).iter()))
    }

    /// The atoms of the clause at position `i`, in sorted variable order.
    #[inline]
    pub fn clause<'a>(&'a self, arena: &'a LineageArena, i: usize) -> ClauseAtoms<'a> {
        ClauseAtoms(arena.clause_atoms(self.ids[i]).iter())
    }

    /// The atoms of the clause at position `i` as a raw pooled slice,
    /// borrowed straight from the arena. This is the zero-copy substrate
    /// samplers build on (e.g. the arena-backed Karp-Luby estimator), where
    /// the iterator wrapper of [`DnfView::clause`] would cost a pointer
    /// chase per atom.
    #[inline]
    pub fn clause_slice<'a>(&self, arena: &'a LineageArena, i: usize) -> &'a [Atom] {
        arena.clause_atoms(self.ids[i])
    }

    /// Length of the clause at position `i`.
    #[inline]
    pub fn clause_len(&self, arena: &LineageArena, i: usize) -> usize {
        self.clause_slice(arena, i).len()
    }

    /// `true` if some clause is empty, i.e. the view is the constant `true`.
    pub fn is_tautology(&self, arena: &LineageArena) -> bool {
        self.ids.iter().any(|&id| arena.clause_atoms(id).is_empty())
    }

    /// The value the clause at position `i` binds `var` to.
    pub fn value_of(&self, arena: &LineageArena, i: usize, var: VarId) -> Option<u32> {
        full_value_of(self.clause_slice(arena, i), var)
    }

    /// `true` if the clause at position `i` effectively mentions `var`.
    pub fn mentions(&self, arena: &LineageArena, i: usize, var: VarId) -> bool {
        self.value_of(arena, i, var).is_some()
    }

    /// The set of variables effectively occurring in the view.
    pub fn vars(&self, arena: &LineageArena) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for i in 0..self.len() {
            out.extend(self.clause(arena, i).map(|a| a.var));
        }
        out
    }

    /// Number of distinct effective variables.
    pub fn num_vars(&self, arena: &LineageArena) -> usize {
        self.vars(arena).len()
    }

    /// Total number of effective atoms.
    pub fn size(&self, arena: &LineageArena) -> usize {
        (0..self.len()).map(|i| self.clause_len(arena, i)).sum()
    }

    /// Counts, for each effective variable, the number of clauses it occurs
    /// in — mirrors [`Dnf::occurrence_counts`].
    pub fn occurrence_counts(&self, arena: &LineageArena) -> BTreeMap<VarId, usize> {
        let mut counts = BTreeMap::new();
        for i in 0..self.len() {
            for a in self.clause(arena, i) {
                *counts.entry(a.var).or_insert(0) += 1;
            }
        }
        counts
    }

    /// A variable occurring in the largest number of clauses, with
    /// [`Dnf::most_frequent_var`]'s exact tie-breaking (highest count wins,
    /// smallest id among ties) — computed by one flat sort + run-length scan
    /// instead of a tree map.
    pub fn most_frequent_var(&self, arena: &LineageArena) -> Option<VarId> {
        let mut vars: Vec<VarId> = Vec::new();
        for i in 0..self.len() {
            vars.extend(self.clause(arena, i).map(|a| a.var));
        }
        vars.sort_unstable();
        let mut best: Option<(VarId, usize)> = None;
        let mut i = 0;
        while i < vars.len() {
            let v = vars[i];
            let mut j = i + 1;
            while j < vars.len() && vars[j] == v {
                j += 1;
            }
            let count = j - i;
            // The owned tie-break: a higher count wins; on equal counts the
            // *smaller* variable id wins.
            if best.map(|(bv, bc)| count > bc || (count == bc && v < bv)).unwrap_or(true) {
                best = Some((v, count));
            }
            i = j;
        }
        best.map(|(v, _)| v)
    }

    /// `true` when the view mentions more than `k` distinct variables —
    /// equivalent to `self.num_vars(arena) > k` but with an early exit and a
    /// flat sorted buffer capped at `k + 1` entries (the hot exact-leaf
    /// threshold check of the approximation).
    pub fn num_vars_exceeds(&self, arena: &LineageArena, k: usize) -> bool {
        let mut seen: Vec<VarId> = Vec::with_capacity(k + 1);
        for i in 0..self.len() {
            for a in self.clause(arena, i) {
                if let Err(pos) = seen.binary_search(&a.var) {
                    if seen.len() == k {
                        return true;
                    }
                    seen.insert(pos, a.var);
                }
            }
        }
        false
    }

    /// Probability of the clause at position `i`: product of atom marginals
    /// (1 for an empty clause).
    pub fn clause_probability(
        &self,
        arena: &LineageArena,
        space: &ProbabilitySpace,
        i: usize,
    ) -> f64 {
        self.clause_slice(arena, i).iter().map(|a| space.atom_prob(*a)).product()
    }

    /// Sum of clause marginal probabilities — mirrors
    /// [`Dnf::clause_probability_sum`].
    pub fn clause_probability_sum(&self, arena: &LineageArena, space: &ProbabilitySpace) -> f64 {
        (0..self.len()).map(|i| self.clause_probability(arena, space, i)).sum()
    }

    /// Evaluates the view under a complete valuation — mirrors [`Dnf::eval`].
    pub fn eval(&self, arena: &LineageArena, valuation: &dyn Fn(VarId) -> u32) -> bool {
        (0..self.len()).any(|i| self.clause(arena, i).all(|a| valuation(a.var) == a.value))
    }

    /// One-past the largest variable id mentioned by the view, i.e. the
    /// smallest [`ProbabilitySpace`] watermark under which every variable of
    /// this view exists. `0` for constant views.
    pub fn required_watermark(&self, arena: &LineageArena) -> u64 {
        self.ids
            .iter()
            // Atoms are sorted by variable: the last atom carries the max.
            .filter_map(|&id| arena.clause_atoms(id).last())
            .map(|a| a.var.0 as u64 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Canonical hash of the formula — **equal to [`Dnf::canonical_hash`] of
    /// the materialised sub-formula**, computed as an incremental combine
    /// over the interned per-clause fingerprints: O(clauses), never a
    /// re-walk of every atom.
    pub fn hash(&self, arena: &LineageArena) -> DnfHash {
        let mut c = HashCombiner::new();
        for &id in &self.ids {
            c.add_clause(arena.fps[id as usize], arena.clause_atoms(id).len());
        }
        c.finish()
    }

    /// Materialises the view as an owned, canonical [`Dnf`] (the compat
    /// bridge back into the owned API). The result is exactly the `Dnf` the
    /// owned decomposition path would have produced.
    pub fn to_dnf(&self, arena: &LineageArena) -> Dnf {
        Dnf::from_clauses((0..self.len()).map(|i| Clause::from_atoms(self.clause(arena, i))))
    }

    /// Restores the canonical-order invariant over `ids`, applying the
    /// transient restriction list `mask` (sorted variables to project out)
    /// by **compacting**: the restricted clauses are re-interned into the
    /// pool — one flat append per *distinct* clause content, no per-clause
    /// allocations — so the returned view is mask-free and every later
    /// access is a raw slice scan. Keeping restriction lists transient is
    /// what makes deep Shannon recursions fast: the owned path pays the
    /// restriction once per step too, but with one heap allocation per
    /// clause; the arena pays one pooled append with content dedup.
    fn canonicalize(arena: &mut LineageArena, mut ids: Vec<u32>, mask: &[VarId]) -> DnfView {
        if !mask.is_empty() {
            // Compact first — content-dedup in `push_clause` maps equal
            // restricted clauses onto one id — then sort by raw slice
            // comparison and drop adjacent duplicates by id.
            let mut scratch: Vec<Atom> = Vec::new();
            for id in &mut ids {
                scratch.clear();
                scratch.extend(
                    arena
                        .clause_atoms(*id)
                        .iter()
                        .copied()
                        .filter(|a| mask.binary_search(&a.var).is_err()),
                );
                *id = arena.push_clause(&scratch);
            }
        }
        ids.sort_unstable_by(|&a, &b| arena.clause_atoms(a).cmp(arena.clause_atoms(b)));
        ids.dedup_by(|a, b| arena.clause_atoms(*a) == arena.clause_atoms(*b));
        DnfView { ids }
    }

    /// The Shannon cofactor `Φ|var=value` — mirrors [`Dnf::cofactor`]:
    /// conflicting clauses are filtered out of the id list and the
    /// restriction on `var` is compacted into the pool (see [`DnfView`]
    /// docs), so the returned view is mask-free.
    pub fn cofactor(&self, arena: &mut LineageArena, var: VarId, value: u32) -> DnfView {
        let ids: Vec<u32> = self
            .ids
            .iter()
            .copied()
            .filter(|&id| match full_value_of(arena.clause_atoms(id), var) {
                Some(v) => v == value,
                None => true,
            })
            .collect();
        DnfView::canonicalize(arena, ids, &[var])
    }

    /// All non-empty Shannon cofactors of `var` as `(value, cofactor)` pairs —
    /// mirrors [`Dnf::shannon_cofactors`], computed with a **single grouping
    /// pass** over the clauses (clauses binding `var` to each value, plus the
    /// unconstrained remainder) instead of one scan per domain value.
    pub fn shannon_cofactors(
        &self,
        arena: &mut LineageArena,
        var: VarId,
        space: &ProbabilitySpace,
    ) -> Vec<(u32, DnfView)> {
        // Group clause ids by the value they bind `var` to (sorted small-vec
        // grouping; domain sizes are tiny, usually 2).
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut rest: Vec<u32> = Vec::new();
        for &id in &self.ids {
            match full_value_of(arena.clause_atoms(id), var) {
                Some(v) => match groups.binary_search_by_key(&v, |g| g.0) {
                    Ok(i) => groups[i].1.push(id),
                    Err(i) => groups.insert(i, (v, vec![id])),
                },
                None => rest.push(id),
            }
        }
        let mut out = Vec::new();
        for value in 0..space.domain_size(var) {
            let group = groups
                .binary_search_by_key(&value, |g| g.0)
                .ok()
                .map(|i| groups[i].1.as_slice())
                .unwrap_or(&[]);
            if group.is_empty() && rest.is_empty() {
                continue;
            }
            let mut ids = Vec::with_capacity(group.len() + rest.len());
            ids.extend_from_slice(group);
            ids.extend_from_slice(&rest);
            out.push((value, DnfView::canonicalize(arena, ids, &[var])));
        }
        out
    }

    /// Partitions the view into independent components — mirrors
    /// [`Dnf::independent_components`], sharing the exact grouping algorithm
    /// via [`connected_components_by`] so component order is identical.
    pub fn independent_components(&self, arena: &LineageArena) -> Vec<DnfView> {
        if self.len() <= 1 {
            return vec![self.clone()];
        }
        let groups = connected_components_by(self.len(), |i| self.clause(arena, i).map(|a| a.var));
        if groups.len() <= 1 {
            return vec![self.clone()];
        }
        groups
            .into_iter()
            .map(|idxs| DnfView {
                // An ascending subsequence of a canonically ordered id list
                // is canonically ordered: no re-sort needed.
                ids: idxs.into_iter().map(|i| self.ids[i]).collect(),
            })
            .collect()
    }

    /// Atoms effectively shared by every clause — mirrors
    /// [`Dnf::common_atoms`], computed as a running sorted-merge intersection
    /// of the first clause's atoms with every other clause (atoms are sorted
    /// by variable, so each clause shrinks the candidate set in one pass).
    pub fn common_atoms(&self, arena: &LineageArena) -> Vec<Atom> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut candidates: Vec<Atom> = self.clause(arena, 0).collect();
        for i in 1..self.len() {
            if candidates.is_empty() {
                return candidates;
            }
            let mut kept = 0;
            let mut clause = self.clause(arena, i).peekable();
            'cand: for c in 0..candidates.len() {
                let a = candidates[c];
                while let Some(&b) = clause.peek() {
                    match b.var.cmp(&a.var) {
                        std::cmp::Ordering::Less => {
                            clause.next();
                        }
                        std::cmp::Ordering::Greater => continue 'cand,
                        std::cmp::Ordering::Equal => {
                            // Same variable: the atom survives only when the
                            // clause binds it to the same value (a different
                            // binding both fails the every-clause filter and
                            // is the owned path's conflict exclusion).
                            if b.value == a.value {
                                candidates[kept] = a;
                                kept += 1;
                            }
                            continue 'cand;
                        }
                    }
                }
                // Clause exhausted: the variable is absent — drop.
            }
            candidates.truncate(kept);
        }
        candidates
    }

    /// Removes the given variables from every clause — mirrors
    /// [`Dnf::strip_atoms`]. The id list is re-sorted (removing even a
    /// *shared* atom can reorder clauses lexicographically: a mid-sequence
    /// difference can become a prefix relation, e.g. `{¬x0,¬x1}` vs `{¬x1}`
    /// stripped of `x1` becomes `{¬x0}` vs `{}`) and the restriction is
    /// compacted into the pool.
    pub fn strip_vars(&self, arena: &mut LineageArena, vars: &[VarId]) -> DnfView {
        let mut mask = vars.to_vec();
        mask.sort_unstable();
        mask.dedup();
        DnfView::canonicalize(arena, self.ids.clone(), &mask)
    }

    /// Removes subsumed effective clauses — mirrors [`Dnf::remove_subsumed`]
    /// including its uniform-width fast path, returning `(view, removed)`.
    pub fn remove_subsumed(&self, arena: &LineageArena) -> (DnfView, usize) {
        let uniform_width = match self.ids.first() {
            Some(_) => {
                let w = self.clause_len(arena, 0);
                (1..self.len()).all(|i| self.clause_len(arena, i) == w)
            }
            None => true,
        };
        if uniform_width {
            return (self.clone(), 0);
        }
        let mut keep = vec![true; self.len()];
        for i in 0..self.len() {
            if !keep[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // `j` also indexes clauses
            for j in 0..self.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if subsumes_sorted(self.clause_slice(arena, i), self.clause_slice(arena, j)) {
                    keep[j] = false;
                }
            }
        }
        let removed = keep.iter().filter(|&&k| !k).count();
        let ids = self
            .ids
            .iter()
            .zip(&keep)
            .filter_map(|(&id, &k)| if k { Some(id) } else { None })
            .collect();
        (DnfView { ids }, removed)
    }
}

/// The value a *full* (unmasked) sorted clause binds `var` to, via binary
/// search over the sorted atom slice.
#[inline]
fn full_value_of(atoms: &[Atom], var: VarId) -> Option<u32> {
    atoms.binary_search_by_key(&var, |a| a.var).ok().map(|i| atoms[i].value)
}

/// Sorted-merge subset test over two sorted atom slices — mirrors
/// [`Clause::subsumes`].
fn subsumes_sorted(small: &[Atom], big: &[Atom]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut j = 0;
    'outer: for &a in small {
        while j < big.len() {
            match a.cmp(&big[j]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
            }
        }
        return false;
    }
    true
}

/// A borrowed lineage: either an owned [`Dnf`] or an arena [`DnfView`].
///
/// Algorithms that only *read* a formula (bucket bounds, variable choice,
/// Monte-Carlo sampling) are written once against this enum, so both
/// representations share one implementation and stay bit-identical by
/// construction.
#[derive(Debug, Clone, Copy)]
pub enum DnfRef<'a> {
    /// An owned, normalised DNF.
    Owned(&'a Dnf),
    /// An arena view.
    Arena(&'a LineageArena, &'a DnfView),
}

/// Iterator over one clause's atoms (both representations store clauses as
/// sorted atom slices).
#[derive(Debug, Clone)]
pub struct ClauseAtoms<'a>(std::slice::Iter<'a, Atom>);

impl Iterator for ClauseAtoms<'_> {
    type Item = Atom;

    #[inline]
    fn next(&mut self) -> Option<Atom> {
        self.0.next().copied()
    }
}

impl<'a> DnfRef<'a> {
    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        match self {
            DnfRef::Owned(d) => d.len(),
            DnfRef::Arena(_, v) => v.len(),
        }
    }

    /// `true` for the constant-`false` formula.
    pub fn is_empty(&self) -> bool {
        self.clause_count() == 0
    }

    /// `true` for the constant-`true` formula (some clause is empty).
    pub fn is_tautology(&self) -> bool {
        match self {
            DnfRef::Owned(d) => d.is_tautology(),
            DnfRef::Arena(a, v) => v.is_tautology(a),
        }
    }

    /// The atoms of clause `i`, sorted by variable.
    pub fn clause_atoms(&self, i: usize) -> ClauseAtoms<'a> {
        match self {
            DnfRef::Owned(d) => ClauseAtoms(d.clauses()[i].atoms().iter()),
            DnfRef::Arena(a, v) => v.clause(a, i),
        }
    }

    /// Length of clause `i`.
    pub fn clause_len(&self, i: usize) -> usize {
        match self {
            DnfRef::Owned(d) => d.clauses()[i].len(),
            DnfRef::Arena(a, v) => v.clause_len(a, i),
        }
    }

    /// The value clause `i` binds `var` to, if any.
    pub fn value_of(&self, i: usize, var: VarId) -> Option<u32> {
        match self {
            DnfRef::Owned(d) => d.clauses()[i].value_of(var),
            DnfRef::Arena(a, v) => v.value_of(a, i, var),
        }
    }

    /// `true` if clause `i` mentions `var`.
    pub fn mentions(&self, i: usize, var: VarId) -> bool {
        self.value_of(i, var).is_some()
    }

    /// Probability of clause `i` (product of atom marginals).
    pub fn clause_probability(&self, space: &ProbabilitySpace, i: usize) -> f64 {
        match self {
            DnfRef::Owned(d) => d.clauses()[i].probability(space),
            DnfRef::Arena(a, v) => v.clause_probability(a, space, i),
        }
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<VarId> {
        match self {
            DnfRef::Owned(d) => d.vars(),
            DnfRef::Arena(a, v) => v.vars(a),
        }
    }

    /// A most-frequently occurring variable with [`Dnf::most_frequent_var`]'s
    /// tie-breaking.
    pub fn most_frequent_var(&self) -> Option<VarId> {
        match self {
            DnfRef::Owned(d) => d.most_frequent_var(),
            DnfRef::Arena(a, v) => v.most_frequent_var(a),
        }
    }

    /// Clause indices with probabilities, sorted descending by probability
    /// (stable, so ties keep canonical clause order) — mirrors
    /// [`Dnf::clauses_by_probability_desc`].
    pub fn clauses_by_probability_desc(&self, space: &ProbabilitySpace) -> Vec<(usize, f64)> {
        let mut with_p: Vec<(usize, f64)> =
            (0..self.clause_count()).map(|i| (i, self.clause_probability(space, i))).collect();
        with_p.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        with_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRUE_VALUE;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    /// Asserts that a view and an owned DNF represent the same formula:
    /// same materialisation, same canonical hash.
    fn assert_matches(arena: &LineageArena, view: &DnfView, dnf: &Dnf) {
        assert_eq!(&view.to_dnf(arena), dnf, "view materialisation diverged");
        assert_eq!(view.hash(arena), dnf.canonical_hash(), "view hash diverged");
        assert_eq!(view.len(), dnf.len());
    }

    fn chain(vars: &[VarId]) -> Dnf {
        Dnf::from_clauses((0..vars.len() - 1).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])))
    }

    #[test]
    fn intern_roundtrips() {
        let (_, vars) = bool_space(&[0.5; 6]);
        let dnf = chain(&vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        assert_matches(&arena, &view, &dnf);
        assert_eq!(arena.num_clauses(), dnf.len());
        assert_eq!(arena.num_atoms(), dnf.size());
        assert_eq!(view.vars(&arena), dnf.vars());
        assert_eq!(view.size(&arena), dnf.size());
        assert_eq!(view.occurrence_counts(&arena), dnf.occurrence_counts());
        assert_eq!(view.most_frequent_var(&arena), dnf.most_frequent_var());
        assert_eq!(view.required_watermark(&arena), vars.last().unwrap().0 as u64 + 1);
    }

    #[test]
    fn cofactor_matches_owned_path() {
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6, 0.7]);
        let dnf = chain(&vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        for &var in &vars {
            for value in 0..s.domain_size(var) {
                let owned = dnf.cofactor(var, value);
                let v = view.cofactor(&mut arena, var, value);
                assert_matches(&arena, &v, &owned);
            }
        }
    }

    #[test]
    fn nested_cofactors_stay_canonical() {
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6, 0.7, 0.2]);
        let dnf = chain(&vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        // Walk a Shannon path two levels deep and compare against the owned
        // decomposition at every node.
        for (v1, c1) in view.shannon_cofactors(&mut arena, vars[1], &s) {
            let owned1 = dnf.cofactor(vars[1], v1);
            assert_matches(&arena, &c1, &owned1);
            for (v2, c2) in c1.shannon_cofactors(&mut arena, vars[3], &s) {
                let owned2 = owned1.cofactor(vars[3], v2);
                assert_matches(&arena, &c2, &owned2);
            }
        }
    }

    #[test]
    fn shannon_cofactors_match_owned_pairs() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.2, 0.3, 0.5]);
        let y = s.add_bool("y", 0.4);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 1)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(y)]),
        ]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let owned = dnf.shannon_cofactors(x, &s);
        let viewed = view.shannon_cofactors(&mut arena, x, &s);
        assert_eq!(owned.len(), viewed.len());
        for ((ov, od), (vv, vd)) in owned.iter().zip(&viewed) {
            assert_eq!(ov, vv);
            assert_matches(&arena, vd, od);
        }
    }

    #[test]
    fn components_match_owned_order() {
        let (_, vars) = bool_space(&[0.5; 7]);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
            Clause::from_bools(&[vars[3]]),
            Clause::from_bools(&[vars[4], vars[5]]),
            Clause::from_bools(&[vars[5], vars[6]]),
        ]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let owned = dnf.independent_components();
        let viewed = view.independent_components(&arena);
        assert_eq!(owned.len(), viewed.len());
        for (o, v) in owned.iter().zip(&viewed) {
            assert_matches(&arena, v, o);
        }
    }

    #[test]
    fn common_atoms_and_strip_match_owned() {
        let (_, vars) = bool_space(&[0.3, 0.5, 0.6, 0.9]);
        let (a, b, c, d) = (vars[0], vars[1], vars[2], vars[3]);
        let dnf =
            Dnf::from_clauses(vec![Clause::from_bools(&[a, b, c]), Clause::from_bools(&[a, b, d])]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let common = view.common_atoms(&arena);
        assert_eq!(common, dnf.common_atoms());
        let vars_only: Vec<VarId> = common.iter().map(|at| at.var).collect();
        let stripped = view.strip_vars(&mut arena, &vars_only);
        assert_matches(&arena, &stripped, &dnf.strip_atoms(&common));
    }

    #[test]
    fn remove_subsumed_matches_owned() {
        let (_, vars) = bool_space(&[0.5; 4]);
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0]]),
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let (reduced, removed) = view.remove_subsumed(&arena);
        assert_eq!(removed, 1);
        assert_matches(&arena, &reduced, &dnf.remove_subsumed());
        // Uniform width: fast path, nothing removed.
        let uni = chain(&vars);
        let root = arena.intern(&uni);
        let (same, removed) = root.remove_subsumed(&arena);
        assert_eq!(removed, 0);
        assert_matches(&arena, &same, &uni.remove_subsumed());
    }

    #[test]
    fn cofactor_dedups_aliased_clauses() {
        // {x, y} and {y} collapse onto one clause once x is assigned true.
        let (_s, vars) = bool_space(&[0.5, 0.5]);
        let (x, y) = (vars[0], vars[1]);
        let dnf = Dnf::from_clauses(vec![Clause::from_bools(&[x, y]), Clause::from_bools(&[y])]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let cof = view.cofactor(&mut arena, x, TRUE_VALUE);
        assert_eq!(cof.len(), 1);
        assert_matches(&arena, &cof, &dnf.cofactor(x, TRUE_VALUE));
        // Assigning x false drops the first clause.
        let cof = view.cofactor(&mut arena, x, 0);
        assert_matches(&arena, &cof, &dnf.cofactor(x, 0));
    }

    #[test]
    fn tautology_detection_through_masking() {
        let (_, vars) = bool_space(&[0.5, 0.5]);
        let dnf = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0]])]);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        assert!(!view.is_tautology(&arena));
        let cof = view.cofactor(&mut arena, vars[0], TRUE_VALUE);
        assert!(cof.is_tautology(&arena));
        assert!(cof.to_dnf(&arena).is_tautology());
        assert!(view.cofactor(&mut arena, vars[0], 0).is_empty());
    }

    #[test]
    fn dnf_ref_agrees_across_representations() {
        let (s, vars) = bool_space(&[0.3, 0.4, 0.5, 0.6]);
        let dnf = chain(&vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let owned = DnfRef::Owned(&dnf);
        let arenaref = DnfRef::Arena(&arena, &view);
        assert_eq!(owned.clause_count(), arenaref.clause_count());
        assert_eq!(owned.vars(), arenaref.vars());
        assert_eq!(owned.most_frequent_var(), arenaref.most_frequent_var());
        for i in 0..owned.clause_count() {
            assert_eq!(
                owned.clause_atoms(i).collect::<Vec<_>>(),
                arenaref.clause_atoms(i).collect::<Vec<_>>()
            );
            assert_eq!(
                owned.clause_probability(&s, i).to_bits(),
                arenaref.clause_probability(&s, i).to_bits()
            );
        }
        assert_eq!(owned.clauses_by_probability_desc(&s), arenaref.clauses_by_probability_desc(&s));
    }

    #[test]
    fn append_clauses_is_bit_identical_to_reintern() {
        let (_, vars) = bool_space(&[0.5; 8]);
        let base = chain(&vars[..5]);
        let mut arena = LineageArena::new();
        let mut view = arena.intern(&base);
        let extra = vec![
            Clause::from_bools(&[vars[5], vars[6]]),
            Clause::from_bools(&[vars[0], vars[7]]),
            // Duplicate of an existing clause: must be skipped.
            Clause::from_bools(&[vars[0], vars[1]]),
            // Inconsistent: must be skipped.
            Clause::from_atoms(vec![Atom::pos(vars[2]), Atom::neg(vars[2])]),
        ];
        let delta = arena.append_clauses(&mut view, &extra);
        assert_eq!(delta.len(), 2);
        let grown = Dnf::from_clauses(base.clauses().iter().chain(extra.iter()).cloned());
        assert_matches(&arena, &view, &grown);
        assert_eq!(delta.hash_after(), grown.canonical_hash());
        assert_eq!(delta.len_after(), grown.len());
        // Appending the same clauses again is a no-op.
        let again = arena.append_clauses(&mut view, &extra);
        assert!(again.is_empty());
        assert_eq!(again.len_after(), grown.len());
        assert_matches(&arena, &view, &grown);
    }

    /// Stream interning — clauses arriving one at a time, unsorted, with
    /// duplicates and inconsistencies mixed in — lands on exactly the view
    /// that collecting everything into `Dnf::from_clauses` would produce.
    #[test]
    fn intern_clause_stream_is_bit_identical_to_collected_intern() {
        let (_, vars) = bool_space(&[0.5; 8]);
        let stream = vec![
            Clause::from_bools(&[vars[5], vars[6]]),
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[7]]),
            // Duplicate content: must collapse.
            Clause::from_bools(&[vars[1], vars[0]]),
            // Inconsistent: must be dropped.
            Clause::from_atoms(vec![Atom::pos(vars[2]), Atom::neg(vars[2])]),
            Clause::from_bools(&[vars[3]]),
        ];
        let mut arena = LineageArena::new();
        let streamed = arena.intern_clause_stream(stream.iter().cloned());
        let collected = Dnf::from_clauses(stream);
        assert_matches(&arena, &streamed, &collected);
        assert_eq!(streamed.hash(&arena), collected.canonical_hash());
        // The empty stream is the constant-false view.
        let empty = arena.intern_clause_stream(std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn delta_between_detects_appends_and_destructive_edits() {
        let (_, vars) = bool_space(&[0.5; 6]);
        let old = chain(&vars[..4]);
        let extra = Clause::from_bools(&[vars[4], vars[5]]);
        let new = old.or(&Dnf::singleton(extra.clone()));
        let delta = LineageDelta::between(&old, &new).expect("pure append");
        assert_eq!(delta.clauses(), &[extra]);
        assert_eq!(delta.hash_after(), new.canonical_hash());
        assert_eq!(delta.len_after(), new.len());
        // Identity edit: empty delta.
        let noop = LineageDelta::between(&old, &old).expect("identity is an append");
        assert!(noop.is_empty());
        // Dropping a clause is destructive.
        let shrunk = Dnf::from_clauses(old.clauses()[1..].iter().cloned());
        assert!(LineageDelta::between(&old, &shrunk).is_none());
        // Replacing a clause is destructive too.
        let mut replaced: Vec<Clause> = old.clauses()[1..].to_vec();
        replaced.push(Clause::from_bools(&[vars[5]]));
        assert!(LineageDelta::between(&old, &Dnf::from_clauses(replaced)).is_none());
    }

    #[test]
    fn eval_matches_owned() {
        let (_, vars) = bool_space(&[0.5; 3]);
        let dnf = chain(&vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        assert_eq!(view.eval(&arena, &|_| TRUE_VALUE), dnf.eval(&|_| TRUE_VALUE));
        assert_eq!(view.eval(&arena, &|_| 0), dnf.eval(&|_| 0));
        let pick = |v: VarId| if v == vars[0] || v == vars[1] { 1 } else { 0 };
        assert_eq!(view.eval(&arena, &pick), dnf.eval(&pick));
    }
}
