//! Probability spaces: finite sets of independent discrete random variables.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Atom, EventError, Result, VarId, FALSE_VALUE, TRUE_VALUE};

/// Process-wide source of generation fingerprints. Every *invalidation* of
/// any [`ProbabilitySpace`] draws a fresh value, so generations are
/// monotonically increasing *and* globally unique: two spaces (other than
/// clones of each other, whose shared history is identical) never share a
/// generation, which lets caches keyed by generation validate entries
/// without knowing which space produced them.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Metadata stored for each random variable in a [`ProbabilitySpace`].
#[derive(Debug, Clone)]
pub struct VariableInfo {
    /// Human-readable name (used only in diagnostics and `Display` output).
    pub name: String,
    /// Probability of each domain value; `distribution.len()` is the domain
    /// size and the entries sum to 1 (up to floating-point rounding).
    pub distribution: Vec<f64>,
}

impl VariableInfo {
    /// Domain size of the variable.
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.distribution.len() as u32
    }
}

/// A finite probability distribution defined by a set of independent random
/// variables with finite domains (Section III of the paper).
///
/// Tuple-independent probabilistic databases create one *Boolean* variable per
/// tuple; block-independent-disjoint (BID) tables create one *multi-valued*
/// variable per block whose domain values select among the block's mutually
/// exclusive alternatives.
#[derive(Debug, Clone)]
pub struct ProbabilitySpace {
    vars: Vec<VariableInfo>,
    generation: u64,
    /// Guard against divergent clones silently sharing a generation.
    ///
    /// Appending a variable keeps the generation (append-only growth cannot
    /// change any existing variable, so cache entries stay warm — see
    /// [`ProbabilitySpace::watermark`]). But two *clones* of one space could
    /// each append a **different** variable at the same index while still
    /// sharing the generation, and a cache could then serve one clone's
    /// entry to the other. All clones of a space share this counter (the
    /// `Arc` travels through `Clone`), recording the highest variable count
    /// any of them has grown the shared generation to: an append that would
    /// re-use an already-claimed count is a divergent clone and is moved
    /// onto a fresh generation and a fresh counter (running cold, but
    /// sound). State is local to the clone family and freed with it.
    claimed: std::sync::Arc<AtomicU64>,
}

impl Default for ProbabilitySpace {
    fn default() -> Self {
        ProbabilitySpace::new()
    }
}

impl ProbabilitySpace {
    /// Creates an empty probability space.
    pub fn new() -> Self {
        ProbabilitySpace {
            vars: Vec::new(),
            generation: fresh_generation(),
            claimed: std::sync::Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an empty probability space with capacity for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        ProbabilitySpace {
            vars: Vec::with_capacity(n),
            generation: fresh_generation(),
            claimed: std::sync::Arc::new(AtomicU64::new(0)),
        }
    }

    /// The space's **generation fingerprint**: a monotonically increasing,
    /// globally unique value that changes on every *in-place* invalidation of
    /// the space ([`ProbabilitySpace::invalidate`], called by database layers
    /// when they rebuild tables around the space).
    ///
    /// **Append-only growth keeps the generation**: adding a variable cannot
    /// change any existing variable's distribution, so every derived quantity
    /// computed before the append is still correct. Caches therefore tag each
    /// entry with `(generation, watermark)` — the watermark being the
    /// variable count the entry's formula requires
    /// ([`ProbabilitySpace::watermark`]) — and validate both on lookup:
    /// entries stay warm across inserts, and only a genuine in-place change
    /// retires them. Divergent clones (two clones of one space each appending
    /// their own variables) are detected and moved onto fresh generations, so
    /// a cache can never serve one clone's entry to the other.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The space's **variable-count watermark**: the number of variables, i.e.
    /// one past the largest valid [`VarId`]. Append-only growth advances the
    /// watermark without touching the generation; a cache entry computed for
    /// a formula whose largest variable id is below the watermark remains
    /// valid under every later watermark of the same generation.
    #[inline]
    pub fn watermark(&self) -> u64 {
        self.vars.len() as u64
    }

    /// Forces a new generation, retiring every cache entry computed under the
    /// current one. Mutating methods call this automatically; callers only
    /// need it to invalidate caches after out-of-band changes (e.g. a
    /// database layer rebuilding tables around the space).
    pub fn invalidate(&mut self) {
        self.generation = fresh_generation();
        // A fresh generation starts a fresh clone family: clones of the old
        // state keep their own counter and can never collide with this one
        // (their generation differs).
        self.claimed = std::sync::Arc::new(AtomicU64::new(self.vars.len() as u64));
    }

    /// Restores a previously issued generation fingerprint — the **recovery
    /// epoch** path for durable storage layers.
    ///
    /// A write-ahead log that records the generation value at every
    /// invalidation point can, after a crash, rebuild a space whose variables
    /// match the pre-crash state exactly; calling this with the logged value
    /// then makes the recovered space indistinguishable from the original to
    /// every `(generation, watermark)`-tagged cache, so warm entries keep
    /// serving across the restart. The process-wide generation counter is
    /// advanced past the restored value, preserving the global-uniqueness
    /// guarantee: no *future* invalidation of any space can re-issue it.
    ///
    /// The caller asserts that this space's variables are byte-for-byte the
    /// state the generation was originally issued for (same names, same
    /// distributions, same order). Restoring a generation onto a *different*
    /// state would let caches serve entries for the wrong distribution —
    /// exactly what generations exist to prevent — so only replay paths that
    /// reconstruct the state exactly may call this.
    pub fn restore_generation(&mut self, generation: u64) {
        // `fetch_max` (not `store`): concurrent spaces may have drawn later
        // generations already, and the counter must never move backwards.
        NEXT_GENERATION.fetch_max(generation + 1, Ordering::SeqCst);
        self.generation = generation;
        // The recovered space starts its own clone family at the current
        // variable count, exactly like `invalidate` does: appends continue
        // from here, divergent clones are still detected.
        self.claimed = std::sync::Arc::new(AtomicU64::new(self.vars.len() as u64));
    }

    /// Number of variables in the space.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// `true` if the space holds no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Adds a Boolean random variable that is `true` with probability
    /// `p_true`, returning its id.
    ///
    /// Domain value [`TRUE_VALUE`] gets probability `p_true` and
    /// [`FALSE_VALUE`] gets `1 - p_true`.
    ///
    /// # Panics
    /// Panics if `p_true` is not within `(0, 1)` exclusive of 0 but inclusive
    /// of 1 being disallowed too — use [`ProbabilitySpace::try_add_bool`] for a
    /// fallible variant. Probabilities of exactly 0 or 1 are rejected because
    /// the paper requires `P(x = a) ∈ (0, 1]` with a full-support distribution;
    /// a certain tuple should simply carry no variable.
    pub fn add_bool(&mut self, name: impl Into<String>, p_true: f64) -> VarId {
        self.try_add_bool(name, p_true).expect("invalid Boolean probability")
    }

    /// Fallible variant of [`ProbabilitySpace::add_bool`].
    pub fn try_add_bool(&mut self, name: impl Into<String>, p_true: f64) -> Result<VarId> {
        if !(p_true > 0.0 && p_true < 1.0 && p_true.is_finite()) {
            return Err(EventError::InvalidProbability(format!(
                "Boolean variable probability must lie in (0,1), got {p_true}"
            )));
        }
        Ok(self.push(VariableInfo { name: name.into(), distribution: vec![1.0 - p_true, p_true] }))
    }

    /// Adds a multi-valued random variable with the given distribution over
    /// domain values `0..distribution.len()`, returning its id.
    ///
    /// The distribution must have at least two entries, every entry must be in
    /// `(0, 1]`, and the entries must sum to 1 within `1e-9`.
    pub fn try_add_discrete(
        &mut self,
        name: impl Into<String>,
        distribution: Vec<f64>,
    ) -> Result<VarId> {
        if distribution.len() < 2 {
            return Err(EventError::InvalidProbability(
                "a discrete variable needs at least two domain values".into(),
            ));
        }
        let mut sum = 0.0;
        for &p in &distribution {
            if !(p > 0.0 && p <= 1.0 && p.is_finite()) {
                return Err(EventError::InvalidProbability(format!(
                    "domain value probability must lie in (0,1], got {p}"
                )));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(EventError::InvalidProbability(format!(
                "distribution must sum to 1, got {sum}"
            )));
        }
        Ok(self.push(VariableInfo { name: name.into(), distribution }))
    }

    /// Panicking variant of [`ProbabilitySpace::try_add_discrete`].
    pub fn add_discrete(&mut self, name: impl Into<String>, distribution: Vec<f64>) -> VarId {
        self.try_add_discrete(name, distribution).expect("invalid discrete distribution")
    }

    fn push(&mut self, info: VariableInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        // Appends keep the generation (existing entries stay warm) unless a
        // divergent clone already claimed this variable index under the
        // shared generation — then this space moves to a fresh generation
        // and a fresh clone-family counter.
        let count = self.vars.len() as u64;
        let prev = self.claimed.fetch_max(count, Ordering::SeqCst);
        if prev >= count {
            self.generation = fresh_generation();
            self.claimed = std::sync::Arc::new(AtomicU64::new(count));
        }
        id
    }

    /// Returns the metadata of a variable, or an error if the id is unknown.
    pub fn info(&self, var: VarId) -> Result<&VariableInfo> {
        self.vars.get(var.index()).ok_or(EventError::UnknownVariable(var.0))
    }

    /// Domain size of `var`.
    ///
    /// # Panics
    /// Panics if the variable does not exist.
    #[inline]
    pub fn domain_size(&self, var: VarId) -> u32 {
        self.vars[var.index()].domain_size()
    }

    /// Probability `P(var = value)`.
    ///
    /// # Panics
    /// Panics if the variable does not exist or the value is out of range.
    #[inline]
    pub fn prob(&self, var: VarId, value: u32) -> f64 {
        self.vars[var.index()].distribution[value as usize]
    }

    /// Probability of an atomic event.
    #[inline]
    pub fn atom_prob(&self, atom: Atom) -> f64 {
        self.prob(atom.var, atom.value)
    }

    /// Checked probability lookup for an atomic event.
    pub fn try_atom_prob(&self, atom: Atom) -> Result<f64> {
        let info = self.info(atom.var)?;
        info.distribution.get(atom.value as usize).copied().ok_or(EventError::ValueOutOfDomain {
            var: atom.var.0,
            value: atom.value,
            domain_size: info.domain_size(),
        })
    }

    /// Probability that a Boolean variable is true.
    #[inline]
    pub fn prob_true(&self, var: VarId) -> f64 {
        self.prob(var, TRUE_VALUE)
    }

    /// Probability that a Boolean variable is false.
    #[inline]
    pub fn prob_false(&self, var: VarId) -> f64 {
        self.prob(var, FALSE_VALUE)
    }

    /// Iterates over all variable ids in the space.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterates over `(VarId, &VariableInfo)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VariableInfo)> {
        self.vars.iter().enumerate().map(|(i, info)| (VarId(i as u32), info))
    }

    /// Validates that an atom references an existing variable and an in-domain
    /// value.
    pub fn validate_atom(&self, atom: Atom) -> Result<()> {
        self.try_atom_prob(atom).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bool_assigns_probabilities() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        assert_eq!(s.num_vars(), 1);
        assert!((s.prob_true(x) - 0.3).abs() < 1e-12);
        assert!((s.prob_false(x) - 0.7).abs() < 1e-12);
        assert_eq!(s.domain_size(x), 2);
    }

    #[test]
    fn add_bool_rejects_degenerate_probabilities() {
        let mut s = ProbabilitySpace::new();
        assert!(s.try_add_bool("a", 0.0).is_err());
        assert!(s.try_add_bool("b", 1.0).is_err());
        assert!(s.try_add_bool("c", -0.5).is_err());
        assert!(s.try_add_bool("d", 1.5).is_err());
        assert!(s.try_add_bool("e", f64::NAN).is_err());
        assert_eq!(s.num_vars(), 0);
    }

    #[test]
    fn add_discrete_validates_distribution() {
        let mut s = ProbabilitySpace::new();
        assert!(s.try_add_discrete("x", vec![1.0]).is_err());
        assert!(s.try_add_discrete("x", vec![0.5, 0.6]).is_err());
        assert!(s.try_add_discrete("x", vec![0.5, 0.0, 0.5]).is_err());
        let x = s.try_add_discrete("x", vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(s.domain_size(x), 3);
        assert!((s.prob(x, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atom_prob_and_validation() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.25);
        assert!((s.atom_prob(Atom::pos(x)) - 0.25).abs() < 1e-12);
        assert!((s.atom_prob(Atom::neg(x)) - 0.75).abs() < 1e-12);
        assert!(s.validate_atom(Atom::pos(x)).is_ok());
        assert!(matches!(
            s.validate_atom(Atom::new(x, 7)),
            Err(EventError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            s.validate_atom(Atom::pos(VarId(99))),
            Err(EventError::UnknownVariable(99))
        ));
    }

    #[test]
    fn appends_advance_watermark_but_keep_generation() {
        let mut s = ProbabilitySpace::new();
        let g0 = s.generation();
        assert_eq!(s.watermark(), 0);
        s.add_bool("x", 0.5);
        assert_eq!(s.generation(), g0, "append-only growth must keep the generation");
        assert_eq!(s.watermark(), 1);
        s.add_discrete("y", vec![0.2, 0.8]);
        assert_eq!(s.generation(), g0);
        assert_eq!(s.watermark(), 2);
        s.invalidate();
        assert!(s.generation() > g0, "explicit invalidation must advance the generation");
        assert_eq!(s.watermark(), 2, "invalidation does not change the variable count");
        // Failed mutations leave the generation untouched.
        let g1 = s.generation();
        assert!(s.try_add_bool("bad", 2.0).is_err());
        assert_eq!(s.generation(), g1);
    }

    #[test]
    fn distinct_spaces_have_distinct_generations_but_clones_share() {
        let a = ProbabilitySpace::new();
        let b = ProbabilitySpace::new();
        assert_ne!(a.generation(), b.generation());
        let mut c = a.clone();
        assert_eq!(a.generation(), c.generation());
        c.invalidate();
        assert_ne!(a.generation(), c.generation());
    }

    /// Two clones of one space each appending their *own* variable at the
    /// same index must not keep sharing a generation — a cache entry computed
    /// under one would otherwise be served to the other.
    #[test]
    fn divergent_clones_are_forced_onto_fresh_generations() {
        let mut a = ProbabilitySpace::new();
        a.add_bool("base", 0.5);
        let mut b = a.clone();
        assert_eq!(a.generation(), b.generation());
        // First divergent appender keeps the shared generation …
        b.add_bool("b-only", 0.9);
        // … the second one is detected and re-generationed.
        a.add_bool("a-only", 0.1);
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a.watermark(), b.watermark());
        // A linear append history never loses its generation.
        let g = b.generation();
        b.add_bool("more", 0.4);
        assert_eq!(b.generation(), g);
    }

    /// The recovery-epoch path: a replayed space that reconstructs the exact
    /// pre-crash state restores the exact pre-crash generation, and the
    /// global counter still never re-issues it.
    #[test]
    fn restore_generation_revives_the_epoch_without_reissuing_it() {
        let mut original = ProbabilitySpace::new();
        original.add_bool("x", 0.3);
        original.invalidate();
        original.add_bool("y", 0.6);
        let g = original.generation();
        let w = original.watermark();
        // Replay: rebuild the same variables, then restore the logged epoch.
        let mut recovered = ProbabilitySpace::new();
        recovered.add_bool("x", 0.3);
        recovered.add_bool("y", 0.6);
        assert_ne!(recovered.generation(), g, "fresh spaces never share generations");
        recovered.restore_generation(g);
        assert_eq!(recovered.generation(), g);
        assert_eq!(recovered.watermark(), w);
        // Appends after recovery keep the restored generation (append-only
        // growth semantics are unchanged) …
        recovered.add_bool("z", 0.5);
        assert_eq!(recovered.generation(), g);
        // … and no later invalidation of any space can re-issue the restored
        // value: the global counter was advanced past it.
        let mut other = ProbabilitySpace::new();
        other.invalidate();
        assert!(other.generation() > g);
    }

    #[test]
    fn iteration_order_matches_insertion() {
        let mut s = ProbabilitySpace::new();
        let a = s.add_bool("a", 0.1);
        let b = s.add_bool("b", 0.2);
        let ids: Vec<_> = s.var_ids().collect();
        assert_eq!(ids, vec![a, b]);
        let names: Vec<_> = s.iter().map(|(_, i)| i.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
