//! Arbitrary positive ∧/∨ formulas and read-once (one-occurrence-form)
//! evaluation.
//!
//! The paper's tractability results (Section VI-B) hinge on the observation
//! that lineage of hierarchical queries is factorizable into *one-occurrence
//! form* (1OF), where every variable occurs exactly once; the probability of a
//! 1OF formula is computable in linear time. [`Formula`] provides the nested
//! ∧/∨ representation, conversion to DNF, and the linear-time probability
//! computation for read-once formulas.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Atom, Clause, Dnf, ProbabilitySpace, VarId};

/// A positive propositional formula over atomic events, with explicit ∧/∨
/// structure (not necessarily in DNF).
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// An atomic event `x = a`.
    Atom(Atom),
    /// Conjunction of sub-formulas (empty conjunction is `true`).
    And(Vec<Formula>),
    /// Disjunction of sub-formulas (empty disjunction is `false`).
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant `true` (empty conjunction).
    pub fn top() -> Self {
        Formula::And(Vec::new())
    }

    /// The constant `false` (empty disjunction).
    pub fn bottom() -> Self {
        Formula::Or(Vec::new())
    }

    /// A positive Boolean literal.
    pub fn var(v: VarId) -> Self {
        Formula::Atom(Atom::pos(v))
    }

    /// A negative Boolean literal (`x = false`).
    pub fn not_var(v: VarId) -> Self {
        Formula::Atom(Atom::neg(v))
    }

    /// Conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Conjunction of many formulas.
    pub fn and_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction of many formulas.
    pub fn or_all<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// The set of variables mentioned by the formula.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Formula::Atom(a) => {
                out.insert(a.var);
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// Counts variable occurrences; the formula is *read-once* (in
    /// one-occurrence form) iff every variable occurs exactly once.
    pub fn is_read_once(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.read_once_rec(&mut seen)
    }

    fn read_once_rec(&self, seen: &mut BTreeSet<VarId>) -> bool {
        match self {
            Formula::Atom(a) => seen.insert(a.var),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.read_once_rec(seen)),
        }
    }

    /// Evaluates the formula under a complete valuation.
    pub fn eval(&self, valuation: &dyn Fn(VarId) -> u32) -> bool {
        match self {
            Formula::Atom(a) => valuation(a.var) == a.value,
            Formula::And(fs) => fs.iter().all(|f| f.eval(valuation)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(valuation)),
        }
    }

    /// Exact probability of a *read-once* formula, computed in linear time by
    /// structural recursion: independent-and multiplies, independent-or
    /// combines as `1 - Π (1 - p)`.
    ///
    /// Returns `None` if the formula is not read-once — the recursion would
    /// not be sound because subformulas of an ∧/∨ node must be independent.
    pub fn read_once_probability(&self, space: &ProbabilitySpace) -> Option<f64> {
        if !self.is_read_once() {
            return None;
        }
        Some(self.read_once_probability_unchecked(space))
    }

    fn read_once_probability_unchecked(&self, space: &ProbabilitySpace) -> f64 {
        match self {
            Formula::Atom(a) => space.atom_prob(*a),
            Formula::And(fs) => {
                fs.iter().map(|f| f.read_once_probability_unchecked(space)).product()
            }
            Formula::Or(fs) => {
                1.0 - fs
                    .iter()
                    .map(|f| 1.0 - f.read_once_probability_unchecked(space))
                    .product::<f64>()
            }
        }
    }

    /// Converts the formula to DNF by distributing ∧ over ∨. The result can be
    /// exponentially larger than the input.
    pub fn to_dnf(&self) -> Dnf {
        match self {
            Formula::Atom(a) => Dnf::singleton(Clause::singleton(*a)),
            Formula::Or(fs) => {
                let mut out = Dnf::empty();
                for f in fs {
                    out = out.or(&f.to_dnf());
                }
                out
            }
            Formula::And(fs) => {
                let mut out = Dnf::tautology();
                for f in fs {
                    out = out.and(&f.to_dnf());
                }
                out
            }
        }
    }

    /// Number of atom occurrences in the formula.
    pub fn size(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|f| f.size()).sum(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊤");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊥");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    #[test]
    fn constants_and_constructors() {
        assert_eq!(Formula::top().size(), 0);
        assert_eq!(Formula::bottom().size(), 0);
        let (_, vars) = bool_space(&[0.5]);
        let f = Formula::var(vars[0]);
        assert_eq!(f.size(), 1);
        assert_eq!(f.vars().len(), 1);
    }

    #[test]
    fn and_or_flatten_nested_nodes() {
        let (_, vars) = bool_space(&[0.5; 4]);
        let f = Formula::var(vars[0])
            .and(Formula::var(vars[1]))
            .and(Formula::var(vars[2]))
            .or(Formula::var(vars[3]));
        // ((x0 ∧ x1 ∧ x2) ∨ x3)
        match &f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn read_once_detection() {
        let (_, vars) = bool_space(&[0.5; 3]);
        let ro = Formula::var(vars[0]).and(Formula::var(vars[1]).or(Formula::var(vars[2])));
        assert!(ro.is_read_once());
        let not_ro = Formula::var(vars[0]).and(Formula::var(vars[0]).or(Formula::var(vars[1])));
        assert!(!not_ro.is_read_once());
    }

    #[test]
    fn read_once_probability_matches_enumeration() {
        // x ∧ (y ∨ z) ∨ v factored form from Remark 5.3.
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let (x, y, z, v) = (vars[0], vars[1], vars[2], vars[3]);
        let f = Formula::var(x).and(Formula::var(y).or(Formula::var(z))).or(Formula::var(v));
        assert!(f.is_read_once());
        let p = f.read_once_probability(&s).unwrap();
        let dnf = f.to_dnf();
        let exact = dnf.exact_probability_enumeration(&s);
        assert!((p - exact).abs() < 1e-12);
        assert!((p - 0.8456).abs() < 1e-12);
    }

    #[test]
    fn read_once_probability_rejects_shared_variables() {
        let (s, vars) = bool_space(&[0.5, 0.5]);
        let f = Formula::var(vars[0]).and(Formula::var(vars[0]).or(Formula::var(vars[1])));
        assert!(f.read_once_probability(&s).is_none());
    }

    #[test]
    fn to_dnf_distributes_and_over_or() {
        let (s, vars) = bool_space(&[0.2, 0.3, 0.4, 0.5]);
        let f = (Formula::var(vars[0]).or(Formula::var(vars[1])))
            .and(Formula::var(vars[2]).or(Formula::var(vars[3])));
        let dnf = f.to_dnf();
        assert_eq!(dnf.len(), 4);
        // Semantics preserved.
        let valuation = |v: VarId| if v == vars[0] || v == vars[2] { 1 } else { 0 };
        assert_eq!(f.eval(&valuation), dnf.eval(&valuation));
        let p_dnf = dnf.exact_probability_enumeration(&s);
        let p_ro = f.read_once_probability(&s).unwrap();
        assert!((p_dnf - p_ro).abs() < 1e-12);
    }

    #[test]
    fn eval_handles_constants() {
        assert!(Formula::top().eval(&|_| 0));
        assert!(!Formula::bottom().eval(&|_| 0));
    }

    #[test]
    fn display_renders_structure() {
        let (_, vars) = bool_space(&[0.5, 0.5]);
        let f = Formula::var(vars[0]).and(Formula::not_var(vars[1]));
        let s = f.to_string();
        assert!(s.contains('∧'));
        assert!(s.contains('¬'));
        assert_eq!(Formula::top().to_string(), "⊤");
        assert_eq!(Formula::bottom().to_string(), "⊥");
    }

    #[test]
    fn to_dnf_of_constants() {
        assert!(Formula::bottom().to_dnf().is_empty());
        assert!(Formula::top().to_dnf().is_tautology());
    }
}
