//! DNF formulas: disjunctions of clauses, the lineage representation that
//! positive relational algebra produces on probabilistic databases.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::partition::{connected_components, UnionFind};
use crate::{Atom, Clause, ProbabilitySpace, VarId};

/// A DNF formula: a set of [`Clause`]s interpreted as their disjunction.
///
/// The paper (Section III) represents a DNF as a set of sets of atomic
/// formulas; `Dnf` mirrors that: inconsistent clauses are dropped on
/// construction and duplicate clauses are removed. The empty DNF is the
/// constant `false`; a DNF containing the empty clause is the constant `true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dnf {
    clauses: Vec<Clause>,
}

impl Dnf {
    /// The empty DNF (constant `false`).
    pub fn empty() -> Self {
        Dnf { clauses: Vec::new() }
    }

    /// The constant `true` DNF (a single empty clause).
    pub fn tautology() -> Self {
        Dnf { clauses: vec![Clause::empty()] }
    }

    /// Builds a DNF from clauses, dropping inconsistent clauses and duplicate
    /// clauses.
    pub fn from_clauses<I: IntoIterator<Item = Clause>>(clauses: I) -> Self {
        let mut cs: Vec<Clause> = clauses.into_iter().filter(|c| c.is_consistent()).collect();
        cs.sort_unstable();
        cs.dedup();
        Dnf { clauses: cs }
    }

    /// A DNF with a single clause.
    pub fn singleton(clause: Clause) -> Self {
        Dnf::from_clauses(std::iter::once(clause))
    }

    /// A DNF consisting of a single positive Boolean literal.
    pub fn literal(var: VarId) -> Self {
        Dnf::singleton(Clause::from_bools(&[var]))
    }

    /// Number of clauses.
    #[inline]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` for the empty DNF (constant `false`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// `true` if the DNF contains the empty clause, i.e. it is the constant
    /// `true`.
    pub fn is_tautology(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// `true` if every clause is a singleton atom.
    pub fn all_singletons(&self) -> bool {
        self.clauses.iter().all(|c| c.len() == 1)
    }

    /// The clauses of the DNF.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Consumes the DNF, returning its clauses.
    pub fn into_clauses(self) -> Vec<Clause> {
        self.clauses
    }

    /// The set of variables occurring in the DNF.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.clauses.iter().flat_map(|c| c.vars()).collect()
    }

    /// Number of distinct variables in the DNF.
    pub fn num_vars(&self) -> usize {
        self.vars().len()
    }

    /// Total number of atoms across all clauses (the "size" of the DNF used by
    /// the paper's complexity statements).
    pub fn size(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// Counts, for each variable, the number of clauses it occurs in.
    pub fn occurrence_counts(&self) -> BTreeMap<VarId, usize> {
        let mut counts = BTreeMap::new();
        for c in &self.clauses {
            for v in c.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Returns a variable occurring in the largest number of clauses, the
    /// paper's fallback choice for Shannon expansion ("we choose a variable
    /// that occurs most frequently in the DNF").
    pub fn most_frequent_var(&self) -> Option<VarId> {
        let counts = self.occurrence_counts();
        counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(v, _)| v)
    }

    /// Disjunction of two DNFs (set union of clauses).
    pub fn or(&self, other: &Dnf) -> Dnf {
        Dnf::from_clauses(self.clauses.iter().chain(other.clauses.iter()).cloned())
    }

    /// Conjunction of two DNFs (pairwise clause conjunction, distributing ∧
    /// over ∨). Inconsistent combinations are dropped.
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                out.push(a.and(b));
            }
        }
        Dnf::from_clauses(out)
    }

    /// Removes subsumed clauses: if `s ⊂ t` then `t` is redundant and removed
    /// (step 1 of the compilation algorithm in Figure 1 of the paper).
    ///
    /// Runs in `O(n² · m)` for `n` clauses of width `m`; the width is bounded
    /// by the number of joined relations for query lineage, so this is cheap
    /// in practice.
    pub fn remove_subsumed(&self) -> Dnf {
        // Fast path: clauses are deduplicated, so equal-length clauses can
        // never strictly subsume each other. Lineage of a fixed join query
        // has uniform clause width, making this the common case.
        let uniform_width = self
            .clauses
            .first()
            .map(|c| self.clauses.iter().all(|d| d.len() == c.len()))
            .unwrap_or(true);
        if uniform_width {
            return self.clone();
        }
        let mut keep = vec![true; self.clauses.len()];
        for i in 0..self.clauses.len() {
            if !keep[i] {
                continue;
            }
            for (j, clause) in self.clauses.iter().enumerate() {
                if i == j || !keep[j] {
                    continue;
                }
                // clauses[i] subsumes clauses[j] (i is a subset of j): drop j.
                // Ties (equal clauses) cannot occur because construction
                // deduplicates.
                if self.clauses[i].subsumes(clause) {
                    keep[j] = false;
                }
            }
        }
        Dnf {
            clauses: self
                .clauses
                .iter()
                .zip(keep)
                .filter_map(|(c, k)| if k { Some(c.clone()) } else { None })
                .collect(),
        }
    }

    /// Number of clauses that would be removed by [`Dnf::remove_subsumed`].
    pub fn count_subsumed(&self) -> usize {
        self.len() - self.remove_subsumed().len()
    }

    /// The cofactor `Φ|x=a` of the Shannon expansion (Section IV): clauses
    /// conflicting with `x = a` are dropped and the atom `x = a` is removed
    /// from the remaining clauses.
    pub fn cofactor(&self, var: VarId, value: u32) -> Dnf {
        Dnf::from_clauses(self.clauses.iter().filter_map(|c| c.restrict(var, value)))
    }

    /// Restricts the DNF under a full assignment of `var`, i.e. returns the
    /// cofactors for every domain value that yields a non-empty DNF, as
    /// `(value, cofactor)` pairs.
    pub fn shannon_cofactors(&self, var: VarId, space: &ProbabilitySpace) -> Vec<(u32, Dnf)> {
        let mut out = Vec::new();
        for value in 0..space.domain_size(var) {
            let cof = self.cofactor(var, value);
            if !cof.is_empty() {
                out.push((value, cof));
            }
        }
        out
    }

    /// Partitions the clauses into independent groups: the connected
    /// components of the variable co-occurrence graph (the independent-or
    /// decomposition ⊗ of the paper, computed with union-find instead of the
    /// paper's Tarjan formulation — both are linear up to α(n)).
    ///
    /// Returns one `Dnf` per component. A single component means no ⊗
    /// decomposition applies.
    pub fn independent_components(&self) -> Vec<Dnf> {
        if self.clauses.len() <= 1 {
            return vec![self.clone()];
        }
        let groups = connected_components(&self.clauses);
        if groups.len() <= 1 {
            return vec![self.clone()];
        }
        groups
            .into_iter()
            .map(|idxs| Dnf {
                clauses: idxs.into_iter().map(|i| self.clauses[i].clone()).collect(),
            })
            .collect()
    }

    /// Checks whether two DNFs are independent (share no variable).
    pub fn independent_of(&self, other: &Dnf) -> bool {
        let mine = self.vars();
        other.vars().is_disjoint(&mine)
    }

    /// Groups clauses by the value they assign to `var`, returned as
    /// `(value, clauses)` pairs sorted ascending by value; clauses not
    /// mentioning `var` are returned separately.
    ///
    /// This is the raw material of the Shannon expansion in Figure 1: the
    /// cofactor for `x = a` is the union of the group for `a` (with the atom
    /// removed) and the unconstrained remainder `T`. It sits on the
    /// Shannon-variable-selection path (one call per candidate variable), so
    /// the grouping is a sorted small-vec insertion — domain sizes are tiny
    /// (2 for Boolean lineage) and a `BTreeMap` costs an allocation per node
    /// plus pointer chasing for no benefit at that size.
    pub fn group_by_var(&self, var: VarId) -> (Vec<(u32, Vec<Clause>)>, Vec<Clause>) {
        let mut groups: Vec<(u32, Vec<Clause>)> = Vec::new();
        let mut rest = Vec::new();
        for c in &self.clauses {
            match c.value_of(var) {
                Some(v) => match groups.binary_search_by_key(&v, |g| g.0) {
                    Ok(i) => groups[i].1.push(c.clone()),
                    Err(i) => groups.insert(i, (v, vec![c.clone()])),
                },
                None => rest.push(c.clone()),
            }
        }
        (groups, rest)
    }

    /// One past the largest variable id mentioned by the DNF — the smallest
    /// [`ProbabilitySpace`] watermark under which every variable of this
    /// formula exists (`0` for constant formulas). Watermark-scoped caches
    /// tag entries with this value; see
    /// [`ProbabilitySpace::watermark`].
    pub fn required_watermark(&self) -> u64 {
        self.clauses
            .iter()
            .filter_map(|c| c.atoms().last())
            .map(|a| a.var.0 as u64 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the DNF under a complete valuation given as a function from
    /// variables to values.
    pub fn eval(&self, valuation: &dyn Fn(VarId) -> u32) -> bool {
        self.clauses.iter().any(|c| c.atoms().iter().all(|a| valuation(a.var) == a.value))
    }

    /// Exact probability by brute-force enumeration of the possible worlds
    /// over the variables of the DNF.
    ///
    /// Exponential in the number of variables — this is the reference
    /// semantics used in tests, not an algorithm to run on real lineage.
    pub fn exact_probability_enumeration(&self, space: &ProbabilitySpace) -> f64 {
        crate::world::enumerate_probability(self, space)
    }

    /// Sum of clause marginal probabilities (used both as a trivial upper
    /// bound and as the normalising constant of the Karp-Luby estimator).
    pub fn clause_probability_sum(&self, space: &ProbabilitySpace) -> f64 {
        self.clauses.iter().map(|c| c.probability(space)).sum()
    }

    /// Returns clauses sorted descending by marginal probability, the order
    /// the paper's bucket heuristic uses to improve the lower bound
    /// (Section V-A).
    pub fn clauses_by_probability_desc(&self, space: &ProbabilitySpace) -> Vec<(usize, f64)> {
        let mut with_p: Vec<(usize, f64)> =
            self.clauses.iter().enumerate().map(|(i, c)| (i, c.probability(space))).collect();
        with_p.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        with_p
    }

    /// Returns the set of atoms shared by *every* clause of the DNF.
    ///
    /// Such atoms can be factored out with an independent-and (⊙) node:
    /// `Φ ≡ (a1 ∧ … ∧ ak) ⊙ Φ'` where `Φ'` is the DNF with those atoms
    /// removed. (A variable occurring in every clause with the same value
    /// cannot occur anywhere else, so the two factors are independent.)
    pub fn common_atoms(&self) -> Vec<Atom> {
        let Some(first) = self.clauses.first() else { return Vec::new() };
        first
            .atoms()
            .iter()
            .copied()
            .filter(|a| self.clauses.iter().all(|c| c.value_of(a.var) == Some(a.value)))
            // A shared variable bound to *different* values in different
            // clauses must not be factored out.
            .filter(|a| self.clauses.iter().all(|c| !c.atoms().iter().any(|b| b.conflicts_with(a))))
            .collect()
    }

    /// Removes the given atoms from every clause (used together with
    /// [`Dnf::common_atoms`]).
    pub fn strip_atoms(&self, atoms: &[Atom]) -> Dnf {
        let vars: BTreeSet<VarId> = atoms.iter().map(|a| a.var).collect();
        Dnf::from_clauses(self.clauses.iter().map(|c| c.project_out(&|v: VarId| vars.contains(&v))))
    }

    /// Builds the union-find structure over the DNF's variables where
    /// variables co-occurring in a clause are merged. Exposed for reuse by
    /// callers that need the component structure itself.
    pub fn variable_union_find(&self) -> UnionFind<VarId> {
        let mut uf = UnionFind::new();
        for c in &self.clauses {
            let vars: Vec<VarId> = c.vars().collect();
            for w in vars.windows(2) {
                uf.union(w[0], w[1]);
            }
            if let Some(&first) = vars.first() {
                uf.insert(first);
            }
        }
        uf
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if c.len() > 1 {
                write!(f, "({c})")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

impl AsRef<Dnf> for Dnf {
    fn as_ref(&self) -> &Dnf {
        self
    }
}

impl FromIterator<Clause> for Dnf {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        Dnf::from_clauses(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, TRUE_VALUE};

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn space_with_bools(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    #[test]
    fn construction_drops_inconsistent_and_duplicate_clauses() {
        let bad = Clause::from_atoms(vec![Atom::pos(v(0)), Atom::neg(v(0))]);
        let good = Clause::from_bools(&[v(1)]);
        let dnf = Dnf::from_clauses(vec![bad, good.clone(), good.clone()]);
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.clauses()[0], good);
    }

    #[test]
    fn constants() {
        assert!(Dnf::empty().is_empty());
        assert!(!Dnf::empty().is_tautology());
        assert!(Dnf::tautology().is_tautology());
        let (s, _) = space_with_bools(&[]);
        assert_eq!(Dnf::empty().exact_probability_enumeration(&s), 0.0);
        assert_eq!(Dnf::tautology().exact_probability_enumeration(&s), 1.0);
    }

    #[test]
    fn example_5_2_exact_probability() {
        // Φ = (x ∧ y) ∨ (x ∧ z) ∨ v with P(x)=0.3, P(y)=0.2, P(z)=0.7, P(v)=0.8.
        let (s, vars) = space_with_bools(&[0.3, 0.2, 0.7, 0.8]);
        let (x, y, z, vv) = (vars[0], vars[1], vars[2], vars[3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[x, y]),
            Clause::from_bools(&[x, z]),
            Clause::from_bools(&[vv]),
        ]);
        let p = phi.exact_probability_enumeration(&s);
        assert!((p - 0.8456).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn subsumption_removal_matches_figure_1_step_1() {
        // {x} subsumes {x, y}; {u, v} is untouched.
        let dnf = Dnf::from_clauses(vec![
            Clause::from_bools(&[v(0)]),
            Clause::from_bools(&[v(0), v(1)]),
            Clause::from_bools(&[v(2), v(3)]),
        ]);
        let reduced = dnf.remove_subsumed();
        assert_eq!(reduced.len(), 2);
        assert_eq!(dnf.count_subsumed(), 1);
        // Subsumption preserves semantics.
        let (s, _) = space_with_bools(&[0.5, 0.5, 0.5, 0.5]);
        assert!(
            (dnf.exact_probability_enumeration(&s) - reduced.exact_probability_enumeration(&s))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn cofactor_matches_shannon_expansion_definition() {
        // Φ = {x=1} ∨ {x=2, y} over a ternary variable x.
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.2, 0.3, 0.5]);
        let y = s.add_bool("y", 0.4);
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 1)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(y)]),
        ]);
        // Φ|x=1 = {∅} (tautology), Φ|x=2 = {y}, Φ|x=0 = ∅.
        assert!(phi.cofactor(x, 1).is_tautology());
        assert_eq!(phi.cofactor(x, 2), Dnf::literal(y));
        assert!(phi.cofactor(x, 0).is_empty());
        let cofs = phi.shannon_cofactors(x, &s);
        assert_eq!(cofs.len(), 2);
        assert_eq!(cofs[0].0, 1);
        assert_eq!(cofs[1].0, 2);
    }

    #[test]
    fn cofactor_keeps_unconstrained_clauses() {
        let (_, vars) = space_with_bools(&[0.5, 0.5, 0.5]);
        let (x, y, z) = (vars[0], vars[1], vars[2]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[x, y]), Clause::from_bools(&[z])]);
        let cof = phi.cofactor(x, TRUE_VALUE);
        assert_eq!(
            cof,
            Dnf::from_clauses(vec![Clause::from_bools(&[y]), Clause::from_bools(&[z])])
        );
    }

    #[test]
    fn independent_components_splits_disjoint_variable_sets() {
        let (_, vars) = space_with_bools(&[0.5; 6]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
            Clause::from_bools(&[vars[3]]),
            Clause::from_bools(&[vars[4], vars[5]]),
        ]);
        let comps = phi.independent_components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        // Components are pairwise independent.
        for i in 0..comps.len() {
            for j in 0..comps.len() {
                if i != j {
                    assert!(comps[i].independent_of(&comps[j]));
                }
            }
        }
    }

    #[test]
    fn independent_components_single_component() {
        let (_, vars) = space_with_bools(&[0.5; 3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[1], vars[2]]),
        ]);
        assert_eq!(phi.independent_components().len(), 1);
    }

    #[test]
    fn most_frequent_var_breaks_ties_deterministically() {
        let (_, vars) = space_with_bools(&[0.5; 3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[2]]),
        ]);
        // vars[0] and vars[2] both occur twice; the smaller id wins.
        assert_eq!(phi.most_frequent_var(), Some(vars[0]));
        assert_eq!(Dnf::empty().most_frequent_var(), None);
    }

    #[test]
    fn common_atoms_factoring_is_sound() {
        let (s, vars) = space_with_bools(&[0.3, 0.5, 0.6, 0.9]);
        let (a, b, c, d) = (vars[0], vars[1], vars[2], vars[3]);
        // Φ = a∧b∧c ∨ a∧b∧d : common atoms {a, b}.
        let phi =
            Dnf::from_clauses(vec![Clause::from_bools(&[a, b, c]), Clause::from_bools(&[a, b, d])]);
        let common = phi.common_atoms();
        assert_eq!(common, vec![Atom::pos(a), Atom::pos(b)]);
        let rest = phi.strip_atoms(&common);
        assert_eq!(
            rest,
            Dnf::from_clauses(vec![Clause::from_bools(&[c]), Clause::from_bools(&[d])])
        );
        // P(Φ) = P(a)·P(b)·P(c ∨ d)
        let expected = 0.3 * 0.5 * (1.0 - (1.0 - 0.6) * (1.0 - 0.9));
        assert!((phi.exact_probability_enumeration(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn common_atoms_ignores_conflicting_bindings() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.25, 0.25, 0.5]);
        let y = s.add_bool("y", 0.5);
        let z = s.add_bool("z", 0.5);
        // x occurs in every clause but with different values: cannot factor.
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::new(x, 1), Atom::pos(y)]),
            Clause::from_atoms(vec![Atom::new(x, 2), Atom::pos(z)]),
        ]);
        assert!(phi.common_atoms().is_empty());
    }

    #[test]
    fn and_or_composition_match_semantics() {
        let (s, vars) = space_with_bools(&[0.4, 0.7, 0.2]);
        let a = Dnf::literal(vars[0]);
        let b = Dnf::literal(vars[1]);
        let c = Dnf::literal(vars[2]);
        let ab_or_c = a.and(&b).or(&c);
        let expected = {
            let pab = 0.4 * 0.7;
            pab + 0.2 - pab * 0.2
        };
        assert!((ab_or_c.exact_probability_enumeration(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn group_by_var_partitions_clauses() {
        let (_, vars) = space_with_bools(&[0.5; 3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[2]]),
        ]);
        let (groups, rest) = phi.group_by_var(vars[0]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, TRUE_VALUE);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn eval_under_valuation() {
        let (_, vars) = space_with_bools(&[0.5, 0.5]);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[vars[0], vars[1]])]);
        assert!(phi.eval(&|_| TRUE_VALUE));
        assert!(!phi.eval(&|v: VarId| if v == vars[0] { 0 } else { 1 }));
        assert!(!Dnf::empty().eval(&|_| 1));
        assert!(Dnf::tautology().eval(&|_| 0));
    }

    #[test]
    fn size_and_occurrence_statistics() {
        let (_, vars) = space_with_bools(&[0.5; 3]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
        ]);
        assert_eq!(phi.size(), 4);
        assert_eq!(phi.num_vars(), 3);
        let counts = phi.occurrence_counts();
        assert_eq!(counts[&vars[0]], 2);
        assert_eq!(counts[&vars[1]], 1);
    }

    #[test]
    fn display_renders_disjunction() {
        let (_, vars) = space_with_bools(&[0.5, 0.5]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0]]),
        ]);
        let s = phi.to_string();
        assert!(s.contains('∨'));
        assert_eq!(Dnf::empty().to_string(), "⊥");
    }
}
