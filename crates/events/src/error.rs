//! Error type shared by the event-algebra crate.

use std::fmt;

/// Errors raised when constructing or manipulating events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// A probability was outside the open interval `(0, 1]` or a distribution
    /// did not sum to one.
    InvalidProbability(String),
    /// A variable id referenced a variable that does not exist in the
    /// [`crate::ProbabilitySpace`].
    UnknownVariable(u32),
    /// A domain value was outside the variable's domain.
    ValueOutOfDomain {
        /// The offending variable.
        var: u32,
        /// The offending value.
        value: u32,
        /// The size of the variable's domain.
        domain_size: u32,
    },
    /// An operation that requires a consistent clause was given an
    /// inconsistent one (two atoms binding the same variable to different
    /// values).
    InconsistentClause(String),
    /// A structural precondition was violated (e.g. a factorization check
    /// failed where a product was required).
    Structure(String),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidProbability(msg) => write!(f, "invalid probability: {msg}"),
            EventError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            EventError::ValueOutOfDomain { var, value, domain_size } => write!(
                f,
                "value {value} out of domain for variable {var} (domain size {domain_size})"
            ),
            EventError::InconsistentClause(msg) => write!(f, "inconsistent clause: {msg}"),
            EventError::Structure(msg) => write!(f, "structural error: {msg}"),
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EventError::InvalidProbability("p = 1.5".into());
        assert!(e.to_string().contains("1.5"));
        let e = EventError::UnknownVariable(7);
        assert!(e.to_string().contains('7'));
        let e = EventError::ValueOutOfDomain { var: 1, value: 9, domain_size: 2 };
        assert!(e.to_string().contains("out of domain"));
        let e = EventError::InconsistentClause("x=1 and x=2".into());
        assert!(e.to_string().contains("inconsistent"));
        let e = EventError::Structure("not a product".into());
        assert!(e.to_string().contains("structural"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&EventError::UnknownVariable(0));
    }
}
