//! Possible worlds: complete valuations of the random variables and the
//! brute-force reference semantics of probability.

use std::collections::BTreeMap;

use crate::{Dnf, ProbabilitySpace, VarId};

/// A complete assignment of domain values to a set of random variables — one
/// possible world of the probability space restricted to those variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Valuation {
    assignment: BTreeMap<VarId, u32>,
}

impl Valuation {
    /// Creates an empty valuation.
    pub fn new() -> Self {
        Valuation { assignment: BTreeMap::new() }
    }

    /// Creates a valuation from `(variable, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (VarId, u32)>>(pairs: I) -> Self {
        Valuation { assignment: pairs.into_iter().collect() }
    }

    /// Assigns `value` to `var` (overwriting any previous assignment).
    pub fn assign(&mut self, var: VarId, value: u32) {
        self.assignment.insert(var, value);
    }

    /// The value assigned to `var`, if any.
    pub fn value(&self, var: VarId) -> Option<u32> {
        self.assignment.get(&var).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Probability of this world: the product of the marginals of the
    /// assigned values (variables are independent).
    pub fn probability(&self, space: &ProbabilitySpace) -> f64 {
        self.assignment.iter().map(|(&v, &a)| space.prob(v, a)).product()
    }

    /// Evaluates whether the valuation satisfies the DNF. Variables of the DNF
    /// that are not assigned make the clause unsatisfied (the valuation is
    /// expected to cover all variables of the formula).
    pub fn satisfies(&self, dnf: &Dnf) -> bool {
        dnf.clauses().iter().any(|c| c.atoms().iter().all(|a| self.value(a.var) == Some(a.value)))
    }

    /// Iterates over the `(variable, value)` pairs of the valuation.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u32)> + '_ {
        self.assignment.iter().map(|(&v, &a)| (v, a))
    }
}

impl Default for Valuation {
    fn default() -> Self {
        Valuation::new()
    }
}

/// Enumerates all possible worlds over the given variables, calling `visit`
/// with each world and its probability.
///
/// The number of worlds is the product of the domain sizes — exponential.
/// This is the reference semantics used by the test-suite; algorithms under
/// test must agree with it on small instances.
pub fn enumerate_worlds<F: FnMut(&Valuation, f64)>(
    vars: &[VarId],
    space: &ProbabilitySpace,
    mut visit: F,
) {
    let mut valuation = Valuation::new();
    fn rec<F: FnMut(&Valuation, f64)>(
        vars: &[VarId],
        idx: usize,
        space: &ProbabilitySpace,
        valuation: &mut Valuation,
        prob: f64,
        visit: &mut F,
    ) {
        if idx == vars.len() {
            visit(valuation, prob);
            return;
        }
        let var = vars[idx];
        for value in 0..space.domain_size(var) {
            valuation.assign(var, value);
            rec(vars, idx + 1, space, valuation, prob * space.prob(var, value), visit);
        }
        // No need to un-assign: the next iteration overwrites, and the caller
        // sees a fully-assigned valuation only at the leaves.
    }
    rec(vars, 0, space, &mut valuation, 1.0, &mut visit);
}

/// Exact probability of a DNF by brute-force enumeration of the worlds over
/// the DNF's variables.
pub(crate) fn enumerate_probability(dnf: &Dnf, space: &ProbabilitySpace) -> f64 {
    if dnf.is_empty() {
        return 0.0;
    }
    if dnf.is_tautology() {
        return 1.0;
    }
    let vars: Vec<VarId> = dnf.vars().into_iter().collect();
    let mut total = 0.0;
    enumerate_worlds(&vars, space, |world, p| {
        if world.satisfies(dnf) {
            total += p;
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clause, TRUE_VALUE};

    #[test]
    fn valuation_assignment_and_probability() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        let y = s.add_bool("y", 0.6);
        let mut w = Valuation::new();
        assert!(w.is_empty());
        w.assign(x, TRUE_VALUE);
        w.assign(y, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.value(x), Some(1));
        assert_eq!(w.value(y), Some(0));
        assert!((w.probability(&s) - 0.3 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn valuation_satisfaction() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        let y = s.add_bool("y", 0.6);
        let phi = Dnf::from_clauses(vec![Clause::from_bools(&[x, y])]);
        let w = Valuation::from_pairs(vec![(x, 1), (y, 1)]);
        assert!(w.satisfies(&phi));
        let w2 = Valuation::from_pairs(vec![(x, 1), (y, 0)]);
        assert!(!w2.satisfies(&phi));
        // Unassigned variable: clause unsatisfied.
        let w3 = Valuation::from_pairs(vec![(x, 1)]);
        assert!(!w3.satisfies(&phi));
    }

    #[test]
    fn enumeration_visits_all_worlds_with_total_probability_one() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        let y = s.add_discrete("y", vec![0.2, 0.3, 0.5]);
        let mut count = 0;
        let mut total = 0.0;
        enumerate_worlds(&[x, y], &s, |_, p| {
            count += 1;
            total += p;
        });
        assert_eq!(count, 6);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_probability_of_simple_formulas() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.3);
        let y = s.add_bool("y", 0.6);
        // x ∨ y
        let or = Dnf::from_clauses(vec![Clause::from_bools(&[x]), Clause::from_bools(&[y])]);
        assert!((or.exact_probability_enumeration(&s) - (0.3 + 0.6 - 0.18)).abs() < 1e-12);
        // x ∧ y
        let and = Dnf::from_clauses(vec![Clause::from_bools(&[x, y])]);
        assert!((and.exact_probability_enumeration(&s) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn example_4_1_probability() {
        // (x ∨ y) ∧ ((z ∧ u) ∨ (¬z ∧ v)) from Example 4.1.
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool("x", 0.4);
        let y = s.add_bool("y", 0.5);
        let z = s.add_bool("z", 0.6);
        let u = s.add_bool("u", 0.7);
        let v = s.add_bool("v", 0.8);
        let left = Dnf::from_clauses(vec![Clause::from_bools(&[x]), Clause::from_bools(&[y])]);
        let right = Dnf::from_clauses(vec![
            Clause::from_bools(&[z, u]),
            Clause::from_atoms(vec![crate::Atom::neg(z), crate::Atom::pos(v)]),
        ]);
        let phi = left.and(&right);
        let expected = (1.0 - (1.0 - 0.4) * (1.0 - 0.5)) * (0.6 * 0.7 + 0.4 * 0.8);
        assert!((phi.exact_probability_enumeration(&s) - expected).abs() < 1e-12);
    }
}
