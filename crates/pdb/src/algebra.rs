//! Positive relational algebra over lineage-annotated relations.
//!
//! Each operator manipulates the lineage so that an output tuple's formula is
//! satisfied in exactly the possible worlds where the tuple is in the query
//! answer: selection keeps lineage, projection disjunctions the lineage of
//! collapsing duplicates, join conjoins lineage, union disjunctions across
//! inputs. Confidence computation then reduces to computing the probability
//! of the output lineage (the job of the `dtree` and `montecarlo` crates).

use std::collections::BTreeMap;

use events::Dnf;

use crate::relation::{AnnotatedTuple, Relation, Schema};
use crate::value::Value;

/// Selection σ: keeps the tuples satisfying the predicate; lineage is
/// unchanged.
pub fn select(input: &Relation, predicate: &dyn Fn(&[Value]) -> bool) -> Relation {
    let mut out = Relation::empty(input.schema.clone());
    for t in &input.tuples {
        if predicate(&t.values) {
            out.push(t.clone());
        }
    }
    out
}

/// Projection π: keeps the given columns (by index); duplicate output tuples
/// are merged and their lineages disjoined.
pub fn project(input: &Relation, columns: &[usize], name: &str) -> Relation {
    let schema = Schema {
        name: name.to_owned(),
        columns: columns.iter().map(|&i| input.schema.columns[i].clone()).collect(),
    };
    let mut grouped: BTreeMap<Vec<Value>, Dnf> = BTreeMap::new();
    for t in &input.tuples {
        let key: Vec<Value> = columns.iter().map(|&i| t.values[i].clone()).collect();
        grouped
            .entry(key)
            .and_modify(|lineage| *lineage = lineage.or(&t.lineage))
            .or_insert_with(|| t.lineage.clone());
    }
    let mut out = Relation::empty(schema);
    for (values, lineage) in grouped {
        out.push(AnnotatedTuple::new(values, lineage));
    }
    out
}

/// Natural equi-join on explicit column pairs `(left_col, right_col)`; the
/// output contains all left columns followed by all right columns, and the
/// lineage of an output tuple is the conjunction of the input lineages.
pub fn join(left: &Relation, right: &Relation, on: &[(usize, usize)], name: &str) -> Relation {
    theta_join(left, right, &|l, r| on.iter().all(|&(lc, rc)| l[lc] == r[rc]), name)
}

/// Theta-join with an arbitrary predicate over the pair of tuples (used for
/// the inequality joins of IQ queries).
pub fn theta_join(
    left: &Relation,
    right: &Relation,
    predicate: &dyn Fn(&[Value], &[Value]) -> bool,
    name: &str,
) -> Relation {
    let mut columns: Vec<String> =
        left.schema.columns.iter().map(|c| format!("{}.{}", left.schema.name, c)).collect();
    columns.extend(right.schema.columns.iter().map(|c| format!("{}.{}", right.schema.name, c)));
    let schema = Schema { name: name.to_owned(), columns };
    let mut out = Relation::empty(schema);
    for l in &left.tuples {
        for r in &right.tuples {
            if predicate(&l.values, &r.values) {
                let mut values = l.values.clone();
                values.extend(r.values.iter().cloned());
                out.push(AnnotatedTuple::new(values, l.lineage.and(&r.lineage)));
            }
        }
    }
    out
}

/// Union ∪ of two relations with identical arity; duplicate tuples are merged
/// and their lineages disjoined.
pub fn union(left: &Relation, right: &Relation, name: &str) -> Relation {
    assert_eq!(
        left.schema.arity(),
        right.schema.arity(),
        "union requires relations of identical arity"
    );
    let mut grouped: BTreeMap<Vec<Value>, Dnf> = BTreeMap::new();
    for t in left.tuples.iter().chain(right.tuples.iter()) {
        grouped
            .entry(t.values.clone())
            .and_modify(|lineage| *lineage = lineage.or(&t.lineage))
            .or_insert_with(|| t.lineage.clone());
    }
    let mut out =
        Relation::empty(Schema { name: name.to_owned(), columns: left.schema.columns.clone() });
    for (values, lineage) in grouped {
        out.push(AnnotatedTuple::new(values, lineage));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    /// The social-network edge table of Figure 5 (a).
    fn figure_5_database() -> Database {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
                (vec![Value::Int(6), Value::Int(7)], 0.1),
                (vec![Value::Int(6), Value::Int(11)], 0.9),
                (vec![Value::Int(6), Value::Int(17)], 0.5),
                (vec![Value::Int(7), Value::Int(17)], 0.2),
            ],
        );
        db
    }

    #[test]
    fn selection_filters_without_touching_lineage() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        let from5 = select(&e, &|vals| vals[0] == Value::Int(5));
        assert_eq!(from5.len(), 2);
        assert_eq!(from5.tuples[0].lineage, e.tuples[0].lineage);
    }

    #[test]
    fn projection_merges_duplicates_with_disjunction() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        // Project onto the source column: node 5 has two outgoing edges, so
        // its lineage becomes e1 ∨ e2.
        let sources = project(&e, &[0], "sources");
        assert_eq!(sources.len(), 3);
        let five = sources.tuples.iter().find(|t| t.values[0] == Value::Int(5)).unwrap();
        assert_eq!(five.lineage.len(), 2);
        let p = five.probability(db.space());
        assert!((p - (1.0 - 0.1 * 0.2)).abs() < 1e-9);
    }

    #[test]
    fn join_conjoins_lineage() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        // Path of length 2: E(u, v) ⋈ E(v, w).
        let paths = join(&e, &e, &[(1, 0)], "paths2");
        // Edges into 7 are (5,7) and (6,7); edges out of 7: (7,17). Edges into
        // 6/5/11/17 with outgoing: only via v=6 none (no edge with u=11/17).
        // So expected join partners: (5,7)-(7,17) and (6,7)-(7,17).
        assert_eq!(paths.len(), 2);
        for t in &paths.tuples {
            // Lineage is the conjunction of two distinct edge variables.
            assert_eq!(t.lineage.len(), 1);
            assert_eq!(t.lineage.clauses()[0].len(), 2);
        }
    }

    #[test]
    fn theta_join_supports_inequalities() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        let lt = theta_join(&e, &e, &|l, r| l[1] < r[1], "lt");
        assert!(!lt.is_empty());
        for t in &lt.tuples {
            assert!(t.values[1] < t.values[3]);
        }
    }

    #[test]
    fn union_merges_duplicates() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        let u = union(&e, &e, "both");
        // Union with itself: same tuples, lineage unchanged (φ ∨ φ = φ).
        assert_eq!(u.len(), e.len());
        let p_before: f64 = e.tuples[0].probability(db.space());
        let t = u.tuples.iter().find(|t| t.values == vec![Value::Int(5), Value::Int(7)]).unwrap();
        assert!((t.probability(db.space()) - p_before).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical arity")]
    fn union_rejects_mismatched_arity() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        let proj = project(&e, &[0], "p");
        let _ = union(&e, &proj, "bad");
    }

    /// End-to-end: the triangle query of Section VI-A on the Figure-5 graph.
    /// The undirected triangle 6-7-17 exists via edges e3, e5, e6, so the
    /// Boolean lineage is the single clause e3 ∧ e5 ∧ e6 (Figure 5 (c)).
    #[test]
    fn triangle_query_lineage_matches_figure_5c() {
        let db = figure_5_database();
        let e = db.table("E").unwrap();
        // n1(u,v) ⋈ n2(u=v of n1) ⋈ n3 closing the triangle, with u < v < w
        // enforced by the edge direction in the table.
        let n1n2 = join(&e, &e, &[(1, 0)], "n1n2");
        // Columns: n1.u, n1.v, n2.u, n2.v — close the triangle with an edge
        // (n1.u, n2.v).
        let tri = theta_join(&n1n2, &e, &|l, r| l[0] == r[0] && l[3] == r[1], "triangle");
        assert_eq!(tri.len(), 1);
        let lineage = tri.boolean_lineage();
        assert_eq!(lineage.len(), 1);
        assert_eq!(lineage.clauses()[0].len(), 3);
        // Probability .1 * .5 * .2
        let p = lineage.exact_probability_enumeration(db.space());
        assert!((p - 0.01).abs() < 1e-9);
    }
}
