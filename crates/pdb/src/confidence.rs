//! Unified confidence-computation front-end.
//!
//! The paper compares several algorithms for computing the probability of an
//! answer tuple's lineage DNF; this module dispatches a lineage to the chosen
//! algorithm and returns a uniform result structure, which is what the
//! examples and the benchmark harness use.

use std::fmt;
use std::time::{Duration, Instant};

use dtree::{
    exact_probability_view, exact_probability_view_cached, ApproxCompiler, ApproxOptions,
    ApproxResult, CompileOptions, CompileStats, ErrorBound, ResumableCompilation, ResumeBudget,
    SubformulaCache, VarOrder,
};
use events::{Dnf, DnfRef, LineageArena, LineageDelta, ProbabilitySpace, VarOrigins};
use montecarlo::{aconf_ref, naive_monte_carlo_ref, McOptions, NaiveOptions};

/// The confidence-computation algorithm to run on a lineage DNF.
#[derive(Debug, Clone)]
pub enum ConfidenceMethod {
    /// The d-tree exact evaluation ("d-tree(error 0)" in the paper's plots).
    DTreeExact,
    /// The d-tree deterministic approximation with an absolute error bound.
    DTreeAbsolute(f64),
    /// The d-tree deterministic approximation with a relative error bound.
    DTreeRelative(f64),
    /// The Karp-Luby / DKLR Monte-Carlo baseline (`aconf(ε)`, δ = 0.0001).
    KarpLuby {
        /// Relative error ε.
        epsilon: f64,
        /// Failure probability δ.
        delta: f64,
    },
    /// Naive possible-world sampling with an additive error bound.
    NaiveMonteCarlo {
        /// Additive error ε.
        epsilon: f64,
    },
}

impl ConfidenceMethod {
    /// `true` for the d-tree methods, whose results are a pure function of
    /// `(lineage, space)` — the precondition for duplicate-lineage
    /// deduplication and bit-identical caching. The Monte-Carlo methods are
    /// excluded: they carry per-item seeds, so every item must run.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            ConfidenceMethod::DTreeExact
                | ConfidenceMethod::DTreeAbsolute(_)
                | ConfidenceMethod::DTreeRelative(_)
        )
    }

    /// Short display name used in benchmark tables.
    pub fn label(&self) -> String {
        match self {
            ConfidenceMethod::DTreeExact => "d-tree(0)".to_owned(),
            ConfidenceMethod::DTreeAbsolute(e) => format!("d-tree(abs {e})"),
            ConfidenceMethod::DTreeRelative(e) => format!("d-tree(rel {e})"),
            ConfidenceMethod::KarpLuby { epsilon, .. } => format!("aconf({epsilon})"),
            ConfidenceMethod::NaiveMonteCarlo { epsilon } => format!("naive({epsilon})"),
        }
    }
}

/// Uniform result of a confidence computation.
#[derive(Debug, Clone)]
pub struct ConfidenceResult {
    /// The probability estimate.
    pub estimate: f64,
    /// Lower bound on the probability. For d-tree methods this is a *sound*
    /// bound (the true probability always lies in `[lower, upper]`); for
    /// Monte-Carlo methods it is the lower end of the method's (ε, δ)
    /// confidence interval, which contains the true probability with
    /// probability at least `1 − δ` when `converged` is `true`; a Monte-Carlo
    /// run truncated by the budget (`converged == false`) has no such
    /// guarantee and reports the vacuous interval `[0, 1]`. Exact methods
    /// report `lower == estimate == upper`.
    pub lower: f64,
    /// Upper bound on the probability; see [`ConfidenceResult::lower`] for
    /// the per-method semantics.
    pub upper: f64,
    /// Whether the requested guarantee was met within the budget.
    pub converged: bool,
    /// Wall-clock time spent inside the algorithm.
    pub elapsed: Duration,
    /// Method label (for reports).
    pub method: String,
    /// Decomposition statistics of the run, exposed for cost models and
    /// hardness estimators (e.g. `cluster::HardnessEstimator` calibrates its
    /// structural scores against [`CompileStats::work`]). `Some` for the
    /// d-tree methods, `None` for the Monte-Carlo methods (which do no
    /// decomposition) and for items short-circuited past a deadline.
    pub stats: Option<CompileStats>,
    /// `Some` when the result was **degraded**: a failure (worker panic,
    /// shard loss, exhausted I/O retries) prevented computing the item, and
    /// the engine failed closed to this sound vacuous `[0, 1]` non-converged
    /// interval instead of aborting the batch. `None` for every normally
    /// computed result — including honest non-converged ones, which are a
    /// budget outcome, not a failure.
    pub degraded: Option<DegradationReason>,
}

/// Why a [`ConfidenceResult`] was degraded to the vacuous `[0, 1]`
/// non-converged interval instead of computed. Carried on
/// [`ConfidenceResult::degraded`]; the interval is still *sound* (the true
/// probability always lies in `[0, 1]`), so batch post-processing stays
/// valid — the reason tells operators which failure domain to look at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// The worker computing the item panicked (e.g. on corrupt committed
    /// storage payloads or an injected fault) and the engine isolated it.
    WorkerPanic,
    /// The item was orphaned by a dying cluster shard and its retry on a
    /// surviving shard also failed.
    ShardLost,
    /// Transient storage I/O kept failing past the retry budget.
    RetriesExhausted,
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::WorkerPanic => write!(f, "worker panic"),
            DegradationReason::ShardLost => write!(f, "shard lost"),
            DegradationReason::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

/// Budgets applied to any method — including [`ConfidenceMethod::DTreeExact`],
/// which is routed through the ε = 0 approximation path when a budget is set
/// so that truncation yields sound partial bounds with `converged = false`
/// instead of stalling. Mainly used by the benchmark harness and the batch
/// engine so a slow baseline or a single hard lineage cannot stall a whole
/// experiment.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceBudget {
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
    /// Maximum decomposition steps (d-tree) or samples (Monte-Carlo).
    pub max_work: Option<u64>,
}

/// A suspended confidence computation: wraps a [`ResumableCompilation`] d-tree
/// frontier together with the method label, so later budget slices keep
/// tightening the same interval instead of recompiling the lineage from
/// scratch.
///
/// Obtained from [`confidence_resumable`] when a budgeted d-tree run is
/// truncated before convergence. The handle owns the partial d-tree (arena
/// included); drop it to discard the frontier. It is pinned to the
/// probability-space generation it was captured under and **fails closed** if
/// the space is invalidated in place: [`ResumableConfidence::resume`] then
/// returns the vacuous non-converged `[0, 1]` interval and
/// [`ResumableConfidence::failed`] turns `true` permanently.
#[derive(Debug, Clone)]
pub struct ResumableConfidence {
    inner: ResumableCompilation,
    method: String,
}

impl ResumableConfidence {
    /// Attaches observability to the underlying d-tree frontier: every later
    /// slice records its step count, cache-probe outcomes, latency, and the
    /// interval width reached (see `ResumableCompilation::attach_obs`).
    /// Write-only; results are bit-identical with or without it.
    pub fn attach_obs(&mut self, o: &obs::Obs) {
        self.inner.attach_obs(o);
    }

    /// Continues refinement for one budget slice (an empty budget means
    /// "until convergence"). Bounds never widen across slices; the returned
    /// result carries slice-local `elapsed`/`stats`.
    pub fn resume(
        &mut self,
        space: &ProbabilitySpace,
        budget: &ConfidenceBudget,
        cache: Option<&SubformulaCache>,
    ) -> ConfidenceResult {
        let rb = ResumeBudget {
            max_steps: budget.max_work.map(|w| w as usize),
            timeout: budget.timeout,
        };
        let r = match cache {
            Some(c) => self.inner.resume_cached(space, rb, c),
            None => self.inner.resume(space, rb),
        };
        self.to_result(r)
    }

    /// [`ResumableConfidence::resume`] against a wall-clock deadline: spends
    /// whatever time remains until `deadline` (returning immediately with the
    /// current bounds if it already passed). This is the slice shape the
    /// cluster scheduler's refinement rounds use.
    pub fn resume_until(
        &mut self,
        space: &ProbabilitySpace,
        deadline: Instant,
        cache: Option<&SubformulaCache>,
    ) -> ConfidenceResult {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let budget = ConfidenceBudget { timeout: Some(remaining), max_work: None };
        self.resume(space, &budget, cache)
    }

    fn to_result(&self, r: ApproxResult) -> ConfidenceResult {
        ConfidenceResult {
            estimate: r.estimate,
            lower: r.lower,
            upper: r.upper,
            converged: r.converged,
            elapsed: r.elapsed,
            method: self.method.clone(),
            stats: Some(r.stats),
            degraded: None,
        }
    }

    /// Current interval width `U − L`; what further resumption shrinks.
    /// Schedulers re-score suspended items by this.
    pub fn remaining_width(&self) -> f64 {
        self.inner.width()
    }

    /// Current sound bounds of the suspended computation.
    pub fn bounds(&self) -> (f64, f64) {
        let b = self.inner.bounds();
        (b.lower, b.upper)
    }

    /// `true` once the error guarantee is met (further resumes are no-ops).
    pub fn is_converged(&self) -> bool {
        self.inner.is_converged()
    }

    /// `true` when the handle failed closed under probability-space
    /// invalidation; recompute from scratch against the new space.
    pub fn failed(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// `true` when the handle is still valid against `space` — the same
    /// predicate [`ResumableConfidence::resume`] and
    /// [`ResumableConfidence::apply_delta`] fail closed on. Maintenance
    /// checks it up front so stale handles recompile immediately instead of
    /// spending a slice to learn they are poisoned.
    pub fn is_current(&self, space: &ProbabilitySpace) -> bool {
        self.inner.is_current(space)
    }

    /// Cumulative decomposition steps across the original run and all slices.
    pub fn total_steps(&self) -> usize {
        self.inner.total_steps()
    }

    /// Applies a [`LineageDelta`] — clauses appended to the lineage this
    /// handle was compiled from — **in place**, without recompiling. Each
    /// clause is routed down the partial d-tree to the decomposition node it
    /// belongs to; only the touched leaf chain recomputes its bounds, every
    /// untouched subtree keeps its accumulated refinement. Returns `true` on
    /// success; `false` when the handle fails closed (probability space
    /// invalidated in place, or a destructive — non-append — edit reached
    /// it), in which case [`ResumableConfidence::failed`] turns `true`
    /// permanently and the item must be recompiled from scratch.
    ///
    /// The caller is responsible for the delta actually describing the growth
    /// of *this* handle's lineage (e.g. via [`LineageDelta::between`] or
    /// [`events::LineageArena::append_clauses`]); after a successful call the
    /// handle's bounds are sound for the grown formula, and further
    /// [`ResumableConfidence::resume`] slices tighten them as usual.
    pub fn apply_delta(&mut self, space: &ProbabilitySpace, delta: &LineageDelta) -> bool {
        self.inner.apply_delta(space, delta.clauses())
    }

    /// The width-vs-budget curve: `(cumulative_steps, interval_width)`
    /// samples recorded at capture, after every resume slice, and after every
    /// applied delta. Monotone non-increasing in width between deltas; a
    /// delta can widen the interval again (the formula grew).
    pub fn width_curve(&self) -> &[(usize, f64)] {
        self.inner.width_curve()
    }

    /// Number of delta clauses applied over the handle's lifetime.
    pub fn deltas_applied(&self) -> usize {
        self.inner.deltas_applied()
    }

    /// Number of delta routings that fell back to rebuilding a dirty subtree.
    pub fn dirty_rebuilds(&self) -> usize {
        self.inner.dirty_rebuilds()
    }

    /// The handle's current state as a [`ConfidenceResult`] without doing any
    /// work: bounds, estimate, and convergence as of now, `elapsed` zero
    /// (nothing ran for this snapshot). This is what maintenance reports for
    /// items whose bounds stayed within the error guarantee after a delta.
    pub fn snapshot_result(&self) -> ConfidenceResult {
        let (lower, upper) = self.bounds();
        ConfidenceResult {
            estimate: self.inner.estimate(),
            lower,
            upper,
            converged: self.inner.is_converged(),
            elapsed: Duration::ZERO,
            method: self.method.clone(),
            stats: Some(*self.inner.stats()),
            degraded: None,
        }
    }
}

/// Computes the confidence of a lineage DNF with the chosen method.
///
/// `origins` (variable → relation labels) enables the relational
/// factorizations and tractable elimination orders for the d-tree methods;
/// pass `None` when unavailable.
pub fn confidence(
    lineage: &Dnf,
    space: &ProbabilitySpace,
    origins: Option<&VarOrigins>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
) -> ConfidenceResult {
    confidence_with(lineage, space, origins, method, budget, None, None)
}

/// [`confidence`] with the two knobs the batch engine needs: a deterministic
/// RNG seed for the Monte-Carlo methods and a shared [`SubformulaCache`] for
/// the d-tree methods.
///
/// * `seed` — when `Some`, Karp-Luby and naive sampling are seeded with it
///   (making the call reproducible); when `None` they seed from entropy as
///   [`confidence`] does. The d-tree methods are deterministic and ignore it.
/// * `cache` — when `Some`, the d-tree methods memoize exact sub-formula
///   probabilities and bucket bounds in it. Entries are scoped to
///   `space.generation()`, so one long-lived cache can serve many spaces and
///   survive database mutations; results are bit-identical to the uncached
///   call either way.
pub fn confidence_with(
    lineage: &Dnf,
    space: &ProbabilitySpace,
    origins: Option<&VarOrigins>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
    seed: Option<u64>,
    cache: Option<&SubformulaCache>,
) -> ConfidenceResult {
    let compile_opts = match origins {
        Some(o) => CompileOptions::with_origins(o.clone()),
        None => {
            CompileOptions { var_order: VarOrder::MostFrequent, origins: None, max_depth: None }
        }
    };
    // Intern the lineage once; every method below — d-tree compilers and
    // Monte-Carlo samplers alike — evaluates against the arena view, so
    // decomposition and sampling never clone a clause again.
    let mut arena = LineageArena::with_capacity(lineage.len(), 4);
    let root = arena.intern(lineage);
    match method {
        ConfidenceMethod::DTreeExact => {
            if budget.timeout.is_none() && budget.max_work.is_none() {
                // No budget: plain exact evaluation (no leaf bounds computed;
                // the paper notes this can be faster than ε-approximation).
                let start = std::time::Instant::now();
                let r = match cache {
                    Some(c) => {
                        exact_probability_view_cached(&mut arena, &root, space, &compile_opts, c)
                    }
                    None => exact_probability_view(&mut arena, &root, space, &compile_opts),
                };
                ConfidenceResult {
                    estimate: r.probability,
                    lower: r.probability,
                    upper: r.probability,
                    converged: true,
                    elapsed: start.elapsed(),
                    method: method.label(),
                    stats: Some(r.stats),
                    degraded: None,
                }
            } else {
                // Budgeted: route through the approximation compiler with
                // ε = 0 so the step/time budget actually applies and a hard
                // lineage cannot stall a batch. On truncation the result
                // carries the (still sound) partial bounds and
                // `converged = false`.
                let opts = ApproxOptions {
                    error: ErrorBound::Absolute(0.0),
                    compile: compile_opts,
                    strategy: Default::default(),
                    max_steps: budget.max_work.map(|w| w as usize),
                    timeout: budget.timeout,
                };
                let compiler = ApproxCompiler::new(opts);
                let r = compiler.run_view(&mut arena, &root, space, cache);
                ConfidenceResult {
                    estimate: r.estimate,
                    lower: r.lower,
                    upper: r.upper,
                    converged: r.converged,
                    elapsed: r.elapsed,
                    method: method.label(),
                    stats: Some(r.stats),
                    degraded: None,
                }
            }
        }
        ConfidenceMethod::DTreeAbsolute(eps) | ConfidenceMethod::DTreeRelative(eps) => {
            let error = match method {
                ConfidenceMethod::DTreeAbsolute(_) => ErrorBound::Absolute(*eps),
                _ => ErrorBound::Relative(*eps),
            };
            let opts = ApproxOptions {
                error,
                compile: compile_opts,
                strategy: Default::default(),
                max_steps: budget.max_work.map(|w| w as usize),
                timeout: budget.timeout,
            };
            let compiler = ApproxCompiler::new(opts);
            let r = compiler.run_view(&mut arena, &root, space, cache);
            ConfidenceResult {
                estimate: r.estimate,
                lower: r.lower,
                upper: r.upper,
                converged: r.converged,
                elapsed: r.elapsed,
                method: method.label(),
                stats: Some(r.stats),
                degraded: None,
            }
        }
        ConfidenceMethod::KarpLuby { epsilon, delta } => {
            let mut opts = McOptions::new(*epsilon).with_delta(*delta);
            if let Some(t) = budget.timeout {
                opts = opts.with_timeout(t);
            }
            if let Some(w) = budget.max_work {
                opts = opts.with_max_samples(w);
            }
            if let Some(s) = seed {
                opts = opts.with_seed(s);
            }
            let r = aconf_ref(DnfRef::Arena(&arena, &root), space, &opts);
            // The (ε, δ) guarantee is relative: p̂ ∈ [(1−ε)p, (1+ε)p] with
            // probability ≥ 1 − δ, hence p ∈ [p̂/(1+ε), p̂/(1−ε)] — but only
            // when the DKLR stopping rule actually ran to completion. A run
            // truncated by the budget drew too few samples for any such
            // guarantee, so the only honest interval is the vacuous [0, 1].
            let (lower, upper) = if r.converged {
                let eps = epsilon.max(0.0);
                let lower = (r.estimate / (1.0 + eps)).clamp(0.0, 1.0);
                let upper =
                    if eps < 1.0 { (r.estimate / (1.0 - eps)).clamp(0.0, 1.0) } else { 1.0 };
                (lower, upper)
            } else {
                (0.0, 1.0)
            };
            ConfidenceResult {
                estimate: r.estimate,
                lower,
                upper,
                converged: r.converged,
                elapsed: r.elapsed,
                method: method.label(),
                stats: None,
                degraded: None,
            }
        }
        ConfidenceMethod::NaiveMonteCarlo { epsilon } => {
            let mut opts = NaiveOptions::new(*epsilon);
            if let Some(t) = budget.timeout {
                opts.timeout = Some(t);
            }
            // `max_work` is a *cap*, not a target: `with_samples` overrides
            // the Hoeffding-mandated count outright, so pass the minimum of
            // the two — a budget above the requirement must not inflate the
            // work, a budget below it truncates.
            let required = opts.hoeffding_samples();
            if let Some(w) = budget.max_work {
                opts = opts.with_samples(w.min(required));
            }
            if let Some(s) = seed {
                opts = opts.with_seed(s);
            }
            let r = naive_monte_carlo_ref(DnfRef::Arena(&arena, &root), space, &opts);
            // Additive (ε, δ) guarantee: p ∈ [p̂ − ε, p̂ + ε] with
            // probability ≥ 1 − δ — earned only when the Hoeffding count was
            // actually drawn (trivial formulas are exact without sampling).
            // A truncated run (budget or timeout) has no such guarantee and
            // reports the vacuous (but sound) [0, 1].
            let trivial = lineage.is_empty() || lineage.is_tautology();
            let earned = trivial || (r.converged && r.samples >= required);
            let (lower, upper) = if earned {
                ((r.estimate - epsilon).clamp(0.0, 1.0), (r.estimate + epsilon).clamp(0.0, 1.0))
            } else {
                (0.0, 1.0)
            };
            ConfidenceResult {
                estimate: r.estimate,
                lower,
                upper,
                converged: earned,
                elapsed: r.elapsed,
                method: method.label(),
                stats: None,
                degraded: None,
            }
        }
    }
}

/// [`confidence_with`], but for the anytime d-tree runs — budgeted
/// [`ConfidenceMethod::DTreeExact`] and the approximate d-tree methods — the
/// second return value carries a [`ResumableConfidence`] handle over the
/// d-tree frontier: truncated runs keep an open frontier later slices
/// tighten instead of recompiling, converged runs a settled frontier whose
/// purpose is absorbing appended lineage clauses
/// ([`ResumableConfidence::apply_delta`]) in streaming maintenance.
/// Unbudgeted [`ConfidenceMethod::DTreeExact`] (the plain exact evaluator)
/// and the Monte-Carlo methods (no d-tree to persist) return `None`. All
/// value-bearing fields are bit-identical to [`confidence_with`].
pub fn confidence_resumable(
    lineage: &Dnf,
    space: &ProbabilitySpace,
    origins: Option<&VarOrigins>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
    seed: Option<u64>,
    cache: Option<&SubformulaCache>,
) -> (ConfidenceResult, Option<ResumableConfidence>) {
    let budgeted = budget.timeout.is_some() || budget.max_work.is_some();
    let error = match method {
        ConfidenceMethod::DTreeExact if budgeted => Some(ErrorBound::Absolute(0.0)),
        ConfidenceMethod::DTreeAbsolute(e) => Some(ErrorBound::Absolute(*e)),
        ConfidenceMethod::DTreeRelative(e) => Some(ErrorBound::Relative(*e)),
        _ => None,
    };
    let Some(error) = error else {
        // Unbudgeted exact evaluation and the Monte-Carlo methods have no
        // frontier to persist.
        return (confidence_with(lineage, space, origins, method, budget, seed, cache), None);
    };
    let compile_opts = match origins {
        Some(o) => CompileOptions::with_origins(o.clone()),
        None => {
            CompileOptions { var_order: VarOrder::MostFrequent, origins: None, max_depth: None }
        }
    };
    let opts = ApproxOptions {
        error,
        compile: compile_opts,
        strategy: Default::default(),
        max_steps: budget.max_work.map(|w| w as usize),
        timeout: budget.timeout,
    };
    let compiler = ApproxCompiler::new(opts);
    let (r, handle) = compiler.run_resumable(lineage, space, cache);
    let result = ConfidenceResult {
        estimate: r.estimate,
        lower: r.lower,
        upper: r.upper,
        converged: r.converged,
        elapsed: r.elapsed,
        method: method.label(),
        stats: Some(r.stats),
        degraded: None,
    };
    let handle = handle.map(|inner| ResumableConfidence { inner, method: method.label() });
    (result, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::value::Value;

    fn sample_lineage() -> (Database, Dnf) {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.3), (vec![Value::Int(2)], 0.4)],
        );
        db.add_tuple_independent_table(
            "S",
            &["a", "b"],
            vec![
                (vec![Value::Int(1), Value::Int(10)], 0.5),
                (vec![Value::Int(1), Value::Int(20)], 0.6),
                (vec![Value::Int(2), Value::Int(10)], 0.7),
            ],
        );
        let q = crate::ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![crate::Term::var("A")])
            .with_subgoal("S", vec![crate::Term::var("A"), crate::Term::var("B")]);
        let lineage = q.evaluate(&db)[0].lineage.clone();
        (db, lineage)
    }

    #[test]
    fn all_methods_agree_on_a_small_lineage() {
        let (db, lineage) = sample_lineage();
        let exact = lineage.exact_probability_enumeration(db.space());
        let budget = ConfidenceBudget::default();
        let methods = vec![
            ConfidenceMethod::DTreeExact,
            ConfidenceMethod::DTreeAbsolute(0.01),
            ConfidenceMethod::DTreeRelative(0.01),
            ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 0.01 },
            ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.02 },
        ];
        for m in methods {
            let r = confidence(&lineage, db.space(), Some(db.origins()), &m, &budget);
            assert!(
                (r.estimate - exact).abs() < 0.06,
                "{} estimate {} vs exact {exact}",
                r.method,
                r.estimate
            );
            assert!(!r.method.is_empty());
        }
    }

    #[test]
    fn dtree_methods_report_bounds() {
        let (db, lineage) = sample_lineage();
        let exact = lineage.exact_probability_enumeration(db.space());
        let r = confidence(
            &lineage,
            db.space(),
            Some(db.origins()),
            &ConfidenceMethod::DTreeAbsolute(0.001),
            &ConfidenceBudget::default(),
        );
        assert!(r.converged);
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
        assert!((r.estimate - exact).abs() <= 0.001 + 1e-9);
    }

    #[test]
    fn budget_is_forwarded() {
        let (db, lineage) = sample_lineage();
        let budget = ConfidenceBudget { timeout: None, max_work: Some(1) };
        let r = confidence(
            &lineage,
            db.space(),
            None,
            &ConfidenceMethod::KarpLuby { epsilon: 1e-4, delta: 1e-4 },
            &budget,
        );
        assert!(!r.converged);
    }

    /// A chain DNF over more variables than the approximation's exact-leaf
    /// threshold, so a budgeted run genuinely has to decompose.
    fn hard_lineage() -> (events::ProbabilitySpace, Dnf) {
        let mut s = events::ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..18).map(|i| s.add_bool(format!("x{i}"), 0.2 + 0.03 * i as f64)).collect();
        let phi = Dnf::from_clauses(
            (0..17)
                .map(|i| events::Clause::from_bools(&[vars[i], vars[i + 1]]))
                .collect::<Vec<_>>(),
        );
        (s, phi)
    }

    #[test]
    fn dtree_exact_respects_budget() {
        let (s, phi) = hard_lineage();
        // One decomposition step cannot finish this chain: the run must be
        // truncated, report sound bounds, and flag non-convergence instead of
        // silently ignoring the budget.
        let budget = ConfidenceBudget { timeout: None, max_work: Some(1) };
        let r = confidence(&phi, &s, None, &ConfidenceMethod::DTreeExact, &budget);
        assert!(!r.converged, "a 1-step budget must truncate: {r:?}");
        let exact = phi.exact_probability_enumeration(&s);
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
        // Without a budget the same method converges to the exact value.
        let full =
            confidence(&phi, &s, None, &ConfidenceMethod::DTreeExact, &ConfidenceBudget::default());
        assert!(full.converged);
        assert!((full.estimate - exact).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_methods_report_interval_bounds() {
        let (db, lineage) = sample_lineage();
        let exact = lineage.exact_probability_enumeration(db.space());
        let budget = ConfidenceBudget::default();
        let kl = ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 };
        let r = confidence(&lineage, db.space(), None, &kl, &budget);
        // Relative (ε, δ) interval: strictly wider than a point, bracketing
        // the estimate, inside [0, 1].
        assert!(r.lower < r.estimate && r.estimate < r.upper, "{r:?}");
        assert!((0.0..=1.0).contains(&r.lower) && (0.0..=1.0).contains(&r.upper));
        assert!((r.lower - r.estimate / 1.1).abs() < 1e-12);
        assert!((r.upper - r.estimate / 0.9).abs() < 1e-12 || r.upper == 1.0);
        assert!(r.lower <= exact + 0.2, "interval should be near the true value");
        let naive = ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.05 };
        let r = confidence(&lineage, db.space(), None, &naive, &budget);
        // Additive (ε, δ) interval: estimate ± ε clamped to [0, 1].
        assert!((r.upper - r.lower) <= 0.1 + 1e-12);
        assert!(r.lower <= r.estimate && r.estimate <= r.upper);
        assert!((0.0..=1.0).contains(&r.lower) && (0.0..=1.0).contains(&r.upper));
    }

    /// Regression test: a Monte-Carlo run truncated by the budget has *not*
    /// earned its (ε, δ) interval — with a handful of samples the interval
    /// `p̂/(1±ε)` (or `p̂ ± ε`) around a noisy mean routinely excludes the
    /// true probability. A non-converged run must report the vacuous [0, 1].
    #[test]
    fn truncated_monte_carlo_reports_vacuous_interval() {
        let (db, lineage) = sample_lineage();
        let budget = ConfidenceBudget { timeout: None, max_work: Some(2) };
        let kl = ConfidenceMethod::KarpLuby { epsilon: 1e-4, delta: 1e-4 };
        let r = confidence(&lineage, db.space(), None, &kl, &budget);
        assert!(!r.converged, "2 samples cannot satisfy ε = 1e-4: {r:?}");
        assert_eq!(r.lower, 0.0, "truncated KL must not claim a lower bound: {r:?}");
        assert_eq!(r.upper, 1.0, "truncated KL must not claim an upper bound: {r:?}");
        let naive = ConfidenceMethod::NaiveMonteCarlo { epsilon: 1e-4 };
        let r = confidence(&lineage, db.space(), None, &naive, &budget);
        assert!(!r.converged);
        assert_eq!((r.lower, r.upper), (0.0, 1.0), "truncated naive run: {r:?}");
        // Converged runs keep their genuine (ε, δ) interval.
        let r = confidence(
            &lineage,
            db.space(),
            None,
            &ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 },
            &ConfidenceBudget::default(),
        );
        assert!(r.converged);
        assert!(r.lower > 0.0 && r.upper < 1.0, "{r:?}");
    }

    #[test]
    fn seeded_monte_carlo_is_reproducible() {
        let (db, lineage) = sample_lineage();
        let budget = ConfidenceBudget::default();
        let m = ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 0.01 };
        let a = confidence_with(&lineage, db.space(), None, &m, &budget, Some(42), None);
        let b = confidence_with(&lineage, db.space(), None, &m, &budget, Some(42), None);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        let m = ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.05 };
        let a = confidence_with(&lineage, db.space(), None, &m, &budget, Some(7), None);
        let b = confidence_with(&lineage, db.space(), None, &m, &budget, Some(7), None);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }

    #[test]
    fn cached_confidence_is_bit_identical_to_uncached() {
        let (db, lineage) = sample_lineage();
        let budget = ConfidenceBudget::default();
        let cache = SubformulaCache::new();
        for m in [
            ConfidenceMethod::DTreeExact,
            ConfidenceMethod::DTreeAbsolute(0.01),
            ConfidenceMethod::DTreeRelative(0.01),
        ] {
            let plain = confidence(&lineage, db.space(), Some(db.origins()), &m, &budget);
            let cached = confidence_with(
                &lineage,
                db.space(),
                Some(db.origins()),
                &m,
                &budget,
                None,
                Some(&cache),
            );
            assert_eq!(plain.estimate.to_bits(), cached.estimate.to_bits(), "{}", plain.method);
            assert_eq!(plain.lower.to_bits(), cached.lower.to_bits());
            assert_eq!(plain.upper.to_bits(), cached.upper.to_bits());
            assert_eq!(plain.converged, cached.converged);
        }
    }

    #[test]
    fn resumable_truncation_resumes_to_the_exact_answer() {
        let (s, phi) = hard_lineage();
        let exact = phi.exact_probability_enumeration(&s);
        let budget = ConfidenceBudget { timeout: None, max_work: Some(2) };
        let (first, handle) = confidence_resumable(
            &phi,
            &s,
            None,
            &ConfidenceMethod::DTreeExact,
            &budget,
            None,
            None,
        );
        assert!(!first.converged, "2 steps must truncate: {first:?}");
        // The first result is bit-identical to the non-resumable front-end.
        let plain = confidence(&phi, &s, None, &ConfidenceMethod::DTreeExact, &budget);
        assert_eq!(plain.lower.to_bits(), first.lower.to_bits());
        assert_eq!(plain.upper.to_bits(), first.upper.to_bits());
        let mut handle = handle.expect("truncated run yields a handle");
        assert!(first.lower <= exact + 1e-9 && exact <= first.upper + 1e-9);
        assert!(handle.remaining_width() > 0.0);
        // An unlimited slice finishes the job.
        let done = handle.resume(&s, &ConfidenceBudget::default(), None);
        assert!(done.converged);
        assert!((done.estimate - exact).abs() < 1e-9);
        assert!(handle.is_converged());
        assert!(!handle.failed());
        assert_eq!(done.method, "d-tree(0)");
    }

    #[test]
    fn resumable_handle_presence_follows_method() {
        let (db, lineage) = sample_lineage();
        // Unbudgeted exact: cannot truncate.
        let (r, h) = confidence_resumable(
            &lineage,
            db.space(),
            Some(db.origins()),
            &ConfidenceMethod::DTreeExact,
            &ConfidenceBudget::default(),
            None,
            None,
        );
        assert!(r.converged && h.is_none());
        // Monte-Carlo: no d-tree frontier to persist, even truncated.
        let budget = ConfidenceBudget { timeout: None, max_work: Some(2) };
        let (r, h) = confidence_resumable(
            &lineage,
            db.space(),
            None,
            &ConfidenceMethod::KarpLuby { epsilon: 1e-4, delta: 1e-4 },
            &budget,
            Some(7),
            None,
        );
        assert!(!r.converged && h.is_none());
        // Converged d-tree runs hand back a settled (converged) frontier —
        // the seed streaming deltas are absorbed into.
        let (r, h) = confidence_resumable(
            &lineage,
            db.space(),
            Some(db.origins()),
            &ConfidenceMethod::DTreeAbsolute(0.1),
            &ConfidenceBudget { timeout: Some(Duration::from_secs(5)), max_work: None },
            None,
            None,
        );
        assert!(r.converged);
        let h = h.expect("converged runs pool their settled frontier");
        assert!(h.is_converged());
        assert_eq!(h.bounds(), (r.lower, r.upper));
    }

    #[test]
    fn resume_until_past_deadline_returns_promptly() {
        let (s, phi) = hard_lineage();
        let budget = ConfidenceBudget { timeout: None, max_work: Some(1) };
        let (first, handle) = confidence_resumable(
            &phi,
            &s,
            None,
            &ConfidenceMethod::DTreeExact,
            &budget,
            None,
            None,
        );
        let mut handle = handle.expect("truncated");
        let t0 = Instant::now();
        let r = handle.resume_until(&s, t0 - Duration::from_millis(1), None);
        assert!(t0.elapsed() < Duration::from_millis(50), "expired resume must be prompt");
        assert!(!r.converged);
        // Bounds unchanged — an expired slice does no work but loses nothing.
        assert_eq!(r.lower.to_bits(), first.lower.to_bits());
        assert_eq!(r.upper.to_bits(), first.upper.to_bits());
        assert!(!handle.failed());
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(ConfidenceMethod::DTreeExact.label(), "d-tree(0)");
        assert!(ConfidenceMethod::DTreeRelative(0.01).label().contains("rel"));
        assert!(ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 }
            .label()
            .contains("aconf"));
        assert!(ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 }.label().contains("naive"));
        assert!(ConfidenceMethod::DTreeAbsolute(0.5).label().contains("abs"));
    }
}
