//! Unified confidence-computation front-end.
//!
//! The paper compares several algorithms for computing the probability of an
//! answer tuple's lineage DNF; this module dispatches a lineage to the chosen
//! algorithm and returns a uniform result structure, which is what the
//! examples and the benchmark harness use.

use std::time::Duration;

use dtree::{
    exact_probability, ApproxCompiler, ApproxOptions, CompileOptions, ErrorBound, VarOrder,
};
use events::{Dnf, ProbabilitySpace, VarOrigins};
use montecarlo::{aconf, naive_monte_carlo, McOptions, NaiveOptions};

/// The confidence-computation algorithm to run on a lineage DNF.
#[derive(Debug, Clone)]
pub enum ConfidenceMethod {
    /// The d-tree exact evaluation ("d-tree(error 0)" in the paper's plots).
    DTreeExact,
    /// The d-tree deterministic approximation with an absolute error bound.
    DTreeAbsolute(f64),
    /// The d-tree deterministic approximation with a relative error bound.
    DTreeRelative(f64),
    /// The Karp-Luby / DKLR Monte-Carlo baseline (`aconf(ε)`, δ = 0.0001).
    KarpLuby {
        /// Relative error ε.
        epsilon: f64,
        /// Failure probability δ.
        delta: f64,
    },
    /// Naive possible-world sampling with an additive error bound.
    NaiveMonteCarlo {
        /// Additive error ε.
        epsilon: f64,
    },
}

impl ConfidenceMethod {
    /// Short display name used in benchmark tables.
    pub fn label(&self) -> String {
        match self {
            ConfidenceMethod::DTreeExact => "d-tree(0)".to_owned(),
            ConfidenceMethod::DTreeAbsolute(e) => format!("d-tree(abs {e})"),
            ConfidenceMethod::DTreeRelative(e) => format!("d-tree(rel {e})"),
            ConfidenceMethod::KarpLuby { epsilon, .. } => format!("aconf({epsilon})"),
            ConfidenceMethod::NaiveMonteCarlo { epsilon } => format!("naive({epsilon})"),
        }
    }
}

/// Uniform result of a confidence computation.
#[derive(Debug, Clone)]
pub struct ConfidenceResult {
    /// The probability estimate.
    pub estimate: f64,
    /// Lower bound (equal to the estimate for exact/Monte-Carlo methods).
    pub lower: f64,
    /// Upper bound (equal to the estimate for exact/Monte-Carlo methods).
    pub upper: f64,
    /// Whether the requested guarantee was met within the budget.
    pub converged: bool,
    /// Wall-clock time spent inside the algorithm.
    pub elapsed: Duration,
    /// Method label (for reports).
    pub method: String,
}

/// Budgets applied to any method (mainly used by the benchmark harness so a
/// slow baseline cannot stall a whole experiment).
#[derive(Debug, Clone, Default)]
pub struct ConfidenceBudget {
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
    /// Maximum decomposition steps (d-tree) or samples (Monte-Carlo).
    pub max_work: Option<u64>,
}

/// Computes the confidence of a lineage DNF with the chosen method.
///
/// `origins` (variable → relation labels) enables the relational
/// factorizations and tractable elimination orders for the d-tree methods;
/// pass `None` when unavailable.
pub fn confidence(
    lineage: &Dnf,
    space: &ProbabilitySpace,
    origins: Option<&VarOrigins>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
) -> ConfidenceResult {
    let compile_opts = match origins {
        Some(o) => CompileOptions::with_origins(o.clone()),
        None => {
            CompileOptions { var_order: VarOrder::MostFrequent, origins: None, max_depth: None }
        }
    };
    match method {
        ConfidenceMethod::DTreeExact => {
            let start = std::time::Instant::now();
            let r = exact_probability(lineage, space, &compile_opts);
            ConfidenceResult {
                estimate: r.probability,
                lower: r.probability,
                upper: r.probability,
                converged: true,
                elapsed: start.elapsed(),
                method: method.label(),
            }
        }
        ConfidenceMethod::DTreeAbsolute(eps) | ConfidenceMethod::DTreeRelative(eps) => {
            let error = match method {
                ConfidenceMethod::DTreeAbsolute(_) => ErrorBound::Absolute(*eps),
                _ => ErrorBound::Relative(*eps),
            };
            let mut opts = ApproxOptions {
                error,
                compile: compile_opts,
                strategy: Default::default(),
                max_steps: budget.max_work.map(|w| w as usize),
                timeout: budget.timeout,
            };
            if budget.timeout.is_none() && budget.max_work.is_none() {
                opts.max_steps = None;
            }
            let r = ApproxCompiler::new(opts).run(lineage, space);
            ConfidenceResult {
                estimate: r.estimate,
                lower: r.lower,
                upper: r.upper,
                converged: r.converged,
                elapsed: r.elapsed,
                method: method.label(),
            }
        }
        ConfidenceMethod::KarpLuby { epsilon, delta } => {
            let mut opts = McOptions::new(*epsilon).with_delta(*delta);
            if let Some(t) = budget.timeout {
                opts = opts.with_timeout(t);
            }
            if let Some(w) = budget.max_work {
                opts = opts.with_max_samples(w);
            }
            let r = aconf(lineage, space, &opts);
            ConfidenceResult {
                estimate: r.estimate,
                lower: r.estimate,
                upper: r.estimate,
                converged: r.converged,
                elapsed: r.elapsed,
                method: method.label(),
            }
        }
        ConfidenceMethod::NaiveMonteCarlo { epsilon } => {
            let mut opts = NaiveOptions::new(*epsilon);
            if let Some(t) = budget.timeout {
                opts.timeout = Some(t);
            }
            if let Some(w) = budget.max_work {
                opts = opts.with_samples(w);
            }
            let r = naive_monte_carlo(lineage, space, &opts);
            ConfidenceResult {
                estimate: r.estimate,
                lower: r.estimate,
                upper: r.estimate,
                converged: r.converged,
                elapsed: r.elapsed,
                method: method.label(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::value::Value;

    fn sample_lineage() -> (Database, Dnf) {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.3), (vec![Value::Int(2)], 0.4)],
        );
        db.add_tuple_independent_table(
            "S",
            &["a", "b"],
            vec![
                (vec![Value::Int(1), Value::Int(10)], 0.5),
                (vec![Value::Int(1), Value::Int(20)], 0.6),
                (vec![Value::Int(2), Value::Int(10)], 0.7),
            ],
        );
        let q = crate::ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![crate::Term::var("A")])
            .with_subgoal("S", vec![crate::Term::var("A"), crate::Term::var("B")]);
        let lineage = q.evaluate(&db)[0].lineage.clone();
        (db, lineage)
    }

    #[test]
    fn all_methods_agree_on_a_small_lineage() {
        let (db, lineage) = sample_lineage();
        let exact = lineage.exact_probability_enumeration(db.space());
        let budget = ConfidenceBudget::default();
        let methods = vec![
            ConfidenceMethod::DTreeExact,
            ConfidenceMethod::DTreeAbsolute(0.01),
            ConfidenceMethod::DTreeRelative(0.01),
            ConfidenceMethod::KarpLuby { epsilon: 0.05, delta: 0.01 },
            ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.02 },
        ];
        for m in methods {
            let r = confidence(&lineage, db.space(), Some(db.origins()), &m, &budget);
            assert!(
                (r.estimate - exact).abs() < 0.06,
                "{} estimate {} vs exact {exact}",
                r.method,
                r.estimate
            );
            assert!(!r.method.is_empty());
        }
    }

    #[test]
    fn dtree_methods_report_bounds() {
        let (db, lineage) = sample_lineage();
        let exact = lineage.exact_probability_enumeration(db.space());
        let r = confidence(
            &lineage,
            db.space(),
            Some(db.origins()),
            &ConfidenceMethod::DTreeAbsolute(0.001),
            &ConfidenceBudget::default(),
        );
        assert!(r.converged);
        assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9);
        assert!((r.estimate - exact).abs() <= 0.001 + 1e-9);
    }

    #[test]
    fn budget_is_forwarded() {
        let (db, lineage) = sample_lineage();
        let budget = ConfidenceBudget { timeout: None, max_work: Some(1) };
        let r = confidence(
            &lineage,
            db.space(),
            None,
            &ConfidenceMethod::KarpLuby { epsilon: 1e-4, delta: 1e-4 },
            &budget,
        );
        assert!(!r.converged);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(ConfidenceMethod::DTreeExact.label(), "d-tree(0)");
        assert!(ConfidenceMethod::DTreeRelative(0.01).label().contains("rel"));
        assert!(ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 1e-4 }
            .label()
            .contains("aconf"));
        assert!(ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 }.label().contains("naive"));
        assert!(ConfidenceMethod::DTreeAbsolute(0.5).label().contains("abs"));
    }
}
