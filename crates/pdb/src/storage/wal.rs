//! Write-ahead log: the durability backbone of [`crate::storage::DiskStore`].
//!
//! Every state change — probability-space variables, table (re)creations,
//! generation epochs, and tuple appends — is framed and appended to a single
//! `wal.log` before it is applied in memory. A frame is
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload]
//! ```
//!
//! so replay can detect a torn tail (a crash mid-`write`) by length or
//! checksum mismatch and stop at the last fully durable record.
//!
//! # Rotation
//!
//! After a full memtable flush every logged row is durable in a
//! manifest-referenced run, so [`crate::storage::DiskStore`] rewrites the
//! log without its [`WalRecord::Row`] records: the metadata records
//! (epochs, variables, tables) are copied in order to a temporary file,
//! a [`WalRecord::Watermark`] pins the next sequence number, and an atomic
//! rename swaps the truncated log in. A crash at any point leaves either
//! the old complete log or the new truncated one — never a mix — and
//! replay of either recovers the same store.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::fault::Fault;
use crate::relation::Schema;
use crate::storage::encode::{crc32, put_f64, put_str, put_u32, put_u64, Cursor};
use crate::storage::StorageError;

/// One durable state change. See the module docs for framing.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The probability space moved to generation `generation` — written at
    /// store creation and after every invalidation, so the **last** epoch
    /// record in the log is the recovery epoch
    /// ([`events::ProbabilitySpace::restore_generation`]).
    Epoch {
        /// The generation fingerprint in force after this point of the log.
        generation: u64,
    },
    /// A variable was appended to the probability space.
    Variable {
        /// Variable name (e.g. `"R#3"` for row 3 of table `R`).
        name: String,
        /// Full domain distribution, bit-exact (`[1-p, p]` for Booleans).
        distribution: Vec<f64>,
        /// Originating table id, if the variable is labelled.
        origin: Option<u32>,
    },
    /// A table was created or replaced. Replacement bumps `epoch`, giving
    /// the new incarnation a fresh row-key prefix that hides all old rows.
    Table {
        /// Logical table id (stable across replacements).
        logical_id: u32,
        /// Replacement counter for this logical id, starting at 0.
        epoch: u32,
        /// The (new) schema.
        schema: Schema,
    },
    /// A tuple appended to a table incarnation.
    Row {
        /// Row key prefix: `logical_id << 32 | epoch`.
        uid: u64,
        /// Globally monotone sequence number (the flush watermark).
        seq: u64,
        /// [`crate::storage::encode::encode_tuple`] payload, stored verbatim.
        payload: Vec<u8>,
    },
    /// A rotation marker: every row with `seq < next_seq` was durable in a
    /// manifest-referenced run when the log was rewritten. Keeps sequence
    /// numbers monotone across a rotation even if compaction later drops all
    /// rows of the covering runs (recovery would otherwise restart `seq` at
    /// 0 and alias retired row keys).
    Watermark {
        /// The store's next unassigned sequence number at rotation time.
        next_seq: u64,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::Epoch { generation } => {
                buf.push(0);
                put_u64(&mut buf, *generation);
            }
            WalRecord::Variable { name, distribution, origin } => {
                buf.push(1);
                put_u32(&mut buf, origin.map_or(u32::MAX, |o| o));
                put_u32(&mut buf, distribution.len() as u32);
                for &p in distribution {
                    put_f64(&mut buf, p);
                }
                put_str(&mut buf, name);
            }
            WalRecord::Table { logical_id, epoch, schema } => {
                buf.push(2);
                put_u32(&mut buf, *logical_id);
                put_u32(&mut buf, *epoch);
                put_str(&mut buf, &schema.name);
                put_u32(&mut buf, schema.columns.len() as u32);
                for c in &schema.columns {
                    put_str(&mut buf, c);
                }
            }
            WalRecord::Row { uid, seq, payload } => {
                buf.push(3);
                put_u64(&mut buf, *uid);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, payload.len() as u32);
                buf.extend_from_slice(payload);
            }
            WalRecord::Watermark { next_seq } => {
                buf.push(4);
                put_u64(&mut buf, *next_seq);
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, StorageError> {
        let mut cur = Cursor::new(payload);
        let rec = match cur.u8()? {
            0 => WalRecord::Epoch { generation: cur.u64()? },
            1 => {
                let origin = match cur.u32()? {
                    u32::MAX => None,
                    o => Some(o),
                };
                let n = cur.u32()? as usize;
                let mut distribution = Vec::with_capacity(n);
                for _ in 0..n {
                    distribution.push(cur.f64()?);
                }
                let name = cur.string()?;
                WalRecord::Variable { name, distribution, origin }
            }
            2 => {
                let logical_id = cur.u32()?;
                let epoch = cur.u32()?;
                let name = cur.string()?;
                let n = cur.u32()? as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(cur.string()?);
                }
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                WalRecord::Table { logical_id, epoch, schema: Schema::new(name, &cols) }
            }
            3 => {
                let uid = cur.u64()?;
                let seq = cur.u64()?;
                let len = cur.u32()? as usize;
                let payload = cur.bytes(len)?.to_vec();
                WalRecord::Row { uid, seq, payload }
            }
            4 => WalRecord::Watermark { next_seq: cur.u64()? },
            tag => return Err(StorageError::corrupt(format!("unknown WAL record tag {tag}"))),
        };
        if cur.remaining() != 0 {
            return Err(StorageError::corrupt("trailing bytes in WAL record"));
        }
        Ok(rec)
    }

    /// The exact number of bytes this record occupies in the log, frame
    /// header included. Lets crash tests compute record boundaries without
    /// parsing the file.
    pub fn framed_len(&self) -> u64 {
        8 + self.encode().len() as u64
    }
}

/// An append-only write-ahead log. See the module docs for the frame format.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    fault: Fault,
    /// Set after an (injected) torn write: the file tail now holds a partial
    /// frame, so appending more records would put them *past* the tear where
    /// replay's CRC scan never reaches — an acknowledged-but-unrecoverable
    /// write. Fail every later append instead; recovery is a reopen, exactly
    /// as after a real crash.
    torn: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> Result<Wal, StorageError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal { file, path: path.to_path_buf(), len, fault: Fault::disabled(), torn: false })
    }

    /// Attaches a fault-injection handle; the `wal.append` and `wal.sync`
    /// failpoint sites start consulting it.
    pub fn attach_fault(&mut self, fault: &Fault) {
        self.fault = fault.clone();
    }

    /// Appends one framed record. The write is buffered by the OS; call
    /// [`Wal::sync`] to force it to stable storage.
    ///
    /// Failpoints: `wal.append` can reject the write before any byte reaches
    /// the file (transient, retry-safe) or — under a torn-write policy —
    /// leave a strict prefix of the frame in the file and report a permanent
    /// error, exactly the on-disk state a crash mid-`write` produces. Torn
    /// bytes are *not* counted in [`Wal::len`]: they are dead bytes that
    /// replay's CRC check skips, and the next append's frame header starts
    /// wherever the file ends.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StorageError> {
        if self.torn {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "write-ahead log has a torn tail; reopen the store to recover",
            )));
        }
        self.fault.check("wal.append")?;
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        if let Some(keep) = self.fault.torn("wal.append", frame.len()) {
            self.file.write_all(&frame[..keep])?;
            self.torn = true;
            return Err(Fault::torn_error("wal.append"));
        }
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Forces all appended records to stable storage.
    ///
    /// Failpoint: `wal.sync` (transient — an interrupted fsync is safe to
    /// reissue).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.fault.check("wal.sync")?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Current log length in bytes (every durable record ends at or before
    /// this offset).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no record has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replays the log at `path`, returning every fully durable record in
    /// append order. A torn tail — truncated frame, short payload, or CRC
    /// mismatch — ends the replay cleanly at the last good record; bytes past
    /// it are ignored (they are the in-flight write the crash interrupted).
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>, StorageError> {
        Ok(Self::replay_durable(path)?.0)
    }

    /// [`Wal::replay`], plus the byte offset where the durable prefix ends.
    /// Recovery truncates the file to this offset: a torn tail left by a
    /// crash (or an injected torn write) is dead bytes that replay skips,
    /// but records appended *after* them would be unreachable on the next
    /// replay — the frame walk stops at the tear — so the tail must be
    /// discarded before the log accepts new appends.
    pub fn replay_durable(path: &Path) -> Result<(Vec<WalRecord>, u64), StorageError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if bytes.len() - pos - 8 < len {
                break; // torn payload
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // torn or corrupted frame
            }
            match WalRecord::decode(payload) {
                Ok(rec) => records.push(rec),
                // A CRC-valid but undecodable payload is genuine corruption,
                // not a torn tail — fail loudly rather than silently dropping
                // durable data.
                Err(e) => return Err(e),
            }
            pos += 8 + len;
        }
        Ok((records, pos as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::testutil::TempDir;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Epoch { generation: 17 },
            WalRecord::Variable {
                name: "R#0".into(),
                distribution: vec![0.7, 0.3],
                origin: Some(2),
            },
            WalRecord::Variable { name: "free".into(), distribution: vec![0.5, 0.5], origin: None },
            WalRecord::Table { logical_id: 2, epoch: 1, schema: Schema::new("R", &["a", "b"]) },
            WalRecord::Row { uid: (2u64 << 32) | 1, seq: 9, payload: vec![1, 2, 3, 4] },
            WalRecord::Watermark { next_seq: 10 },
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), sample_records());
    }

    #[test]
    fn framed_len_matches_the_file() {
        let dir = TempDir::new("wal-framedlen");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        let mut expected = 0u64;
        for rec in sample_records() {
            wal.append(&rec).unwrap();
            expected += rec.framed_len();
            assert_eq!(wal.len(), expected);
        }
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), expected);
    }

    #[test]
    fn torn_tails_stop_replay_at_the_last_good_record() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        let records = sample_records();
        let mut boundaries = vec![0u64];
        for rec in &records {
            wal.append(rec).unwrap();
            boundaries.push(wal.len());
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() as u64 {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let replayed = Wal::replay(&path).unwrap();
            let survivors = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(replayed.len(), survivors, "cut at {cut}");
            assert_eq!(replayed[..], records[..survivors], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_in_the_tail_frame_are_detected() {
        let dir = TempDir::new("wal-bitflip");
        let path = dir.path().join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let before_last = sample_records().len() - 1;
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), before_last, "flipped tail frame must be dropped");
    }

    #[test]
    fn replaying_a_missing_log_is_empty() {
        let dir = TempDir::new("wal-missing");
        assert!(Wal::replay(&dir.path().join("nope.log")).unwrap().is_empty());
    }
}
