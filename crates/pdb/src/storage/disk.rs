//! The LSM-style [`DiskStore`]: memtable + WAL + immutable runs +
//! annotation-preserving compaction.
//!
//! # Layout of a store directory
//!
//! ```text
//! wal.log      framed write-ahead log (see `storage::wal`)
//! MANIFEST     text log of run lifecycle: `add run-N.dat` / `swap ... <- ...`
//! run-N.dat    immutable sorted runs (see `storage::run`)
//! ```
//!
//! # Write path
//!
//! An append encodes the tuple once, logs it to the WAL, and inserts the
//! *same* payload bytes into the memtable (a `BTreeMap` keyed by
//! `(uid, seq)` where `uid = logical_id << 32 | epoch` identifies the table
//! incarnation and `seq` is globally monotone). When the memtable exceeds
//! its byte budget it is drained in key order into a new run, the run is
//! fsynced, and only then does the MANIFEST reference it — a crash at any
//! point leaves either a complete referenced run or an ignorable orphan
//! whose rows the WAL still carries. When the run count reaches
//! [`COMPACT_RUNS`], all live runs are k-way merged into one, dropping rows
//! of superseded table incarnations and copying every surviving payload
//! **byte-for-byte** — probability annotations are never re-encoded.
//!
//! # Recovery
//!
//! [`DiskStore::open`] reads the MANIFEST, opens the referenced runs
//! (rebuilding their blooms and sparse indexes), then replays the WAL:
//! variable and epoch records rebuild the [`events::ProbabilitySpace`]
//! recipe handed back as [`RecoveredMeta`]; row records with `seq` beyond
//! the runs' flush watermark refill the memtable. The **last** epoch record
//! is the recovery epoch: restoring it via
//! [`events::ProbabilitySpace::restore_generation`] makes the revived space
//! carry the exact generation + watermark of the pre-crash one, so warm
//! `SubformulaCache` entries keyed by that fingerprint stay servable across
//! the restart.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::fault::{Fault, RetryPolicy};
use crate::relation::{AnnotatedTuple, Schema};
use crate::storage::encode::{decode_tuple, encode_tuple};
use crate::storage::run::{Run, RunWriter};
use crate::storage::wal::{Wal, WalRecord};
use crate::storage::{StorageError, StorageStats, TableStore};

/// Compaction threshold: once this many runs are live they are merged into
/// one.
pub const COMPACT_RUNS: usize = 4;

/// Approximate per-row memtable overhead (keys + `BTreeMap` node bookkeeping)
/// counted against the byte budget alongside the payload itself.
const MEM_ROW_OVERHEAD: usize = 48;

/// One table incarnation in the catalog.
#[derive(Debug, Clone)]
struct TableEntry {
    logical_id: u32,
    /// Replacement counter; bumping it retires every row of the previous
    /// incarnation (their `uid` no longer matches any catalog entry).
    epoch: u32,
    schema: Schema,
    /// Global sequence numbers of this incarnation's rows, in insertion
    /// order — the positional index behind [`TableStore::row_at`], mapping a
    /// row position straight to the bloom-probed [`DiskStore::get_row`] key
    /// without materializing the table.
    seqs: Vec<u64>,
}

impl TableEntry {
    fn uid(&self) -> u64 {
        ((self.logical_id as u64) << 32) | self.epoch as u64
    }

    fn rows(&self) -> usize {
        self.seqs.len()
    }
}

/// The probability-space recipe recovered from the WAL — everything
/// `Database::open_disk` needs to rebuild the exact pre-crash space.
#[derive(Debug, Clone, Default)]
pub struct RecoveredMeta {
    /// Variables in append order: `(name, distribution, origin table id)`.
    /// Re-adding them in order reproduces identical `VarId`s bit-for-bit.
    pub vars: Vec<(String, Vec<f64>, Option<u32>)>,
    /// The last logged generation — the recovery epoch to restore, `None`
    /// only for a store that never logged one (a brand-new directory).
    pub generation: Option<u64>,
    /// Table name → logical id, for rebuilding the database's registry.
    pub table_ids: Vec<(String, u32)>,
}

/// Pre-fetched observability handles for the store. Every handle is a
/// write-only no-op until [`TableStore::attach_obs`] installs real ones, so
/// the un-instrumented write path pays one branch per site.
#[derive(Debug, Clone, Default)]
struct StoreObs {
    obs: obs::Obs,
    /// `storage.wal.appends`: records framed into the WAL.
    wal_appends: obs::Counter,
    /// `storage.wal.bytes`: current WAL length (gauge; drops at rotation).
    wal_bytes: obs::Gauge,
    /// `storage.wal.rotations`: truncating log rewrites after full flushes.
    wal_rotations: obs::Counter,
    /// `storage.flushes`: memtable drains into new runs.
    flushes: obs::Counter,
    /// `storage.compactions`: k-way run merges.
    compactions: obs::Counter,
    /// `storage.bloom.pass`: point lookups a run's bloom let through.
    bloom_pass: obs::Counter,
    /// `storage.bloom.reject`: point lookups screened without file I/O.
    bloom_reject: obs::Counter,
    /// `storage.retries`: transient I/O failures absorbed by the
    /// [`RetryPolicy`] (each retry attempt counts once).
    retries: obs::Counter,
}

impl StoreObs {
    fn new(o: &obs::Obs) -> StoreObs {
        StoreObs {
            obs: o.clone(),
            wal_appends: o.counter("storage.wal.appends"),
            wal_bytes: o.gauge("storage.wal.bytes"),
            wal_rotations: o.counter("storage.wal.rotations"),
            flushes: o.counter("storage.flushes"),
            compactions: o.counter("storage.compactions"),
            bloom_pass: o.counter("storage.bloom.pass"),
            bloom_reject: o.counter("storage.bloom.reject"),
            retries: o.counter("storage.retries"),
        }
    }
}

/// Disk-backed [`TableStore`]. See the module docs above for the write
/// path, the on-disk layout, and the recovery protocol.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    wal: Wal,
    /// `(uid, seq)` → encoded tuple payload, bounded by `budget` bytes.
    memtable: BTreeMap<(u64, u64), Vec<u8>>,
    mem_bytes: usize,
    budget: usize,
    runs: Vec<Run>,
    catalog: BTreeMap<String, TableEntry>,
    next_seq: u64,
    next_run_id: u64,
    flushes: u64,
    compactions: u64,
    wal_rotations: u64,
    obs: StoreObs,
    fault: Fault,
    /// Backoff policy wrapped around every fallible I/O section; transient
    /// failures ([`StorageError::is_transient`]) are absorbed up to the
    /// retry budget before surfacing.
    retry: RetryPolicy,
}

impl DiskStore {
    /// Opens (or initializes) a store directory with the given memtable byte
    /// budget, returning the store plus the recovered probability-space
    /// recipe. On a fresh directory the recipe is empty.
    pub fn open(dir: &Path, budget: usize) -> Result<(DiskStore, RecoveredMeta), StorageError> {
        std::fs::create_dir_all(dir)?;
        let referenced = read_manifest(&dir.join("MANIFEST"))?;
        let mut runs = Vec::with_capacity(referenced.len());
        let mut next_run_id = 0u64;
        for name in &referenced {
            runs.push(Run::open(&dir.join(name))?);
            if let Some(id) = run_id_of(name) {
                next_run_id = next_run_id.max(id + 1);
            }
        }
        // Garbage-collect orphan runs from crashes between run write and
        // manifest append — their rows are still in the WAL.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if run_id_of(&name).is_some() && !referenced.contains(&name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        // Highest sequence number any run covers: rows at or below it are
        // durable in runs, so replay must not re-insert them.
        let covered: Option<u64> = runs.iter().filter(|r| r.rows() > 0).map(Run::max_seq).max();
        let mut next_seq = covered.map_or(0, |c| c + 1);

        let mut meta = RecoveredMeta::default();
        let mut catalog: BTreeMap<String, TableEntry> = BTreeMap::new();
        let mut memtable: BTreeMap<(u64, u64), Vec<u8>> = BTreeMap::new();
        let (records, durable_len) = Wal::replay_durable(&dir.join("wal.log"))?;
        for record in records {
            match record {
                WalRecord::Epoch { generation } => meta.generation = Some(generation),
                WalRecord::Variable { name, distribution, origin } => {
                    meta.vars.push((name, distribution, origin));
                }
                WalRecord::Table { logical_id, epoch, schema } => {
                    catalog.insert(
                        schema.name.clone(),
                        TableEntry { logical_id, epoch, schema, seqs: Vec::new() },
                    );
                }
                WalRecord::Row { uid, seq, payload } => {
                    next_seq = next_seq.max(seq + 1);
                    if covered.is_none_or(|c| seq > c) {
                        memtable.insert((uid, seq), payload);
                    }
                }
                WalRecord::Watermark { next_seq: n } => next_seq = next_seq.max(n),
            }
        }
        // Row sequence numbers per live incarnation, in insertion order:
        // runs are seq-disjoint and opened in age order (each yields its
        // rows seq-ascending per uid), then the refilled memtable.
        let mem_bytes = memtable.values().map(|payload| payload.len() + MEM_ROW_OVERHEAD).sum();
        for entry in catalog.values_mut() {
            let uid = entry.uid();
            let mut seqs: Vec<u64> = Vec::new();
            for run in &runs {
                for row in run.scan_table(uid)? {
                    seqs.push(row?.0);
                }
            }
            seqs.extend(memtable.range((uid, 0)..=(uid, u64::MAX)).map(|(&(_, seq), _)| seq));
            entry.seqs = seqs;
        }
        meta.table_ids = catalog.iter().map(|(name, e)| (name.clone(), e.logical_id)).collect();
        // Discard a torn tail (crash mid-write, or an injected torn write)
        // before reopening the log: replay skips the dead bytes, but new
        // appends landing after them would be unreachable on the *next*
        // replay, silently losing acknowledged writes.
        let wal_path = dir.join("wal.log");
        if let Ok(file_meta) = std::fs::metadata(&wal_path) {
            if file_meta.len() > durable_len {
                std::fs::OpenOptions::new().write(true).open(&wal_path)?.set_len(durable_len)?;
            }
        }
        let wal = Wal::open(&wal_path)?;
        let store = DiskStore {
            dir: dir.to_path_buf(),
            wal,
            memtable,
            mem_bytes,
            budget,
            runs,
            catalog,
            next_seq,
            next_run_id,
            flushes: 0,
            compactions: 0,
            wal_rotations: 0,
            obs: StoreObs::default(),
            fault: Fault::disabled(),
            retry: RetryPolicy::default(),
        };
        Ok((store, meta))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Replaces the transient-I/O retry policy (defaults to
    /// [`RetryPolicy::default`]).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    fn uid_of(&self, table: &str) -> Option<u64> {
        self.catalog.get(table).map(TableEntry::uid)
    }

    /// Runs a fallible mutating I/O section under the retry policy,
    /// counting each absorbed transient failure as `storage.retries` plus a
    /// `storage.retry` trace event.
    fn retried<T>(
        &mut self,
        mut op: impl FnMut(&mut DiskStore) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let retry = self.retry;
        let retries = self.obs.retries.clone();
        let obs = self.obs.obs.clone();
        retry.run_with(
            |attempt, e| {
                retries.inc();
                obs.event("storage.retry")
                    .u64("attempt", attempt as u64)
                    .str("error", &e.to_string())
                    .emit();
            },
            || op(self),
        )
    }

    /// [`DiskStore::retried`] for read paths (`&self` sections).
    fn retried_ref<T>(
        &self,
        mut op: impl FnMut(&DiskStore) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        self.retry.run_with(
            |attempt, e| {
                self.obs.retries.inc();
                self.obs
                    .obs
                    .event("storage.retry")
                    .u64("attempt", attempt as u64)
                    .str("error", &e.to_string())
                    .emit();
            },
            || op(self),
        )
    }

    /// Drains the memtable into a new run and commits it to the MANIFEST.
    /// No-op when the memtable is empty.
    pub fn flush_memtable(&mut self) -> Result<(), StorageError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        // Rows must be durable in the WAL before the run supersedes them.
        // Failpoint `storage.flush` + the `wal.sync` site inside sync.
        self.retried(|s| {
            s.fault.check("storage.flush")?;
            s.wal.sync()
        })?;
        let rows = self.memtable.len();
        // The whole run write is one retryable unit: a failed attempt leaves
        // at worst an unreferenced orphan file (garbage-collected at the
        // next open) and a fresh run id, never a dangling manifest entry.
        let run = self.retried(|s| {
            let name = format!("run-{}.dat", s.next_run_id);
            s.next_run_id += 1;
            let mut writer = RunWriter::create(&s.dir.join(&name), s.memtable.len())?;
            for (&(uid, seq), payload) in &s.memtable {
                writer.push(uid, seq, payload)?;
            }
            let run = writer.finish()?;
            append_manifest(&s.dir.join("MANIFEST"), &format!("add {name}\n"))?;
            Ok(run)
        })?;
        self.runs.push(run);
        self.memtable.clear();
        self.mem_bytes = 0;
        self.flushes += 1;
        self.obs.flushes.inc();
        self.obs.obs.event("storage.flush").u64("rows", rows as u64).emit();
        // Every logged row is now durable in a manifest-referenced run, so
        // the log can shed its row records.
        self.rotate_wal()?;
        if self.runs.len() >= COMPACT_RUNS {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the WAL without its row records — the memtable is empty and
    /// every logged row is covered by a manifest-referenced run, so only the
    /// metadata records (epochs, variables, tables) plus a
    /// [`WalRecord::Watermark`] pinning `next_seq` need to survive. The new
    /// log is written to a temporary file, fsynced, and atomically renamed
    /// over `wal.log`; a crash at any point leaves one complete log.
    fn rotate_wal(&mut self) -> Result<(), StorageError> {
        let old_bytes = self.wal.len();
        // The rewrite is idempotent (it reads whatever `wal.log` currently
        // is), so the whole section retries as one unit. Failpoint
        // `storage.rotate`, plus the `wal.append`/`wal.sync` sites of the
        // temporary log itself.
        self.retried(|s| {
            s.fault.check("storage.rotate")?;
            let records = Wal::replay(s.wal.path())?;
            let tmp = s.dir.join("wal.log.tmp");
            // A crashed rotation can leave a stale tmp file; `Wal::open`
            // appends, so clear it first.
            let _ = std::fs::remove_file(&tmp);
            let mut fresh = Wal::open(&tmp)?;
            fresh.attach_fault(&s.fault);
            for rec in &records {
                if !matches!(rec, WalRecord::Row { .. } | WalRecord::Watermark { .. }) {
                    fresh.append(rec)?;
                }
            }
            fresh.append(&WalRecord::Watermark { next_seq: s.next_seq })?;
            fresh.sync()?;
            drop(fresh);
            std::fs::rename(&tmp, s.dir.join("wal.log"))?;
            s.wal = Wal::open(&s.dir.join("wal.log"))?;
            s.wal.attach_fault(&s.fault);
            Ok(())
        })?;
        self.wal_rotations += 1;
        self.obs.wal_rotations.inc();
        self.obs.wal_bytes.set(self.wal.len());
        self.obs
            .obs
            .event("storage.rotation")
            .u64("old_bytes", old_bytes)
            .u64("new_bytes", self.wal.len())
            .u64("next_seq", self.next_seq)
            .emit();
        Ok(())
    }

    /// Merges every live run into one, dropping rows of superseded table
    /// incarnations. Surviving payloads are copied **byte-for-byte** — the
    /// annotation-preservation invariant of the store.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        if self.runs.len() < 2 {
            return Ok(());
        }
        let expected: usize = self.runs.iter().map(Run::rows).sum();
        // The merge + manifest swap is one retryable unit (failpoint
        // `storage.compact`): every attempt writes a fresh run id, so a
        // failed attempt leaves only an orphan file and the old runs stay
        // live until the swap line is durable.
        let merged = self.retried(|s| {
            s.fault.check("storage.compact")?;
            let live: Vec<u64> = s.catalog.values().map(TableEntry::uid).collect();
            let name = format!("run-{}.dat", s.next_run_id);
            s.next_run_id += 1;
            let mut writer = RunWriter::create(&s.dir.join(&name), expected)?;
            {
                let mut sources = Vec::with_capacity(s.runs.len());
                for run in &s.runs {
                    sources.push(run.scan_all()?.peekable());
                }
                // K-way merge by (uid, seq); the run count is small, so a
                // linear min scan beats heap bookkeeping.
                loop {
                    let mut best: Option<(usize, (u64, u64))> = None;
                    for (i, src) in sources.iter_mut().enumerate() {
                        if let Some(item) = src.peek() {
                            let key = match item {
                                Ok((uid, seq, _)) => (*uid, *seq),
                                Err(_) => {
                                    // Surface the error by consuming it below.
                                    best = Some((i, (0, 0)));
                                    break;
                                }
                            };
                            if best.is_none_or(|(_, k)| key < k) {
                                best = Some((i, key));
                            }
                        }
                    }
                    let Some((i, _)) = best else { break };
                    let (uid, seq, payload) = sources[i].next().expect("peeked item")?;
                    if live.contains(&uid) {
                        writer.push(uid, seq, &payload)?;
                    }
                }
            }
            let merged = writer.finish()?;
            let old_names: Vec<String> = s
                .runs
                .iter()
                .filter_map(|r| r.path().file_name().map(|n| n.to_string_lossy().into_owned()))
                .collect();
            append_manifest(
                &s.dir.join("MANIFEST"),
                &format!("swap {name} <- {}\n", old_names.join(" ")),
            )?;
            Ok(merged)
        })?;
        for old in &self.runs {
            let _ = std::fs::remove_file(old.path());
        }
        let runs_in = self.runs.len();
        self.runs = vec![merged];
        self.compactions += 1;
        self.obs.compactions.inc();
        self.obs
            .obs
            .event("storage.compaction")
            .u64("runs_in", runs_in as u64)
            .u64("rows_in", expected as u64)
            .u64("rows_out", self.runs[0].rows() as u64)
            .emit();
        Ok(())
    }

    /// Point lookup of one row of `table`'s current incarnation by its
    /// global sequence number: the memtable first, then the runs newest to
    /// oldest. Each run's bloom filter screens the key before any file I/O;
    /// with observability attached the screen outcomes are counted as
    /// `storage.bloom.pass` / `storage.bloom.reject`.
    pub fn get_row(&self, table: &str, seq: u64) -> Result<Option<AnnotatedTuple>, StorageError> {
        let Some(uid) = self.uid_of(table) else { return Ok(None) };
        if let Some(payload) = self.memtable.get(&(uid, seq)) {
            return Ok(Some(DiskStore::decode_or_panic(payload)));
        }
        // Failpoint `storage.get`; the run probe retries as a unit (point
        // reads are side-effect-free, so a retry only recounts the bloom
        // screen metrics).
        self.retried_ref(|s| {
            s.fault.check("storage.get")?;
            for run in s.runs.iter().rev() {
                if !run.may_contain(uid, seq) {
                    s.obs.bloom_reject.inc();
                    continue;
                }
                s.obs.bloom_pass.inc();
                if let Some(payload) = run.get(uid, seq)? {
                    return Ok(Some(DiskStore::decode_or_panic(&payload)));
                }
            }
            Ok(None)
        })
    }

    fn decode_or_panic(payload: &[u8]) -> AnnotatedTuple {
        // Manifest-referenced runs are complete by construction and WAL rows
        // are CRC-guarded; a decode failure here means external corruption of
        // committed data, which has no sound continuation.
        decode_tuple(payload).unwrap_or_else(|e| panic!("corrupt committed tuple payload: {e}"))
    }
}

fn run_id_of(file_name: &str) -> Option<u64> {
    file_name.strip_prefix("run-")?.strip_suffix(".dat")?.parse().ok()
}

/// Reads the MANIFEST, returning the live run file names in age order. An
/// incomplete (torn) final line is ignored.
fn read_manifest(path: &Path) -> Result<Vec<String>, StorageError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let complete = match text.rfind('\n') {
        Some(last) => &text[..=last],
        None => "",
    };
    let mut live: Vec<String> = Vec::new();
    for line in complete.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("add") => {
                if let Some(name) = parts.next() {
                    live.push(name.to_owned());
                }
            }
            Some("swap") => {
                let Some(new) = parts.next() else { continue };
                let removed: Vec<&str> = parts.skip(1).collect(); // skip "<-"
                live.retain(|n| !removed.contains(&n.as_str()));
                live.push(new.to_owned());
            }
            _ => return Err(StorageError::corrupt(format!("unrecognized MANIFEST line {line:?}"))),
        }
    }
    Ok(live)
}

fn append_manifest(path: &Path, line: &str) -> Result<(), StorageError> {
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(line.as_bytes())?;
    file.sync_data()?;
    Ok(())
}

impl TableStore for DiskStore {
    /// Cloning a disk store **materializes it to a heap snapshot**: two live
    /// handles on one WAL directory would corrupt each other, and a
    /// materialized clone also closes the `Database::clone` divergence edge —
    /// the clone's subsequent mutations cannot share storage state with the
    /// original, only the probability space's own generation protocol, which
    /// already detects divergent clone families.
    fn clone_box(&self) -> Box<dyn TableStore> {
        let mut heap = crate::storage::HeapStore::new();
        for (name, entry) in &self.catalog {
            heap.create_table(entry.schema.clone(), entry.logical_id)
                .expect("heap create cannot fail");
            for tuple in self.scan(name) {
                heap.append(name, tuple.as_ref()).expect("heap append cannot fail");
            }
        }
        Box::new(heap)
    }

    fn create_table(&mut self, schema: Schema, logical_id: u32) -> Result<(), StorageError> {
        let epoch = match self.catalog.get(&schema.name) {
            Some(existing) => existing.epoch + 1,
            None => 0,
        };
        let rec = WalRecord::Table { logical_id, epoch, schema: schema.clone() };
        self.retried(|s| s.wal.append(&rec))?;
        self.obs.wal_appends.inc();
        self.obs.wal_bytes.set(self.wal.len());
        self.catalog.insert(
            schema.name.clone(),
            TableEntry { logical_id, epoch, schema, seqs: Vec::new() },
        );
        Ok(())
    }

    fn append(&mut self, table: &str, tuple: &AnnotatedTuple) -> Result<(), StorageError> {
        let entry = self
            .catalog
            .get(table)
            .ok_or_else(|| StorageError::corrupt(format!("append to unknown table {table:?}")))?;
        let uid = entry.uid();
        let seq = self.next_seq;
        let payload = encode_tuple(tuple);
        let rec = WalRecord::Row { uid, seq, payload: payload.clone() };
        // Nothing is applied — no seq consumed, no memtable insert — until
        // the WAL accepted the record: a failed append is unacknowledged and
        // recovery owes the caller nothing for it.
        self.retried(|s| s.wal.append(&rec))?;
        self.next_seq = seq + 1;
        self.obs.wal_appends.inc();
        self.obs.wal_bytes.set(self.wal.len());
        self.catalog.get_mut(table).expect("entry checked above").seqs.push(seq);
        self.mem_bytes += payload.len() + MEM_ROW_OVERHEAD;
        self.memtable.insert((uid, seq), payload);
        if self.mem_bytes > self.budget {
            // The row is already durable in the WAL, so the append is
            // acknowledged regardless of what happens to the budget-triggered
            // drain: a failed flush (after retries) is deferred — the
            // memtable stays over budget and the next append or explicit
            // flush tries again — rather than failing a write that recovery
            // would replay anyway.
            if let Err(e) = self.flush_memtable() {
                obs::warn("storage", &format!("memtable flush deferred: {e}"));
            }
        }
        Ok(())
    }

    fn schema(&self, table: &str) -> Option<&Schema> {
        self.catalog.get(table).map(|e| &e.schema)
    }

    fn table_len(&self, table: &str) -> usize {
        self.catalog.get(table).map_or(0, TableEntry::rows)
    }

    fn table_names(&self) -> Vec<&str> {
        self.catalog.keys().map(String::as_str).collect()
    }

    fn scan<'a>(&'a self, table: &str) -> Box<dyn Iterator<Item = Cow<'a, AnnotatedTuple>> + 'a> {
        let Some(uid) = self.uid_of(table) else {
            return Box::new(std::iter::empty());
        };
        // Runs are seq-disjoint and flushed in seq order, so chaining them in
        // age order, then the memtable, yields rows in insertion order.
        // Iterator creation (open + seek) retries transient failures under
        // the policy (failpoint `storage.scan`); a permanent failure — or a
        // mid-iteration read error below — has no sound continuation inside
        // an `Iterator` signature (silently truncating the scan would be an
        // unsound lineage), so it panics and relies on the engine-level
        // panic isolation to degrade just the affected item.
        let mut run_iters = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            let iter = self
                .retried_ref(|s| {
                    s.fault.check("storage.scan")?;
                    run.scan_table(uid)
                })
                .unwrap_or_else(|e| panic!("run scan failed after retries: {e}"));
            run_iters.push(iter);
        }
        let from_runs = run_iters.into_iter().flatten().map(|row| {
            let (_, payload) = row.unwrap_or_else(|e| panic!("run scan failed: {e}"));
            Cow::Owned(DiskStore::decode_or_panic(&payload))
        });
        let from_mem = self
            .memtable
            .range((uid, 0)..=(uid, u64::MAX))
            .map(|(_, payload)| Cow::Owned(DiskStore::decode_or_panic(payload)));
        Box::new(from_runs.chain(from_mem))
    }

    fn log_variable(
        &mut self,
        name: &str,
        distribution: &[f64],
        origin: Option<u32>,
    ) -> Result<(), StorageError> {
        let rec = WalRecord::Variable {
            name: name.to_owned(),
            distribution: distribution.to_vec(),
            origin,
        };
        self.retried(|s| s.wal.append(&rec))?;
        self.obs.wal_appends.inc();
        self.obs.wal_bytes.set(self.wal.len());
        Ok(())
    }

    fn log_epoch(&mut self, generation: u64) -> Result<(), StorageError> {
        let rec = WalRecord::Epoch { generation };
        self.retried(|s| s.wal.append(&rec))?;
        self.obs.wal_appends.inc();
        self.obs.wal_bytes.set(self.wal.len());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.retried(|s| s.wal.sync())
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            tables: self.catalog.len(),
            rows: self.catalog.values().map(TableEntry::rows).sum(),
            memtable_bytes: self.mem_bytes,
            wal_bytes: self.wal.len(),
            runs: self.runs.len(),
            run_rows: self.runs.iter().map(Run::rows).sum(),
            flushes: self.flushes,
            compactions: self.compactions,
            wal_rotations: self.wal_rotations,
        }
    }

    /// Positional point read: the catalog's per-incarnation seq index maps
    /// `index` straight to a global sequence number, and
    /// [`DiskStore::get_row`] probes the memtable and the run blooms —
    /// no table materialization, no scan.
    fn row_at(&self, table: &str, index: usize) -> Result<Option<AnnotatedTuple>, StorageError> {
        let Some(entry) = self.catalog.get(table) else { return Ok(None) };
        let Some(&seq) = entry.seqs.get(index) else { return Ok(None) };
        self.get_row(table, seq)
    }

    fn attach_obs(&mut self, obs: &obs::Obs) {
        self.obs = StoreObs::new(obs);
        self.obs.wal_bytes.set(self.wal.len());
    }

    fn attach_fault(&mut self, fault: &Fault) {
        self.fault = fault.clone();
        self.wal.attach_fault(fault);
    }
}
