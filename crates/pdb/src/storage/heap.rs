//! The default heap-resident table store — the pre-refactor
//! `BTreeMap<String, Relation>` behind the [`TableStore`] trait, with zero
//! behavior change: tuples are stored decoded, scans borrow them, and every
//! durability hook is a no-op.

use std::borrow::Cow;
use std::collections::BTreeMap;

use crate::relation::{AnnotatedTuple, Relation, Schema};
use crate::storage::{StorageError, StorageStats, TableStore};

/// In-memory [`TableStore`]: the `Database` default. See the
/// module docs above.
#[derive(Debug, Clone, Default)]
pub struct HeapStore {
    tables: BTreeMap<String, Relation>,
}

impl HeapStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        HeapStore::default()
    }
}

impl TableStore for HeapStore {
    fn clone_box(&self) -> Box<dyn TableStore> {
        Box::new(self.clone())
    }

    fn create_table(&mut self, schema: Schema, _logical_id: u32) -> Result<(), StorageError> {
        self.tables.insert(schema.name.clone(), Relation::empty(schema));
        Ok(())
    }

    fn append(&mut self, table: &str, tuple: &AnnotatedTuple) -> Result<(), StorageError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| StorageError::corrupt(format!("append to unknown table {table:?}")))?
            .push(tuple.clone());
        Ok(())
    }

    fn schema(&self, table: &str) -> Option<&Schema> {
        self.tables.get(table).map(|r| &r.schema)
    }

    fn table_len(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, Relation::len)
    }

    fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    fn scan<'a>(&'a self, table: &str) -> Box<dyn Iterator<Item = Cow<'a, AnnotatedTuple>> + 'a> {
        match self.tables.get(table) {
            Some(rel) => Box::new(rel.tuples.iter().map(Cow::Borrowed)),
            None => Box::new(std::iter::empty()),
        }
    }

    fn materialize(&self, table: &str) -> Option<Relation> {
        // Zero re-decode: the heap store hands back a clone of what it holds.
        self.tables.get(table).cloned()
    }

    fn row_at(&self, table: &str, index: usize) -> Result<Option<AnnotatedTuple>, StorageError> {
        // O(1) positional access — no scan walk.
        Ok(self.tables.get(table).and_then(|rel| rel.tuples.get(index)).cloned())
    }

    fn log_variable(
        &mut self,
        _name: &str,
        _distribution: &[f64],
        _origin: Option<u32>,
    ) -> Result<(), StorageError> {
        Ok(())
    }

    fn log_epoch(&mut self, _generation: u64) -> Result<(), StorageError> {
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            tables: self.tables.len(),
            rows: self.tables.values().map(Relation::len).sum(),
            ..StorageStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use events::Dnf;

    #[test]
    fn create_append_scan_round_trip() {
        let mut store = HeapStore::new();
        store.create_table(Schema::new("R", &["a"]), 0).unwrap();
        let t = AnnotatedTuple::new(vec![Value::Int(7)], Dnf::tautology());
        store.append("R", &t).unwrap();
        assert_eq!(store.table_len("R"), 1);
        assert_eq!(store.table_names(), vec!["R"]);
        let scanned: Vec<_> = store.scan("R").collect();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].as_ref(), &t);
        assert!(matches!(scanned[0], Cow::Borrowed(_)), "heap scans must not copy");
        let rel = store.materialize("R").unwrap();
        assert_eq!(rel.tuples, vec![t]);
    }

    #[test]
    fn replacement_drops_old_rows() {
        let mut store = HeapStore::new();
        store.create_table(Schema::new("R", &["a"]), 0).unwrap();
        store.append("R", &AnnotatedTuple::new(vec![Value::Int(1)], Dnf::tautology())).unwrap();
        store.create_table(Schema::new("R", &["b"]), 0).unwrap();
        assert_eq!(store.table_len("R"), 0);
        assert_eq!(store.schema("R").unwrap().columns, vec!["b"]);
    }

    #[test]
    fn unknown_tables_are_empty_and_appends_to_them_fail() {
        let mut store = HeapStore::new();
        assert_eq!(store.scan("nope").count(), 0);
        assert_eq!(store.table_len("nope"), 0);
        assert!(store.schema("nope").is_none());
        assert!(store.materialize("nope").is_none());
        let t = AnnotatedTuple::new(vec![Value::Int(1)], Dnf::tautology());
        assert!(store.append("nope", &t).is_err());
    }
}
