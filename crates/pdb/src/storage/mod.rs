//! Pluggable table storage for [`crate::Database`].
//!
//! The database's backbone is a [`TableStore`]: the default [`HeapStore`]
//! keeps decoded relations in RAM exactly like the pre-refactor
//! `BTreeMap<String, Relation>` (zero behavior change), while the LSM-style
//! [`DiskStore`] spills tuples through a write-ahead log, a byte-budgeted
//! memtable, and immutable sorted runs with bloom filters — the out-of-core
//! backend. Lineage construction streams tuples out of either store via
//! [`TableStore::scan`] without materializing relations, and the
//! [`DiskStore`] WAL doubles as the recovery log for the probability space:
//! its last epoch record restores the exact pre-crash generation +
//! watermark, so warm `SubformulaCache` entries survive a restart.

use std::borrow::Cow;
use std::fmt;

use crate::relation::{AnnotatedTuple, Relation, Schema};

pub mod encode;
pub mod run;
pub mod wal;

mod disk;
mod heap;

pub use disk::{DiskStore, RecoveredMeta, COMPACT_RUNS};
pub use heap::HeapStore;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// Committed data failed validation (bad frame, checksum, or encoding).
    Corrupt(String),
}

impl StorageError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StorageError::Corrupt(msg.into())
    }

    /// `true` when the failure is plausibly momentary and the operation is
    /// safe to retry: interrupted syscalls, timeouts, and would-block
    /// conditions (the kinds the deterministic fault injector also uses for
    /// its transient class). [`StorageError::Corrupt`] and every other I/O
    /// kind — including the `UnexpectedEof` surfaced by an injected torn
    /// write — are permanent: retrying could duplicate a partial frame or
    /// keep re-reading data that will never validate.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            StorageError::Corrupt(_) => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage state: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Point-in-time counters describing a store — resource accounting for
/// benches and tests. Heap stores report only `tables`/`rows`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Live tables in the catalog.
    pub tables: usize,
    /// Live rows across all tables (current incarnations only).
    pub rows: usize,
    /// Bytes charged against the memtable budget.
    pub memtable_bytes: usize,
    /// Current write-ahead-log length in bytes.
    pub wal_bytes: u64,
    /// Live immutable runs.
    pub runs: usize,
    /// Rows stored across live runs (including superseded incarnations not
    /// yet compacted away).
    pub run_rows: usize,
    /// Memtable flushes performed by this handle.
    pub flushes: u64,
    /// Compactions performed by this handle.
    pub compactions: u64,
    /// WAL rotations (truncating rewrites after a full flush) performed by
    /// this handle.
    pub wal_rotations: u64,
}

/// A table store: the persistence backbone behind [`crate::Database`].
///
/// # Invariants
///
/// Every implementation must uphold the following; the database layer, the
/// query evaluators, and the crash-recovery protocol all rely on them.
///
/// 1. **Insertion-order scans.** [`TableStore::scan`] yields a table's
///    tuples in exactly the order they were appended to the *current*
///    incarnation. Row numbering (`"R#i"` variable names), query-evaluation
///    results, and `materialize` all derive from this order.
/// 2. **Bit-exact annotations.** A scanned tuple compares equal — values,
///    variable ids, BID domain values, and probability `f64` bit patterns —
///    to the tuple that was appended, across any number of flushes,
///    compactions, restarts, and clones. Confidence computation over a
///    store-backed table is bit-identical to the heap path.
/// 3. **Replacement isolation.** After `create_table` for an existing name,
///    the table reads as empty: no row of the previous incarnation is ever
///    visible again, even before compaction reclaims it.
/// 4. **Durability ordering** (persistent stores). A tuple is logged before
///    it is applied; a run is complete and fsynced before the manifest
///    references it; recovery yields exactly the appends whose log records
///    are fully durable, in their original order.
/// 5. **Recovery-epoch fidelity** (persistent stores). `log_epoch` records
///    are replayed in order, and recovery reports the last one, so a revived
///    probability space restores the exact pre-crash generation; replaying
///    `log_variable` records in order reproduces identical `VarId`s and the
///    exact watermark.
/// 6. **Clone independence.** `clone_box` returns a handle whose subsequent
///    mutations are invisible to the original (and vice versa); two handles
///    never share mutable persistent state.
pub trait TableStore: fmt::Debug + Send + Sync {
    /// Clones the store into an independent handle (invariant 6).
    fn clone_box(&self) -> Box<dyn TableStore>;

    /// Creates a table, or replaces it (fresh incarnation, invariant 3) if
    /// the name exists. `logical_id` is the database's stable table id.
    fn create_table(&mut self, schema: Schema, logical_id: u32) -> Result<(), StorageError>;

    /// Appends one tuple to an existing table.
    fn append(&mut self, table: &str, tuple: &AnnotatedTuple) -> Result<(), StorageError>;

    /// The table's schema, if it exists.
    fn schema(&self, table: &str) -> Option<&Schema>;

    /// Number of rows in the table's current incarnation (0 if absent).
    fn table_len(&self, table: &str) -> usize;

    /// All table names, sorted.
    fn table_names(&self) -> Vec<&str>;

    /// Streams the table's tuples in insertion order (invariant 1). Heap
    /// stores lend their tuples (`Cow::Borrowed`); disk stores decode each
    /// row on the fly (`Cow::Owned`) so resident memory stays bounded by the
    /// memtable budget, not the table size. Unknown tables yield an empty
    /// stream.
    fn scan<'a>(&'a self, table: &str) -> Box<dyn Iterator<Item = Cow<'a, AnnotatedTuple>> + 'a>;

    /// Materializes the table as an owned [`Relation`] snapshot. The default
    /// builds it from [`TableStore::scan`]; heap stores override it with a
    /// straight clone.
    fn materialize(&self, table: &str) -> Option<Relation> {
        let schema = self.schema(table)?.clone();
        let mut rel = Relation::empty(schema);
        for tuple in self.scan(table) {
            rel.push(tuple.into_owned());
        }
        Some(rel)
    }

    /// Records a probability-space variable append (name, full distribution,
    /// origin table) in the durability log. No-op for volatile stores.
    fn log_variable(
        &mut self,
        name: &str,
        distribution: &[f64],
        origin: Option<u32>,
    ) -> Result<(), StorageError>;

    /// Records a generation change — the recovery epoch (invariant 5).
    /// No-op for volatile stores.
    fn log_epoch(&mut self, generation: u64) -> Result<(), StorageError>;

    /// Forces logged state to stable storage. No-op for volatile stores.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Point-in-time resource counters.
    fn stats(&self) -> StorageStats;

    /// The `index`-th row (insertion order, invariant 1) of the table's
    /// current incarnation, or `None` when the table or index is absent.
    /// The default walks [`TableStore::scan`]; stores with keyed access
    /// override it with a point read that avoids materializing the table.
    fn row_at(&self, table: &str, index: usize) -> Result<Option<AnnotatedTuple>, StorageError> {
        Ok(self.scan(table).nth(index).map(Cow::into_owned))
    }

    /// Attaches an observability sink. Instrumented stores (the
    /// [`DiskStore`]) start emitting `storage.*` metrics and trace events;
    /// the default is a no-op so volatile stores need no handles.
    fn attach_obs(&mut self, _obs: &obs::Obs) {}

    /// Attaches a fault-injection handle ([`crate::fault::Fault`]).
    /// Instrumented stores start consulting their failpoint sites; the
    /// default is a no-op so volatile stores stay fault-free.
    fn attach_fault(&mut self, _fault: &crate::fault::Fault) {}
}

/// A scratch directory under the system temp dir, removed on drop. Used by
/// the storage tests and the out-of-core bench; public because integration
/// tests and the bench crate need it too.
#[doc(hidden)]
pub mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// Self-cleaning scratch directory (see the module docs).
    #[derive(Debug)]
    pub struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        /// Creates a fresh directory namespaced by `label`, the process id,
        /// and a counter — collision-free without a randomness source.
        pub fn new(label: &str) -> TempDir {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("pdb-storage-{label}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create scratch dir");
            TempDir { path }
        }

        /// The directory path.
        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}
