//! Byte codec for the storage layer.
//!
//! Every on-disk artifact of [`crate::storage`] — WAL records, run rows,
//! manifest entries — is built from the little-endian primitives here. The
//! codec round-trips probability annotations **bit-for-bit**: `f64`s travel
//! as their IEEE-754 bit patterns, variable ids and BID domain values as raw
//! `u32`s, so a decoded [`AnnotatedTuple`] compares equal to the one that was
//! written and recovered confidences are bit-identical to pre-crash ones.

use events::{Atom, Clause, Dnf, VarId};

use crate::relation::AnnotatedTuple;
use crate::storage::StorageError;
use crate::value::Value;

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bit pattern (lossless).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a [`Value`] (tag byte + payload).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            put_u64(buf, *i as u64);
        }
        Value::Str(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

/// Appends a lineage DNF: clause count, then per clause an atom count and
/// `(var, value)` pairs. Atoms are written in the clause's canonical sorted
/// order, so encoding is deterministic.
pub fn put_dnf(buf: &mut Vec<u8>, dnf: &Dnf) {
    put_u32(buf, dnf.len() as u32);
    for clause in dnf.clauses() {
        put_u32(buf, clause.len() as u32);
        for atom in clause.atoms() {
            put_u32(buf, atom.var.0);
            put_u32(buf, atom.value);
        }
    }
}

/// Encodes a full annotated tuple (values + lineage) as a standalone payload.
pub fn encode_tuple(tuple: &AnnotatedTuple) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + tuple.values.len() * 10);
    put_u32(&mut buf, tuple.values.len() as u32);
    for v in &tuple.values {
        put_value(&mut buf, v);
    }
    put_dnf(&mut buf, &tuple.lineage);
    buf
}

/// A bounds-checked read cursor over an encoded buffer.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::corrupt(format!(
                "unexpected end of record: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        self.take(n)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::corrupt("non-UTF-8 string payload"))
    }

    /// Reads a [`Value`].
    pub fn value(&mut self) -> Result<Value, StorageError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.u64()? as i64)),
            1 => Ok(Value::Str(self.string()?)),
            tag => Err(StorageError::corrupt(format!("unknown value tag {tag}"))),
        }
    }

    /// Reads a lineage DNF.
    pub fn dnf(&mut self) -> Result<Dnf, StorageError> {
        let n = self.u32()? as usize;
        let mut clauses = Vec::with_capacity(n);
        for _ in 0..n {
            let atoms = self.u32()? as usize;
            let mut clause = Vec::with_capacity(atoms);
            for _ in 0..atoms {
                let var = VarId(self.u32()?);
                let value = self.u32()?;
                clause.push(Atom::new(var, value));
            }
            clauses.push(Clause::from_atoms(clause));
        }
        Ok(Dnf::from_clauses(clauses))
    }
}

/// Decodes a payload produced by [`encode_tuple`].
pub fn decode_tuple(payload: &[u8]) -> Result<AnnotatedTuple, StorageError> {
    let mut cur = Cursor::new(payload);
    let arity = cur.u32()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(cur.value()?);
    }
    let lineage = cur.dnf()?;
    if cur.remaining() != 0 {
        return Err(StorageError::corrupt("trailing bytes after tuple payload"));
    }
    Ok(AnnotatedTuple::new(values, lineage))
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Guards every WAL
/// frame against torn or bit-rotted tails.
pub fn crc32(data: &[u8]) -> u32 {
    // The 256-entry table is tiny; computing it per call keeps the codec
    // state-free and the cost is dwarfed by the I/O it protects.
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// SplitMix64 — the hash behind the run bloom filters. Deterministic, well
/// mixed, and dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_round_trip_is_bit_exact() {
        let mut space = events::ProbabilitySpace::new();
        let x = space.add_bool("x", 0.1 + 0.2); // deliberately non-representable sum
        let y = space.add_discrete("y", vec![0.25, 0.5, 0.25]);
        let lineage = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![Atom::pos(x), Atom::new(y, 2)]),
            Clause::from_bools(&[x]),
        ]);
        let tuple =
            AnnotatedTuple::new(vec![Value::Int(-42), Value::str("naïve")], lineage.clone());
        let decoded = decode_tuple(&encode_tuple(&tuple)).expect("round trip");
        assert_eq!(decoded, tuple);
        assert_eq!(decoded.lineage, lineage);
    }

    #[test]
    fn tautology_and_empty_lineages_round_trip() {
        for lineage in [Dnf::tautology(), Dnf::empty()] {
            let tuple = AnnotatedTuple::new(vec![Value::Int(1)], lineage);
            assert_eq!(decode_tuple(&encode_tuple(&tuple)).unwrap(), tuple);
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let tuple = AnnotatedTuple::new(vec![Value::str("abc")], Dnf::tautology());
        let bytes = encode_tuple(&tuple);
        for cut in 0..bytes.len() {
            assert!(decode_tuple(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_tuple(&extended).is_err(), "trailing bytes must fail");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn splitmix_spreads_nearby_keys() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF, b & 0xFFFF, "low bits must differ for bloom slots");
    }
}
