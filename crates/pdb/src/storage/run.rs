//! Immutable sorted runs — the on-disk level of the LSM store.
//!
//! A run is a sequence of row frames `[u64 uid][u64 seq][u32 len][payload]`
//! sorted by `(uid, seq)`, written in one pass from a drained memtable (or a
//! compaction merge) and fsynced **before** the manifest references it — a
//! run named by the manifest is therefore always complete, so rows carry no
//! per-frame checksum. Payload bytes are copied verbatim through every
//! flush and compaction: probability annotations (variable ids, BID domain
//! values, `f64` bit patterns) are never re-encoded once written.
//!
//! Each open run keeps two small in-memory structures rebuilt on open:
//!
//! * a **bloom filter** over `(uid, seq)` keys ([`BLOOM_BITS_PER_KEY`] bits
//!   per key, [`BLOOM_HASHES`] probes) so point lookups skip runs that
//!   cannot contain the key, and
//! * a **sparse index** of one `(uid, seq, offset)` entry every
//!   [`INDEX_STRIDE`] rows, so scans and lookups seek near their target and
//!   read forward instead of scanning from the start.
//!
//! Decoded tuples are never cached: a scan streams frames through a
//! fixed-size buffered reader, which is what keeps resident memory bounded
//! by the memtable budget rather than the dataset.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::storage::encode::splitmix64;
use crate::storage::StorageError;

/// Bloom filter bits allocated per key (≈1% false positives at 7 probes).
pub const BLOOM_BITS_PER_KEY: usize = 10;
/// Number of bloom probes per key.
pub const BLOOM_HASHES: u32 = 7;
/// One sparse-index entry is kept every this many rows.
pub const INDEX_STRIDE: usize = 16;

fn key_hash(uid: u64, seq: u64) -> u64 {
    splitmix64(uid ^ splitmix64(seq))
}

/// A split-and-probe bloom filter over row keys.
#[derive(Debug, Clone)]
struct Bloom {
    bits: Vec<u64>,
}

impl Bloom {
    fn with_keys(n: usize) -> Bloom {
        let nbits = (n.max(1) * BLOOM_BITS_PER_KEY).next_power_of_two().max(64);
        Bloom { bits: vec![0u64; nbits / 64] }
    }

    fn nbits(&self) -> u64 {
        self.bits.len() as u64 * 64
    }

    fn insert(&mut self, uid: u64, seq: u64) {
        let h = key_hash(uid, seq);
        let (h1, h2) = (h, h.rotate_left(32) | 1);
        for i in 0..BLOOM_HASHES as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits();
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    fn may_contain(&self, uid: u64, seq: u64) -> bool {
        let h = key_hash(uid, seq);
        let (h1, h2) = (h, h.rotate_left(32) | 1);
        (0..BLOOM_HASHES as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits();
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

/// An open immutable run. See the [module docs](self) for the file format
/// and the in-memory structures.
#[derive(Debug, Clone)]
pub struct Run {
    path: PathBuf,
    /// Sparse `(uid, seq, byte offset)` entries, one per [`INDEX_STRIDE`]
    /// rows, always including row 0.
    index: Vec<(u64, u64, u64)>,
    bloom: Bloom,
    rows: usize,
    /// Largest sequence number in the run — WAL replay skips rows at or
    /// below the maximum over all live runs.
    max_seq: u64,
}

/// Streaming writer for a new run: rows are pushed in `(uid, seq)` order and
/// spill straight through a buffered file handle, so writing a run never
/// holds more than one row frame in memory. `expected_rows` sizes the bloom
/// filter (memtable length for flushes, summed run lengths for compactions —
/// both known exactly up front).
#[derive(Debug)]
pub struct RunWriter {
    writer: std::io::BufWriter<File>,
    path: PathBuf,
    bloom: Bloom,
    index: Vec<(u64, u64, u64)>,
    rows: usize,
    max_seq: u64,
    offset: u64,
    last_key: Option<(u64, u64)>,
}

impl RunWriter {
    /// Creates (truncating) the run file at `path`.
    pub fn create(path: &Path, expected_rows: usize) -> Result<RunWriter, StorageError> {
        let file = File::create(path)?;
        Ok(RunWriter {
            writer: std::io::BufWriter::with_capacity(64 * 1024, file),
            path: path.to_path_buf(),
            bloom: Bloom::with_keys(expected_rows),
            index: Vec::with_capacity(expected_rows / INDEX_STRIDE + 1),
            rows: 0,
            max_seq: 0,
            offset: 0,
            last_key: None,
        })
    }

    /// Appends one row frame; payload bytes are written verbatim.
    ///
    /// # Panics
    /// Panics if keys are pushed out of `(uid, seq)` order — runs are sorted
    /// by construction and every reader relies on it.
    pub fn push(&mut self, uid: u64, seq: u64, payload: &[u8]) -> Result<(), StorageError> {
        if let Some(last) = self.last_key {
            assert!(last < (uid, seq), "run rows must arrive in (uid, seq) order");
        }
        self.last_key = Some((uid, seq));
        if self.rows.is_multiple_of(INDEX_STRIDE) {
            self.index.push((uid, seq, self.offset));
        }
        self.writer.write_all(&uid.to_le_bytes())?;
        self.writer.write_all(&seq.to_le_bytes())?;
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.offset += 20 + payload.len() as u64;
        self.bloom.insert(uid, seq);
        self.max_seq = self.max_seq.max(seq);
        self.rows += 1;
        Ok(())
    }

    /// Flushes, fsyncs, and returns the open [`Run`]. Only after this returns
    /// may the manifest reference the file.
    pub fn finish(self) -> Result<Run, StorageError> {
        let file = self.writer.into_inner().map_err(|e| StorageError::Io(e.into_error()))?;
        file.sync_all()?;
        Ok(Run {
            path: self.path,
            index: self.index,
            bloom: self.bloom,
            rows: self.rows,
            max_seq: self.max_seq,
        })
    }
}

impl Run {
    /// Writes a run from rows **already sorted** by `(uid, seq)`, fsyncs it,
    /// and returns the open handle — [`RunWriter`] in one call.
    pub fn write<'a, I>(path: &Path, rows: I) -> Result<Run, StorageError>
    where
        I: IntoIterator<Item = (u64, u64, &'a [u8])>,
    {
        let rows: Vec<(u64, u64, &[u8])> = rows.into_iter().collect();
        let mut writer = RunWriter::create(path, rows.len())?;
        for (uid, seq, payload) in rows {
            writer.push(uid, seq, payload)?;
        }
        writer.finish()
    }

    /// Opens an existing run, rebuilding the bloom filter and sparse index
    /// in one sequential pass (runs referenced by the manifest are complete
    /// by construction).
    pub fn open(path: &Path) -> Result<Run, StorageError> {
        let mut keys = Vec::new();
        let mut reader = FrameReader::open(path, 0)?;
        while let Some((uid, seq, offset, payload_len)) = reader.next_header()? {
            keys.push((uid, seq, offset));
            reader.skip_payload(payload_len)?;
        }
        let mut bloom = Bloom::with_keys(keys.len());
        let mut index = Vec::with_capacity(keys.len() / INDEX_STRIDE + 1);
        let mut max_seq = 0u64;
        for (i, &(uid, seq, offset)) in keys.iter().enumerate() {
            if i % INDEX_STRIDE == 0 {
                index.push((uid, seq, offset));
            }
            bloom.insert(uid, seq);
            max_seq = max_seq.max(seq);
        }
        Ok(Run { path: path.to_path_buf(), index, bloom, rows: keys.len(), max_seq })
    }

    /// Number of rows in the run.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Largest sequence number stored in the run.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// The run's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the sparse-index entry with the greatest key `<=`
    /// `(uid, seq)` (or 0 when the target precedes the first entry).
    fn seek_offset(&self, uid: u64, seq: u64) -> u64 {
        match self.index.partition_point(|&(u, s, _)| (u, s) <= (uid, seq)) {
            0 => 0,
            p => self.index[p - 1].2,
        }
    }

    /// Streams `(seq, payload)` for every row of table incarnation `uid`, in
    /// sequence order, reading forward from the sparse-index floor entry.
    pub fn scan_table(
        &self,
        uid: u64,
    ) -> Result<impl Iterator<Item = Result<(u64, Vec<u8>), StorageError>>, StorageError> {
        let reader = FrameReader::open(&self.path, self.seek_offset(uid, 0))?;
        Ok(TableScan { reader, uid, done: false })
    }

    /// Streams every row frame `(uid, seq, payload)` in key order — the
    /// compaction input, payloads verbatim.
    pub fn scan_all(&self) -> Result<RowScan, StorageError> {
        let reader = FrameReader::open(&self.path, 0)?;
        Ok(RowScan { reader })
    }

    /// `true` when the bloom filter cannot rule out key `(uid, seq)`. A
    /// `false` is definitive (the key is absent); a `true` is probabilistic
    /// (~1% false positives) and must be confirmed by [`Run::get`].
    pub fn may_contain(&self, uid: u64, seq: u64) -> bool {
        self.bloom.may_contain(uid, seq)
    }

    /// Point lookup of one row; the bloom filter screens out runs that
    /// cannot contain the key without touching the file.
    pub fn get(&self, uid: u64, seq: u64) -> Result<Option<Vec<u8>>, StorageError> {
        if !self.bloom.may_contain(uid, seq) {
            return Ok(None);
        }
        let mut reader = FrameReader::open(&self.path, self.seek_offset(uid, seq))?;
        while let Some((u, s, _, len)) = reader.next_header()? {
            if (u, s) == (uid, seq) {
                return Ok(Some(reader.read_payload(len)?));
            }
            if (u, s) > (uid, seq) {
                return Ok(None);
            }
            reader.skip_payload(len)?;
        }
        Ok(None)
    }
}

/// Buffered positional reader over row frames.
#[derive(Debug)]
struct FrameReader {
    reader: BufReader<File>,
    offset: u64,
}

impl FrameReader {
    fn open(path: &Path, offset: u64) -> Result<FrameReader, StorageError> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        Ok(FrameReader { reader: BufReader::with_capacity(64 * 1024, file), offset })
    }

    /// Reads the next frame header, returning `(uid, seq, frame offset,
    /// payload length)`, or `None` at a clean end of file.
    fn next_header(&mut self) -> Result<Option<(u64, u64, u64, usize)>, StorageError> {
        let mut header = [0u8; 20];
        let mut read = 0;
        while read < header.len() {
            match self.reader.read(&mut header[read..])? {
                0 if read == 0 => return Ok(None),
                0 => return Err(StorageError::corrupt("truncated run frame header")),
                n => read += n,
            }
        }
        let uid = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
        let at = self.offset;
        self.offset += 20 + len as u64;
        Ok(Some((uid, seq, at, len)))
    }

    fn read_payload(&mut self, len: usize) -> Result<Vec<u8>, StorageError> {
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|_| StorageError::corrupt("truncated run payload"))?;
        Ok(payload)
    }

    fn skip_payload(&mut self, len: usize) -> Result<(), StorageError> {
        self.reader.seek_relative(len as i64)?;
        Ok(())
    }
}

struct TableScan {
    reader: FrameReader,
    uid: u64,
    done: bool,
}

impl Iterator for TableScan {
    type Item = Result<(u64, Vec<u8>), StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            let header = match self.reader.next_header() {
                Ok(h) => h,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            let Some((uid, seq, _, len)) = header else {
                self.done = true;
                return None;
            };
            if uid > self.uid {
                self.done = true;
                return None;
            }
            if uid < self.uid {
                if let Err(e) = self.reader.skip_payload(len) {
                    self.done = true;
                    return Some(Err(e));
                }
                continue;
            }
            return match self.reader.read_payload(len) {
                Ok(payload) => Some(Ok((seq, payload))),
                Err(e) => {
                    self.done = true;
                    Some(Err(e))
                }
            };
        }
        None
    }
}

/// Streaming iterator over every `(uid, seq, payload)` row frame of a run
/// file in key order, returned by [`Run::scan_all`].
#[derive(Debug)]
pub struct RowScan {
    reader: FrameReader,
}

impl Iterator for RowScan {
    type Item = Result<(u64, u64, Vec<u8>), StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.reader.next_header() {
            Ok(Some((uid, seq, _, len))) => match self.reader.read_payload(len) {
                Ok(payload) => Some(Ok((uid, seq, payload))),
                Err(e) => Some(Err(e)),
            },
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::testutil::TempDir;

    fn sample_rows() -> Vec<(u64, u64, Vec<u8>)> {
        let mut rows = Vec::new();
        for uid in [1u64 << 32, 2u64 << 32, (2u64 << 32) | 1] {
            for i in 0..40u64 {
                rows.push((uid, uid.rotate_left(8) % 97 + i * 3, vec![uid as u8, i as u8]));
            }
        }
        rows.sort_by_key(|&(u, s, _)| (u, s));
        rows
    }

    fn write_sample(dir: &TempDir) -> Run {
        let rows = sample_rows();
        Run::write(
            &dir.path().join("run-0.dat"),
            rows.iter().map(|(u, s, p)| (*u, *s, p.as_slice())),
        )
        .unwrap()
    }

    #[test]
    fn write_then_scan_table_returns_rows_in_seq_order() {
        let dir = TempDir::new("run-scan");
        let run = write_sample(&dir);
        let uid = 2u64 << 32;
        let got: Vec<(u64, Vec<u8>)> =
            run.scan_table(uid).unwrap().collect::<Result<_, _>>().unwrap();
        let expected: Vec<(u64, Vec<u8>)> = sample_rows()
            .into_iter()
            .filter(|&(u, _, _)| u == uid)
            .map(|(_, s, p)| (s, p))
            .collect();
        assert_eq!(got, expected);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn open_rebuilds_the_same_run_state() {
        let dir = TempDir::new("run-open");
        let written = write_sample(&dir);
        let opened = Run::open(written.path()).unwrap();
        assert_eq!(opened.rows(), written.rows());
        assert_eq!(opened.max_seq(), written.max_seq());
        for (uid, seq, payload) in sample_rows() {
            assert_eq!(opened.get(uid, seq).unwrap(), Some(payload));
        }
    }

    #[test]
    fn point_lookups_hit_and_miss_correctly() {
        let dir = TempDir::new("run-get");
        let run = write_sample(&dir);
        for (uid, seq, payload) in sample_rows() {
            assert_eq!(run.get(uid, seq).unwrap(), Some(payload));
        }
        assert_eq!(run.get(99u64 << 32, 5).unwrap(), None);
        assert_eq!(run.get(1u64 << 32, u64::MAX).unwrap(), None);
    }

    #[test]
    fn bloom_screens_absent_uids() {
        let dir = TempDir::new("run-bloom");
        let run = write_sample(&dir);
        // Absent keys must be rejected; with ~1% FP rate, out of 1000 probes
        // an overwhelming majority is screened without touching the file.
        let screened = (0..1000u64)
            .filter(|&i| !run.bloom.may_contain((7u64 + i) << 33, i * 17 + 1_000_000))
            .count();
        assert!(screened > 950, "bloom screened only {screened}/1000 absent keys");
    }

    #[test]
    fn scan_all_streams_every_frame_in_key_order() {
        let dir = TempDir::new("run-scanall");
        let run = write_sample(&dir);
        let got: Vec<(u64, u64, Vec<u8>)> =
            run.scan_all().unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(got, sample_rows());
    }

    #[test]
    fn scanning_a_missing_uid_is_empty() {
        let dir = TempDir::new("run-missuid");
        let run = write_sample(&dir);
        assert_eq!(run.scan_table(3u64 << 32).unwrap().count(), 0);
        let empty = Run::write(&dir.path().join("empty.dat"), std::iter::empty()).unwrap();
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.scan_table(0).unwrap().count(), 0);
    }
}
