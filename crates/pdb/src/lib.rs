//! A probabilistic database substrate for confidence computation.
//!
//! The d-tree algorithm of the paper operates on *lineage* DNFs produced by
//! evaluating positive relational algebra queries on probabilistic databases.
//! This crate provides that substrate:
//!
//! * [`Value`], [`Schema`], [`Relation`] — relational data annotated with
//!   lineage formulas,
//! * [`Database`] — a collection of **tuple-independent** and
//!   **block-independent-disjoint (BID)** tables sharing one
//!   [`events::ProbabilitySpace`] (Figure 5 of the paper),
//! * [`algebra`] — positive relational algebra operators (select, project,
//!   join, union) that combine lineage with ∧ / ∨,
//! * [`ConjunctiveQuery`] — conjunctive queries with inequality predicates,
//!   a hash-join evaluator that returns one lineage DNF per answer tuple, the
//!   hierarchical-query test of Dalvi-Suciu (Definition 6.1), and the
//!   max-one / IQ classification of Olteanu-Huang (Definitions 6.5/6.6),
//! * [`sprout`] — the SPROUT-style exact confidence computation for
//!   hierarchical queries (the exact baseline of Section VII),
//! * [`motif`] — direct lineage constructors for the graph motif queries of
//!   the evaluation (triangle, path-2, path-3, two-degrees separation),
//! * [`confidence`] — a unified front-end dispatching to d-tree exact,
//!   d-tree approximation, SPROUT, Karp-Luby (`aconf`), or naive sampling,
//! * [`engine`] — the batched [`ConfidenceEngine`]: all answer tuples of a
//!   query in one call, parallel across lineages, with a shared sub-formula
//!   cache (per-batch by default, or long-lived across batches via
//!   [`ConfidenceEngine::with_shared_cache`]) and one batch-wide deadline,
//! * [`pool`] — streaming maintenance: [`Database::append_tuple_independent_rows`]
//!   grows tables in place, [`events::LineageDelta`]s describe the per-answer
//!   lineage growth, and [`ConfidenceEngine::maintain_batch`] applies them to
//!   a [`ResumablePool`] of suspended d-tree frontiers so each insert round
//!   re-refines only what the new clauses actually touched,
//! * [`fault`] — deterministic failpoints ([`fault::FaultPlan`]) threaded
//!   through every fallible layer, plus the [`fault::RetryPolicy`] (bounded
//!   exponential backoff with deterministic jitter) that absorbs transient
//!   storage I/O errors — the substrate for chaos testing and graceful
//!   degradation,
//! * [`storage`] — the pluggable [`storage::TableStore`] backbone behind
//!   [`Database`]: a heap store (default, zero behavior change) and an
//!   LSM-style [`storage::DiskStore`] (WAL + byte-budgeted memtable +
//!   bloom-filtered sorted runs + compaction) whose write-ahead log doubles as
//!   the probability-space recovery log — [`Database::open_disk`] restores
//!   the exact pre-crash generation and watermark.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod confidence;
pub mod engine;
pub mod fault;
pub mod motif;
pub mod pool;
pub mod sprout;
pub mod storage;

mod database;
mod query;
mod relation;
mod value;

pub use database::{Database, TupleWriter};
pub use engine::{dedup_lineages, BatchResult, ConfidenceEngine, MaintainResult};
pub use pool::ResumablePool;
pub use query::{ConjunctiveQuery, IneqOp, Predicate, QueryAnswer, SubGoal, Term};
pub use relation::{AnnotatedTuple, Relation, Schema};
pub use value::Value;
