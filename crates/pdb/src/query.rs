//! Conjunctive queries with inequality predicates, their evaluation to
//! lineage DNFs, and the structural classifications (hierarchical, IQ) that
//! govern tractability (Section VI of the paper).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use events::{Clause, Dnf, DnfView, LineageArena};

use crate::database::Database;
use crate::value::Value;

/// A term in a subgoal: a query variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A named query variable.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Shorthand for a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }
}

/// A query subgoal `R(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubGoal {
    /// Name of the relation in the [`Database`].
    pub relation: String,
    /// Positional terms.
    pub terms: Vec<Term>,
}

/// Comparison operators allowed in inequality predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IneqOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Neq,
}

impl IneqOp {
    fn eval(&self, l: &Value, r: &Value) -> bool {
        match self {
            IneqOp::Lt => l < r,
            IneqOp::Le => l <= r,
            IneqOp::Gt => l > r,
            IneqOp::Ge => l >= r,
            IneqOp::Neq => l != r,
        }
    }
}

/// An inequality predicate between a query variable and either another query
/// variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left-hand query variable.
    pub left: String,
    /// Comparison operator.
    pub op: IneqOp,
    /// Right-hand operand.
    pub right: Operand,
}

/// Right-hand operand of a [`Predicate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A query variable.
    Var(String),
    /// A constant.
    Const(Value),
}

/// One answer tuple of a query: its head values and lineage DNF.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Values of the head variables (empty for Boolean queries).
    pub head: Vec<Value>,
    /// The lineage formula of the answer.
    pub lineage: Dnf,
}

/// A conjunctive query with optional inequality predicates:
/// `Q(head) :- R1(t̄1), …, Rn(t̄n), predicates`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Query name (used in reports).
    pub name: String,
    /// Head (distinguished) variables.
    pub head: Vec<String>,
    /// Subgoals.
    pub subgoals: Vec<SubGoal>,
    /// Inequality predicates.
    pub predicates: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// Creates an empty (Boolean, no-subgoal) query with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head: Vec::new(),
            subgoals: Vec::new(),
            predicates: Vec::new(),
        }
    }

    /// Adds head variables.
    pub fn with_head(mut self, vars: &[&str]) -> Self {
        self.head.extend(vars.iter().map(|v| (*v).to_owned()));
        self
    }

    /// Adds a subgoal.
    pub fn with_subgoal(mut self, relation: &str, terms: Vec<Term>) -> Self {
        self.subgoals.push(SubGoal { relation: relation.to_owned(), terms });
        self
    }

    /// Adds an inequality predicate between two query variables.
    pub fn with_var_predicate(mut self, left: &str, op: IneqOp, right: &str) -> Self {
        self.predicates.push(Predicate {
            left: left.to_owned(),
            op,
            right: Operand::Var(right.to_owned()),
        });
        self
    }

    /// Adds an inequality predicate between a query variable and a constant.
    pub fn with_const_predicate(mut self, left: &str, op: IneqOp, right: impl Into<Value>) -> Self {
        self.predicates.push(Predicate {
            left: left.to_owned(),
            op,
            right: Operand::Const(right.into()),
        });
        self
    }

    /// `true` when the query has no head variables (a Boolean query).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All query variables mentioned in subgoals.
    pub fn variables(&self) -> BTreeSet<String> {
        self.subgoals
            .iter()
            .flat_map(|sg| sg.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(v.clone()),
                Term::Const(_) => None,
            })
            .collect()
    }

    /// Indices of the subgoals mentioning a variable.
    pub fn subgoals_of(&self, var: &str) -> BTreeSet<usize> {
        self.subgoals
            .iter()
            .enumerate()
            .filter(|(_, sg)| sg.terms.iter().any(|t| matches!(t, Term::Var(v) if v == var)))
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` when two subgoals reference the same relation.
    pub fn has_self_join(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.subgoals.iter().any(|sg| !seen.insert(sg.relation.clone()))
    }

    /// The hierarchical-query test of Definition 6.1 (Dalvi-Suciu): for any
    /// two *non-head* query variables, their subgoal sets are either disjoint
    /// or one contains the other. Hierarchical queries without self-joins are
    /// exactly the tractable conjunctive queries on tuple-independent
    /// databases.
    pub fn is_hierarchical(&self) -> bool {
        let head: BTreeSet<&str> = self.head.iter().map(|s| s.as_str()).collect();
        let vars: Vec<String> =
            self.variables().into_iter().filter(|v| !head.contains(v.as_str())).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                let a = self.subgoals_of(&vars[i]);
                let b = self.subgoals_of(&vars[j]);
                let disjoint = a.is_disjoint(&b);
                let contained = a.is_subset(&b) || b.is_subset(&a);
                if !disjoint && !contained {
                    return false;
                }
            }
        }
        true
    }

    /// The IQ-query test of Definitions 6.5/6.6 (Olteanu-Huang): subgoals
    /// range over *distinct* relations, their non-head variable sets are
    /// pairwise disjoint (no equi-joins), and the inequality predicates have
    /// the *max-one* property — at most one variable per subgoal occurs in
    /// inequalities with variables of other subgoals.
    pub fn is_iq(&self) -> bool {
        if self.has_self_join() {
            return false;
        }
        let head: BTreeSet<&str> = self.head.iter().map(|s| s.as_str()).collect();
        // Per-subgoal non-head variable sets must be pairwise disjoint.
        let sets: Vec<BTreeSet<String>> = self
            .subgoals
            .iter()
            .map(|sg| {
                sg.terms
                    .iter()
                    .filter_map(|t| match t {
                        Term::Var(v) if !head.contains(v.as_str()) => Some(v.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                if !sets[i].is_disjoint(&sets[j]) {
                    return false;
                }
            }
        }
        // Max-one property: for each subgoal, at most one of its variables
        // appears in cross-subgoal inequality predicates.
        let subgoal_of = |v: &str| sets.iter().position(|s| s.contains(v));
        let mut cross_vars: Vec<BTreeSet<String>> = vec![BTreeSet::new(); sets.len()];
        for p in &self.predicates {
            let Operand::Var(rv) = &p.right else { continue };
            let (Some(li), Some(ri)) = (subgoal_of(&p.left), subgoal_of(rv)) else {
                continue;
            };
            if li != ri {
                cross_vars[li].insert(p.left.clone());
                cross_vars[ri].insert(rv.clone());
            }
        }
        cross_vars.iter().all(|s| s.len() <= 1)
    }

    /// Evaluates the query on a database, returning one [`QueryAnswer`] per
    /// distinct head-value combination (a single answer with empty head for
    /// Boolean queries, provided at least one satisfying assignment exists).
    ///
    /// The evaluator performs a left-to-right multiway hash join: for each
    /// subgoal an index is built on the positions bound by earlier subgoals
    /// or constants, and inequality predicates are applied as soon as both
    /// operands are bound. The lineage of an answer is the disjunction over
    /// satisfying assignments of the conjunction of the matched tuples'
    /// lineages — exactly the DNF whose probability is the answer confidence.
    pub fn evaluate(&self, db: &Database) -> Vec<QueryAnswer> {
        // A partial assignment: variable bindings plus the conjunction of the
        // lineages of the tuples matched so far (kept as a clause list since
        // base-table lineages are single clauses; general DNFs distribute).
        struct Partial {
            bindings: BTreeMap<String, Value>,
            lineage: Dnf,
        }

        let mut partials = vec![Partial { bindings: BTreeMap::new(), lineage: Dnf::tautology() }];
        let mut bound: BTreeSet<String> = BTreeSet::new();
        let mut applied_preds: Vec<bool> = vec![false; self.predicates.len()];

        for sg in &self.subgoals {
            if db.schema(&sg.relation).is_none() {
                return Vec::new();
            }
            // Positions whose value is determined before scanning this
            // subgoal: constants and already-bound variables.
            let key_positions: Vec<usize> = sg
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .map(|(i, _)| i)
                .collect();
            // Hash index of the *partials* on their probe key; the subgoal's
            // tuples then stream past it in one storage scan. This is the
            // out-of-core orientation: the relation — possibly disk-resident
            // and much larger than RAM — is never materialized; only the
            // partial assignments (the join state) and the tuples that
            // actually match live on the heap. The final answers are
            // bit-identical to the tuple-indexed orientation because answer
            // lineages are canonicalized by `Dnf::from_clauses` below.
            let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (pi, partial) in partials.iter().enumerate() {
                let key: Vec<Value> = key_positions
                    .iter()
                    .map(|&p| match &sg.terms[p] {
                        Term::Const(c) => c.clone(),
                        Term::Var(v) => partial.bindings[v].clone(),
                    })
                    .collect();
                by_key.entry(key).or_default().push(pi);
            }

            let mut next = Vec::new();
            for tuple in db.scan(&sg.relation) {
                let key: Vec<Value> =
                    key_positions.iter().map(|&p| tuple.values[p].clone()).collect();
                let Some(candidates) = by_key.get(&key) else { continue };
                'partials: for &pi in candidates {
                    let partial = &partials[pi];
                    let mut bindings = partial.bindings.clone();
                    for (pos, term) in sg.terms.iter().enumerate() {
                        if key_positions.contains(&pos) {
                            continue;
                        }
                        match term {
                            Term::Const(c) => {
                                if &tuple.values[pos] != c {
                                    continue 'partials;
                                }
                            }
                            Term::Var(v) => match bindings.get(v) {
                                Some(existing) => {
                                    if existing != &tuple.values[pos] {
                                        continue 'partials;
                                    }
                                }
                                None => {
                                    bindings.insert(v.clone(), tuple.values[pos].clone());
                                }
                            },
                        }
                    }
                    next.push(Partial { bindings, lineage: partial.lineage.and(&tuple.lineage) });
                }
            }
            partials = next;
            for t in &sg.terms {
                if let Term::Var(v) = t {
                    bound.insert(v.clone());
                }
            }
            // Apply every predicate whose operands are now bound.
            for (pi, pred) in self.predicates.iter().enumerate() {
                if applied_preds[pi] {
                    continue;
                }
                let right_bound = match &pred.right {
                    Operand::Var(v) => bound.contains(v),
                    Operand::Const(_) => true,
                };
                if bound.contains(&pred.left) && right_bound {
                    applied_preds[pi] = true;
                    partials.retain(|p| {
                        let l = &p.bindings[&pred.left];
                        let r = match &pred.right {
                            Operand::Var(v) => p.bindings[v].clone(),
                            Operand::Const(c) => c.clone(),
                        };
                        pred.op.eval(l, &r)
                    });
                }
            }
        }

        // Group by head values and disjoin lineages.
        let mut grouped: BTreeMap<Vec<Value>, Vec<Clause>> = BTreeMap::new();
        for partial in partials {
            let head: Vec<Value> = self.head.iter().map(|v| partial.bindings[v].clone()).collect();
            grouped.entry(head).or_default().extend(partial.lineage.into_clauses());
        }
        grouped
            .into_iter()
            .map(|(head, clauses)| QueryAnswer { head, lineage: Dnf::from_clauses(clauses) })
            .collect()
    }

    /// Evaluates the query and interns every answer lineage directly into
    /// `arena`, returning `(head, view)` pairs in the same order as
    /// [`ConjunctiveQuery::evaluate`].
    ///
    /// This is the arena-native entry point for the streaming pipeline: the
    /// subgoal scans already avoid materializing relations, and interning the
    /// answer clauses (via [`LineageArena::intern_clause_stream`]) means the
    /// d-tree algorithms can run on [`DnfView`]s without ever allocating
    /// per-answer [`Dnf`] values. The interned views are bit-identical to the
    /// canonical DNFs `evaluate` returns: same clause set, same canonical
    /// order, same hash.
    pub fn evaluate_interned(
        &self,
        db: &Database,
        arena: &mut LineageArena,
    ) -> Vec<(Vec<Value>, DnfView)> {
        self.evaluate(db)
            .into_iter()
            .map(|a| {
                let view = arena.intern_clause_stream(a.lineage.into_clauses());
                (a.head, view)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-5 social-network edge table.
    fn figure_5_database() -> Database {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
                (vec![Value::Int(6), Value::Int(7)], 0.1),
                (vec![Value::Int(6), Value::Int(11)], 0.9),
                (vec![Value::Int(6), Value::Int(17)], 0.5),
                (vec![Value::Int(7), Value::Int(17)], 0.2),
            ],
        );
        db
    }

    fn rst_database() -> Database {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.3), (vec![Value::Int(2)], 0.4)],
        );
        db.add_tuple_independent_table(
            "S",
            &["a", "b"],
            vec![
                (vec![Value::Int(1), Value::Int(10)], 0.5),
                (vec![Value::Int(1), Value::Int(20)], 0.6),
                (vec![Value::Int(2), Value::Int(10)], 0.7),
            ],
        );
        db.add_tuple_independent_table(
            "T",
            &["b"],
            vec![(vec![Value::Int(10)], 0.8), (vec![Value::Int(20)], 0.9)],
        );
        db
    }

    #[test]
    fn builder_and_classification() {
        // q1():-R1(A,B), R2(A,C) — hierarchical (Example 6.2).
        let q1 = ConjunctiveQuery::new("q1")
            .with_subgoal("R1", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("R2", vec![Term::var("A"), Term::var("C")]);
        assert!(q1.is_boolean());
        assert!(q1.is_hierarchical());
        assert!(!q1.has_self_join());

        // The prototypical hard query R(X),S(X,Y),T(Y) is non-hierarchical.
        let hard = ConjunctiveQuery::new("hard")
            .with_subgoal("R", vec![Term::var("X")])
            .with_subgoal("S", vec![Term::var("X"), Term::var("Y")])
            .with_subgoal("T", vec![Term::var("Y")]);
        assert!(!hard.is_hierarchical());

        // q2(D):-R1(A,B,C), R2(A,B), R3(A,D) — hierarchical (Example 6.2).
        let q2 = ConjunctiveQuery::new("q2")
            .with_head(&["D"])
            .with_subgoal("R1", vec![Term::var("A"), Term::var("B"), Term::var("C")])
            .with_subgoal("R2", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("R3", vec![Term::var("A"), Term::var("D")]);
        assert!(!q2.is_boolean());
        assert!(q2.is_hierarchical());
    }

    #[test]
    fn iq_classification_follows_example_6_7() {
        // q1():-R(E,F), T(D), T'(G,H), E < D < H.
        let q1 = ConjunctiveQuery::new("iq1")
            .with_subgoal("R", vec![Term::var("E"), Term::var("F")])
            .with_subgoal("T", vec![Term::var("D")])
            .with_subgoal("Tp", vec![Term::var("G"), Term::var("H")])
            .with_var_predicate("E", IneqOp::Lt, "D")
            .with_var_predicate("D", IneqOp::Lt, "H");
        assert!(q1.is_iq());

        // q3():-R(A), T(D) — trivially IQ (no predicates).
        let q3 = ConjunctiveQuery::new("iq3")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("T", vec![Term::var("D")]);
        assert!(q3.is_iq());

        // A query with an equi-join between subgoals is not IQ.
        let eq = ConjunctiveQuery::new("eq")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A")]);
        assert!(!eq.is_iq());

        // Violating max-one: two variables of R occur in cross-subgoal
        // inequalities.
        let not_max_one = ConjunctiveQuery::new("nm1")
            .with_subgoal("R", vec![Term::var("E"), Term::var("F")])
            .with_subgoal("T", vec![Term::var("D")])
            .with_var_predicate("E", IneqOp::Lt, "D")
            .with_var_predicate("F", IneqOp::Lt, "D");
        assert!(!not_max_one.is_iq());

        // Self-joins are excluded.
        let selfjoin = ConjunctiveQuery::new("sj")
            .with_subgoal("E", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("E", vec![Term::var("B"), Term::var("C")]);
        assert!(!selfjoin.is_iq());
        assert!(selfjoin.has_self_join());
    }

    #[test]
    fn boolean_query_lineage_matches_possible_worlds() {
        // q():-R(A), S(A,B), T(B) on the small R/S/T database.
        let db = rst_database();
        let q = ConjunctiveQuery::new("hard")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("T", vec![Term::var("B")]);
        let answers = q.evaluate(&db);
        assert_eq!(answers.len(), 1);
        let lineage = &answers[0].lineage;
        // Three satisfying assignments: (1,10), (1,20), (2,10).
        assert_eq!(lineage.len(), 3);
        assert!(lineage.clauses().iter().all(|c| c.len() == 3));
        // Compare against a manual possible-world computation.
        let p = lineage.exact_probability_enumeration(db.space());
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn head_variables_group_answers() {
        // q(A) :- R(A), S(A,B): one answer per R-value with S partners.
        let db = rst_database();
        let q = ConjunctiveQuery::new("per_a")
            .with_head(&["A"])
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let mut answers = q.evaluate(&db);
        answers.sort_by(|a, b| a.head.cmp(&b.head));
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].head, vec![Value::Int(1)]);
        // A = 1 joins with two S tuples: lineage has two clauses.
        assert_eq!(answers[0].lineage.len(), 2);
        assert_eq!(answers[1].head, vec![Value::Int(2)]);
        assert_eq!(answers[1].lineage.len(), 1);
    }

    #[test]
    fn constants_restrict_matches() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("const")
            .with_subgoal("S", vec![Term::constant(1), Term::var("B")]);
        let answers = q.evaluate(&db);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].lineage.len(), 2);
    }

    #[test]
    fn inequality_predicates_filter_assignments() {
        let db = rst_database();
        // q():-S(A,B), T(C), B < C : S-values B ∈ {10,20}, T-values C ∈ {10,20}.
        let q = ConjunctiveQuery::new("ineq")
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("T", vec![Term::var("C")])
            .with_var_predicate("B", IneqOp::Lt, "C");
        assert!(q.is_iq());
        let answers = q.evaluate(&db);
        assert_eq!(answers.len(), 1);
        // Only pairs with B=10, C=20 survive: S(1,10) and S(2,10) with T(20).
        assert_eq!(answers[0].lineage.len(), 2);
    }

    #[test]
    fn constant_predicates_and_empty_results() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("none")
            .with_subgoal("T", vec![Term::var("B")])
            .with_const_predicate("B", IneqOp::Gt, 100);
        assert!(q.evaluate(&db).is_empty());
        let q = ConjunctiveQuery::new("some")
            .with_subgoal("T", vec![Term::var("B")])
            .with_const_predicate("B", IneqOp::Ge, 20);
        let answers = q.evaluate(&db);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].lineage.len(), 1);
    }

    #[test]
    fn missing_relation_yields_no_answers() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("missing").with_subgoal("UNKNOWN", vec![Term::var("X")]);
        assert!(q.evaluate(&db).is_empty());
    }

    #[test]
    fn evaluate_interned_matches_evaluate_bit_for_bit() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("per_a")
            .with_head(&["A"])
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let answers = q.evaluate(&db);
        let mut arena = LineageArena::new();
        let interned = q.evaluate_interned(&db, &mut arena);
        assert_eq!(answers.len(), interned.len());
        for (a, (head, view)) in answers.iter().zip(&interned) {
            assert_eq!(&a.head, head);
            assert_eq!(view.to_dnf(&arena), a.lineage);
            assert_eq!(view.hash(&arena), a.lineage.canonical_hash());
        }
    }

    #[test]
    fn evaluation_over_a_disk_backed_database_is_bit_identical() {
        use crate::storage::testutil::TempDir;
        let dir = TempDir::new("query-parity");
        let heap = figure_5_database();
        // Tiny memtable budget: the edge table lives in runs, so evaluation
        // exercises the run-scan path rather than the memtable.
        let mut disk = crate::Database::open_disk(dir.path(), 64).expect("open");
        disk.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
                (vec![Value::Int(6), Value::Int(7)], 0.1),
                (vec![Value::Int(6), Value::Int(11)], 0.9),
                (vec![Value::Int(6), Value::Int(17)], 0.5),
                (vec![Value::Int(7), Value::Int(17)], 0.2),
            ],
        );
        assert!(disk.storage_stats().runs > 0, "budget must force the table into runs");
        let q = ConjunctiveQuery::new("p2")
            .with_head(&["A"])
            .with_subgoal("E", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("E", vec![Term::var("B"), Term::var("C")]);
        let on_heap = q.evaluate(&heap);
        let on_disk = q.evaluate(&disk);
        assert!(!on_heap.is_empty());
        assert_eq!(on_heap.len(), on_disk.len());
        for (h, d) in on_heap.iter().zip(&on_disk) {
            assert_eq!(h.head, d.head);
            assert_eq!(h.lineage, d.lineage, "lineage must be bit-identical across stores");
        }
    }

    #[test]
    fn triangle_query_on_figure_5_graph() {
        // Triangle via a three-way self-join with ordering predicates, as in
        // Section VI-A: select conf() from E n1, E n2, E n3 where
        // n1.v = n2.u and n2.v = n3.v and n1.u = n3.u and n1.u < n2.u and n2.u < n3.v.
        let db = figure_5_database();
        let q = ConjunctiveQuery::new("triangle")
            .with_subgoal("E", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("E", vec![Term::var("B"), Term::var("C")])
            .with_subgoal("E", vec![Term::var("A"), Term::var("C")])
            .with_var_predicate("A", IneqOp::Lt, "B")
            .with_var_predicate("B", IneqOp::Lt, "C");
        let answers = q.evaluate(&db);
        assert_eq!(answers.len(), 1);
        let lineage = &answers[0].lineage;
        // Figure 5 (c): the only triangle is over edges e3 ∧ e5 ∧ e6.
        assert_eq!(lineage.len(), 1);
        assert_eq!(lineage.clauses()[0].len(), 3);
        let p = lineage.exact_probability_enumeration(db.space());
        assert!((p - 0.1 * 0.5 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn repeated_variable_within_subgoal() {
        // q():-E(X,X) — self-loops only; the Figure-5 graph has none.
        let db = figure_5_database();
        let q =
            ConjunctiveQuery::new("loop").with_subgoal("E", vec![Term::var("X"), Term::var("X")]);
        assert!(q.evaluate(&db).is_empty());
    }
}
