//! Graph motif queries over probabilistic edge relations.
//!
//! The random-graph and social-network experiments of the paper (Section
//! VII-B) ask for the probability that an undirected probabilistic graph
//! contains a triangle, a path of length 2 or 3, or that two given nodes are
//! within two degrees of separation. These are self-join-heavy conjunctive
//! queries whose lineage this module constructs directly from the edge table,
//! which is both faster and clearer than going through the generic
//! relational-algebra engine.

use std::collections::{BTreeMap, BTreeSet};

use events::{Clause, Dnf};

use crate::relation::Relation;

/// An undirected probabilistic graph: each present-able edge carries the
/// lineage formula under which it exists (a single Boolean variable for
/// tuple-independent edge tables; an atom over a block variable for BID
/// tables).
///
/// When the graph is built from a **block-independent-disjoint** edge table
/// (Figure 5 (b) of the paper: both the "present" and the "absent"
/// alternative of every edge are represented), the graph additionally knows
/// the *absence lineage* of each edge, which makes queries involving the
/// absence of an edge — such as "within two but not one degrees of
/// separation" (Figure 5 (d)) — expressible as positive DNFs over the block
/// variables.
#[derive(Debug, Clone, Default)]
pub struct ProbGraph {
    edges: BTreeMap<(u32, u32), Dnf>,
    absences: BTreeMap<(u32, u32), Dnf>,
    nodes: BTreeSet<u32>,
}

impl ProbGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ProbGraph::default()
    }

    /// Builds a graph from an edge relation whose first two columns are the
    /// integer endpoints. Each tuple contributes its lineage to the edge
    /// (disjoined if the same edge appears twice).
    pub fn from_edge_relation(rel: &Relation) -> Self {
        let mut g = ProbGraph::new();
        for t in &rel.tuples {
            let (Some(u), Some(v)) = (t.values[0].as_int(), t.values[1].as_int()) else {
                continue;
            };
            g.add_edge(u as u32, v as u32, t.lineage.clone());
        }
        g
    }

    /// Builds a graph from a block-independent-disjoint edge relation of
    /// schema `(u, v, present)` à la Figure 5 (b): rows with `present = 1`
    /// contribute to the edge's presence lineage, rows with `present = 0` to
    /// its absence lineage (both are positive atoms over the block variable).
    pub fn from_bid_edge_relation(rel: &Relation) -> Self {
        let mut g = ProbGraph::new();
        for t in &rel.tuples {
            let (Some(u), Some(v), Some(present)) =
                (t.values[0].as_int(), t.values[1].as_int(), t.values[2].as_int())
            else {
                continue;
            };
            if present != 0 {
                g.add_edge(u as u32, v as u32, t.lineage.clone());
            } else {
                g.add_edge_absence(u as u32, v as u32, t.lineage.clone());
            }
        }
        g
    }

    /// Adds (or extends) an undirected edge with the given lineage.
    pub fn add_edge(&mut self, u: u32, v: u32, lineage: Dnf) {
        if u == v {
            return; // self-loops carry no motif information here
        }
        let key = (u.min(v), u.max(v));
        self.nodes.insert(u);
        self.nodes.insert(v);
        self.edges.entry(key).and_modify(|l| *l = l.or(&lineage)).or_insert(lineage);
    }

    /// Records the lineage under which the edge `(u, v)` is *absent* (only
    /// meaningful for BID edge tables, where absence is a first-class
    /// alternative rather than a negation).
    pub fn add_edge_absence(&mut self, u: u32, v: u32, lineage: Dnf) {
        if u == v {
            return;
        }
        let key = (u.min(v), u.max(v));
        self.nodes.insert(u);
        self.nodes.insert(v);
        self.absences.entry(key).and_modify(|l| *l = l.or(&lineage)).or_insert(lineage);
    }

    /// Lineage under which the edge `(u, v)` is absent. For edges that cannot
    /// exist at all the absence is certain and `⊤` (a tautology) is returned;
    /// for tuple-independent graphs (no absence information) `None` is
    /// returned for possible edges.
    pub fn edge_absence_lineage(&self, u: u32, v: u32) -> Option<Dnf> {
        let key = (u.min(v), u.max(v));
        if let Some(l) = self.absences.get(&key) {
            return Some(l.clone());
        }
        if self.edges.contains_key(&key) {
            None
        } else {
            Some(Dnf::tautology())
        }
    }

    /// Number of (possible) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes incident to at least one possible edge.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().copied()
    }

    /// Lineage of an edge, if the edge can exist.
    pub fn edge_lineage(&self, u: u32, v: u32) -> Option<&Dnf> {
        self.edges.get(&(u.min(v), u.max(v)))
    }

    /// Adjacency list: for each node, its possible neighbours.
    fn adjacency(&self) -> BTreeMap<u32, Vec<u32>> {
        let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(u, v) in self.edges.keys() {
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        adj
    }

    fn conjoin(&self, edges: &[(u32, u32)]) -> Dnf {
        let mut acc = Dnf::tautology();
        for &(u, v) in edges {
            let lineage = self.edge_lineage(u, v).expect("conjoin called only on existing edges");
            acc = acc.and(lineage);
        }
        acc
    }

    /// Lineage of the Boolean query "the graph contains a triangle" (query
    /// `t` of the experiments): the disjunction over all node triples
    /// `u < v < w` whose three edges can all exist of the conjunction of the
    /// three edge lineages.
    pub fn triangle_lineage(&self) -> Dnf {
        let adj = self.adjacency();
        let mut clauses: Vec<Clause> = Vec::new();
        let mut result = Dnf::empty();
        for &(u, v) in self.edges.keys() {
            // w ranges over common neighbours of u and v larger than v to
            // avoid duplicates.
            let (Some(nu), Some(nv)) = (adj.get(&u), adj.get(&v)) else { continue };
            let nv_set: BTreeSet<u32> = nv.iter().copied().collect();
            for &w in nu {
                if w > v && nv_set.contains(&w) {
                    let lineage = self.conjoin(&[(u, v), (v, w), (u, w)]);
                    clauses.extend(lineage.into_clauses());
                }
            }
        }
        result = result.or(&Dnf::from_clauses(clauses));
        result
    }

    /// Lineage of the Boolean query "the graph contains a (simple) path of
    /// length 2", i.e. three distinct nodes `a - b - c` with both edges
    /// possible (query `p2`).
    pub fn path2_lineage(&self) -> Dnf {
        let adj = self.adjacency();
        let mut clauses: Vec<Clause> = Vec::new();
        for (&b, neighbours) in &adj {
            for i in 0..neighbours.len() {
                for j in (i + 1)..neighbours.len() {
                    let (a, c) = (neighbours[i], neighbours[j]);
                    if a == c || a == b || c == b {
                        continue;
                    }
                    let lineage = self.conjoin(&[(a, b), (b, c)]);
                    clauses.extend(lineage.into_clauses());
                }
            }
        }
        Dnf::from_clauses(clauses)
    }

    /// Lineage of the Boolean query "the graph contains a simple path of
    /// length 3" (four distinct nodes, three edges; query `p3`).
    pub fn path3_lineage(&self) -> Dnf {
        let adj = self.adjacency();
        let mut clauses: Vec<Clause> = Vec::new();
        // Enumerate middle edges (b, c) and extend with a ∈ N(b), d ∈ N(c).
        for &(b, c) in self.edges.keys() {
            let (Some(nb), Some(nc)) = (adj.get(&b), adj.get(&c)) else { continue };
            for &a in nb {
                if a == c || a == b {
                    continue;
                }
                for &d in nc {
                    if d == a || d == b || d == c {
                        continue;
                    }
                    // Each simple path of length 3 has a unique middle edge,
                    // and with (b, c) fixed the end nodes a and d attach to
                    // distinct endpoints, so every path is generated exactly
                    // once (duplicates would need edges that are not on the
                    // path).
                    let lineage = self.conjoin(&[(a, b), (b, c), (c, d)]);
                    clauses.extend(lineage.into_clauses());
                }
            }
        }
        Dnf::from_clauses(clauses)
    }

    /// Lineage of the query "node `t` is within two, **but not one**, degrees
    /// of separation from node `s`" (the second query of Section VI-A, whose
    /// answers are shown in Figure 5 (d)): the direct edge `(s, t)` is absent
    /// and some 2-path `s - m - t` is present.
    ///
    /// Requires absence information (a BID edge table); returns `None` when
    /// the graph was built from a tuple-independent edge table and the direct
    /// edge can exist (its absence is then not expressible as a positive
    /// DNF).
    pub fn within2_not1_lineage(&self, s: u32, t: u32) -> Option<Dnf> {
        if s == t {
            return Some(Dnf::empty());
        }
        let absent = self.edge_absence_lineage(s, t)?;
        let adj = self.adjacency();
        let mut clauses: Vec<Clause> = Vec::new();
        if let (Some(ns), Some(nt)) = (adj.get(&s), adj.get(&t)) {
            let nt_set: BTreeSet<u32> = nt.iter().copied().collect();
            for &m in ns {
                if m != s && m != t && nt_set.contains(&m) {
                    clauses.extend(self.conjoin(&[(s, m), (m, t)]).into_clauses());
                }
            }
        }
        let two_paths = Dnf::from_clauses(clauses);
        Some(absent.and(&two_paths))
    }

    /// All nodes within two but not one degrees of separation from `s`, with
    /// their lineage — the full answer relation of Figure 5 (d). Nodes whose
    /// lineage is unsatisfiable (empty DNF) are omitted.
    pub fn within2_not1_answers(&self, s: u32) -> Vec<(u32, Dnf)> {
        let mut out = Vec::new();
        for t in self.nodes.iter().copied() {
            if t == s {
                continue;
            }
            if let Some(lineage) = self.within2_not1_lineage(s, t) {
                if !lineage.is_empty() {
                    out.push((t, lineage));
                }
            }
        }
        out
    }

    /// Lineage of the Boolean "separation" query `s2`: nodes `s` and `t` are
    /// within at most two degrees of separation (directly connected, or
    /// connected through one intermediate node).
    pub fn separation2_lineage(&self, s: u32, t: u32) -> Dnf {
        if s == t {
            return Dnf::tautology();
        }
        let adj = self.adjacency();
        let mut clauses: Vec<Clause> = Vec::new();
        if self.edge_lineage(s, t).is_some() {
            clauses.extend(self.conjoin(&[(s, t)]).into_clauses());
        }
        if let (Some(ns), Some(nt)) = (adj.get(&s), adj.get(&t)) {
            let nt_set: BTreeSet<u32> = nt.iter().copied().collect();
            for &m in ns {
                if m != s && m != t && nt_set.contains(&m) {
                    clauses.extend(self.conjoin(&[(s, m), (m, t)]).into_clauses());
                }
            }
        }
        Dnf::from_clauses(clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::value::Value;
    use events::ProbabilitySpace;

    /// The Figure-5 social network (six possible edges over nodes
    /// 5, 6, 7, 11, 17).
    fn figure_5_graph() -> (Database, ProbGraph) {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
                (vec![Value::Int(6), Value::Int(7)], 0.1),
                (vec![Value::Int(6), Value::Int(11)], 0.9),
                (vec![Value::Int(6), Value::Int(17)], 0.5),
                (vec![Value::Int(7), Value::Int(17)], 0.2),
            ],
        );
        let g = ProbGraph::from_edge_relation(&db.table("E").unwrap());
        (db, g)
    }

    #[test]
    fn graph_construction() {
        let (_, g) = figure_5_graph();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.num_nodes(), 5);
        assert!(g.edge_lineage(7, 5).is_some());
        assert!(g.edge_lineage(5, 17).is_none());
    }

    #[test]
    fn self_loops_and_duplicate_edges() {
        let mut space = ProbabilitySpace::new();
        let x = space.add_bool("x", 0.5);
        let y = space.add_bool("y", 0.5);
        let mut g = ProbGraph::new();
        g.add_edge(1, 1, Dnf::literal(x));
        assert_eq!(g.num_edges(), 0);
        g.add_edge(1, 2, Dnf::literal(x));
        g.add_edge(2, 1, Dnf::literal(y));
        assert_eq!(g.num_edges(), 1);
        // Duplicate edge lineages are disjoined.
        assert_eq!(g.edge_lineage(1, 2).unwrap().len(), 2);
    }

    /// Figure 5 (c): the only triangle is 6-7-17 via e3 ∧ e5 ∧ e6.
    #[test]
    fn triangle_lineage_matches_figure_5c() {
        let (db, g) = figure_5_graph();
        let tri = g.triangle_lineage();
        assert_eq!(tri.len(), 1);
        assert_eq!(tri.clauses()[0].len(), 3);
        let p = tri.exact_probability_enumeration(db.space());
        assert!((p - 0.1 * 0.5 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn path2_lineage_counts_cherries() {
        let (db, g) = figure_5_graph();
        let p2 = g.path2_lineage();
        // Cherries (paths of length 2) centred at each node:
        //  5: (7,11)                                   -> 1
        //  6: (7,11), (7,17), (11,17)                  -> 3
        //  7: (5,6), (5,17), (6,17)                    -> 3
        // 11: (5,6)                                    -> 1
        // 17: (6,7)                                    -> 1
        assert_eq!(p2.len(), 9);
        let p = p2.exact_probability_enumeration(db.space());
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn path3_lineage_is_sound_and_complete_on_a_path_graph() {
        // A simple path graph 1-2-3-4: exactly one path of length 3.
        let mut space = ProbabilitySpace::new();
        let e12 = space.add_bool("e12", 0.5);
        let e23 = space.add_bool("e23", 0.6);
        let e34 = space.add_bool("e34", 0.7);
        let mut g = ProbGraph::new();
        g.add_edge(1, 2, Dnf::literal(e12));
        g.add_edge(2, 3, Dnf::literal(e23));
        g.add_edge(3, 4, Dnf::literal(e34));
        let p3 = g.path3_lineage();
        assert_eq!(p3.len(), 1);
        assert_eq!(p3.clauses()[0].len(), 3);
        let p = p3.exact_probability_enumeration(&space);
        assert!((p - 0.5 * 0.6 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn path3_on_figure_5_graph_brackets_probability() {
        let (db, g) = figure_5_graph();
        let p3 = g.path3_lineage();
        assert!(!p3.is_empty());
        // Every clause has exactly three edge variables and uses 4 distinct
        // nodes (simple paths).
        for c in p3.clauses() {
            assert_eq!(c.len(), 3);
        }
        let p = p3.exact_probability_enumeration(db.space());
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn separation2_lineage() {
        let (db, g) = figure_5_graph();
        // Nodes 5 and 17: not directly connected; common neighbour 7 only
        // (5-7-17); 5-11-17 impossible since edge (11,17) does not exist.
        let s2 = g.separation2_lineage(5, 17);
        assert_eq!(s2.len(), 1);
        let p = s2.exact_probability_enumeration(db.space());
        assert!((p - 0.9 * 0.2).abs() < 1e-9);
        // Directly connected nodes include the single-edge clause.
        let s2_direct = g.separation2_lineage(5, 7);
        assert!(s2_direct.clauses().iter().any(|c| c.len() == 1));
        // Same node: separation 0.
        assert!(g.separation2_lineage(5, 5).is_tautology());
        // Nodes with no 2-hop connection: empty lineage.
        let s2_none = g.separation2_lineage(11, 17);
        let p_none = s2_none.exact_probability_enumeration(db.space());
        // 11 and 17 share the common neighbour 6, so there is a path.
        assert!(p_none > 0.0);
    }

    /// The BID representation of the Figure-5 network: every edge has a
    /// "present" and an "absent" alternative (Figure 5 (b)).
    fn figure_5_bid_graph() -> (Database, ProbGraph) {
        let mut db = Database::new();
        let edges: [((i64, i64), f64); 6] = [
            ((5, 7), 0.9),
            ((5, 11), 0.8),
            ((6, 7), 0.1),
            ((6, 11), 0.9),
            ((6, 17), 0.5),
            ((7, 17), 0.2),
        ];
        let blocks = edges
            .iter()
            .map(|&((u, v), p)| {
                vec![
                    (vec![Value::Int(u), Value::Int(v), Value::Int(1)], p),
                    (vec![Value::Int(u), Value::Int(v), Value::Int(0)], 1.0 - p),
                ]
            })
            .collect();
        db.add_bid_table("E", &["u", "v", "present"], blocks);
        let g = ProbGraph::from_bid_edge_relation(&db.table("E").unwrap());
        (db, g)
    }

    /// Figure 5 (d): nodes within two but not one degrees of separation from
    /// node 7 are 6, 11, and 17, with the lineages given in the paper.
    #[test]
    fn within_two_but_not_one_matches_figure_5d() {
        let (db, g) = figure_5_bid_graph();
        let answers = g.within2_not1_answers(7);
        let nodes: Vec<u32> = answers.iter().map(|(n, _)| *n).collect();
        assert_eq!(nodes, vec![6, 11, 17]);

        let p = |dnf: &Dnf| dnf.exact_probability_enumeration(db.space());
        let by_node: std::collections::BTreeMap<u32, Dnf> = answers.into_iter().collect();

        // Node 6: e5 ∧ e6 ∧ ¬e3  →  0.5 · 0.2 · (1 − 0.1).
        assert!((p(&by_node[&6]) - 0.5 * 0.2 * 0.9).abs() < 1e-9);
        // Node 11: (e1 ∧ e2) ∨ (e3 ∧ e4)  →  P = 1 − (1 − 0.72)(1 − 0.09).
        let expected_11 = 1.0 - (1.0 - 0.9 * 0.8) * (1.0 - 0.1 * 0.9);
        assert!((p(&by_node[&11]) - expected_11).abs() < 1e-9);
        // Node 17: e3 ∧ e5 ∧ ¬e6  →  0.1 · 0.5 · (1 − 0.2).
        assert!((p(&by_node[&17]) - 0.1 * 0.5 * 0.8).abs() < 1e-9);

        // The lineages are positive DNFs over block variables, so the d-tree
        // pipeline applies unchanged.
        for lineage in by_node.values() {
            let d = dtree_probability(lineage, &db);
            assert!((d - p(lineage)).abs() < 1e-9);
        }
    }

    fn dtree_probability(lineage: &Dnf, db: &Database) -> f64 {
        dtree::exact_probability(lineage, db.space(), &dtree::CompileOptions::default()).probability
    }

    /// Without absence information (tuple-independent edges) the
    /// within-2-not-1 query is only answerable for node pairs whose direct
    /// edge cannot exist.
    #[test]
    fn within_two_but_not_one_requires_bid_edges() {
        let (_, g) = figure_5_graph();
        // 5 and 7 are directly connected: absence is not expressible.
        assert!(g.within2_not1_lineage(5, 7).is_none());
        // 5 and 17 are not directly connectable: the answer is just the
        // 2-path lineage.
        let l = g.within2_not1_lineage(5, 17).expect("no direct edge possible");
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn bid_graph_presence_and_absence_are_mutually_exclusive() {
        let (db, g) = figure_5_bid_graph();
        let present = g.edge_lineage(5, 7).unwrap();
        let absent = g.edge_absence_lineage(5, 7).unwrap();
        assert!(present.and(&absent).is_empty(), "present ∧ absent must be inconsistent");
        let p_present = present.exact_probability_enumeration(db.space());
        let p_absent = absent.exact_probability_enumeration(db.space());
        assert!((p_present + p_absent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_free_graph_has_empty_triangle_lineage() {
        let mut space = ProbabilitySpace::new();
        let a = space.add_bool("a", 0.5);
        let b = space.add_bool("b", 0.5);
        let mut g = ProbGraph::new();
        g.add_edge(1, 2, Dnf::literal(a));
        g.add_edge(2, 3, Dnf::literal(b));
        assert!(g.triangle_lineage().is_empty());
        assert_eq!(g.triangle_lineage().exact_probability_enumeration(&space), 0.0);
    }
}
