//! Lineage-annotated relations.

use std::fmt;

use events::{Dnf, ProbabilitySpace};

use crate::value::Value;

/// A relation schema: a name and ordered column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Relation name.
    pub name: String,
    /// Column names, in positional order.
    pub columns: Vec<String>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Schema { name: name.into(), columns: columns.iter().map(|c| (*c).to_owned()).collect() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// A tuple annotated with its lineage formula.
///
/// In a c-table view, the tuple is present in exactly the possible worlds
/// that satisfy `lineage`. Base-table tuples carry a single-literal lineage
/// (tuple-independent tables) or a single atom over a block variable (BID
/// tables); deterministic tuples carry the constant-true lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedTuple {
    /// The attribute values.
    pub values: Vec<Value>,
    /// The lineage DNF.
    pub lineage: Dnf,
}

impl AnnotatedTuple {
    /// Creates an annotated tuple.
    pub fn new(values: Vec<Value>, lineage: Dnf) -> Self {
        AnnotatedTuple { values, lineage }
    }

    /// Marginal probability of the tuple (probability of its lineage) —
    /// computed by enumeration, so only intended for base tuples / tests.
    pub fn probability(&self, space: &ProbabilitySpace) -> f64 {
        self.lineage.exact_probability_enumeration(space)
    }
}

/// A lineage-annotated relation: the output (or input) of positive relational
/// algebra on a probabilistic database.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The relation schema.
    pub schema: Schema,
    /// The annotated tuples.
    pub tuples: Vec<AnnotatedTuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, tuples: Vec::new() }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a tuple, checking arity.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the schema.
    pub fn push(&mut self, tuple: AnnotatedTuple) {
        assert_eq!(
            tuple.values.len(),
            self.schema.arity(),
            "tuple arity {} does not match schema {} of arity {}",
            tuple.values.len(),
            self.schema.name,
            self.schema.arity()
        );
        self.tuples.push(tuple);
    }

    /// Lineage of the *Boolean* query "this relation is non-empty": the
    /// disjunction of all tuple lineages. This is the DNF whose probability
    /// is the confidence of a Boolean query answer.
    pub fn boolean_lineage(&self) -> Dnf {
        let mut out = Dnf::empty();
        for t in &self.tuples {
            out = out.or(&t.lineage);
        }
        out
    }

    /// Iterates over `(values, lineage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &AnnotatedTuple> {
        self.tuples.iter()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({})", self.schema.name, self.schema.columns.join(", "))?;
        for t in &self.tuples {
            let vals: Vec<String> = t.values.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  ({})  φ = {}", vals.join(", "), t.lineage)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;

    #[test]
    fn schema_lookup() {
        let s = Schema::new("E", &["u", "v"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index("v"), Some(1));
        assert_eq!(s.column_index("w"), None);
    }

    #[test]
    fn push_checks_arity() {
        let mut r = Relation::empty(Schema::new("R", &["a"]));
        r.push(AnnotatedTuple::new(vec![Value::Int(1)], Dnf::tautology()));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_rejects_wrong_arity() {
        let mut r = Relation::empty(Schema::new("R", &["a", "b"]));
        r.push(AnnotatedTuple::new(vec![Value::Int(1)], Dnf::tautology()));
    }

    #[test]
    fn boolean_lineage_is_disjunction() {
        let mut space = ProbabilitySpace::new();
        let x = space.add_bool("x", 0.5);
        let y = space.add_bool("y", 0.5);
        let mut r = Relation::empty(Schema::new("R", &["a"]));
        r.push(AnnotatedTuple::new(vec![Value::Int(1)], Dnf::literal(x)));
        r.push(AnnotatedTuple::new(vec![Value::Int(2)], Dnf::literal(y)));
        let lin = r.boolean_lineage();
        assert_eq!(lin.len(), 2);
        assert!(lin.clauses().contains(&Clause::from_bools(&[x])));
    }

    #[test]
    fn tuple_probability_uses_lineage() {
        let mut space = ProbabilitySpace::new();
        let x = space.add_bool("x", 0.25);
        let t = AnnotatedTuple::new(vec![Value::Int(1)], Dnf::literal(x));
        assert!((t.probability(&space) - 0.25).abs() < 1e-12);
        let det = AnnotatedTuple::new(vec![Value::Int(1)], Dnf::tautology());
        assert_eq!(det.probability(&space), 1.0);
    }

    #[test]
    fn display_contains_schema_and_lineage() {
        let mut space = ProbabilitySpace::new();
        let x = space.add_bool("x", 0.5);
        let mut r = Relation::empty(Schema::new("E", &["u", "v"]));
        r.push(AnnotatedTuple::new(vec![Value::Int(5), Value::Int(7)], Dnf::literal(x)));
        let s = r.to_string();
        assert!(s.contains("E(u, v)"));
        assert!(s.contains("φ"));
    }
}
