//! SPROUT-style exact confidence computation for hierarchical queries.
//!
//! SPROUT \[21\] is the exact baseline of the paper's experiments: it exploits
//! the *query* structure (not the lineage) to compute answer confidences for
//! tractable conjunctive queries without self-joins on tuple-independent
//! databases in polynomial time. This module implements the lazy safe-plan
//! evaluation:
//!
//! * **independent join** — if the subgoals split into groups that share no
//!   unbound variable, the groups are independent and their probabilities
//!   multiply;
//! * **independent project** — if some variable occurs in *every* subgoal
//!   (a "root" variable of the hierarchy), distinct values of that variable
//!   yield mutually independent sub-problems, combined as
//!   `1 − Π (1 − p_value)`;
//! * **base case** — a single subgoal: the answer is the probability that at
//!   least one matching tuple is present, `1 − Π (1 − p_tuple)` (tuples of a
//!   tuple-independent table are independent).
//!
//! For non-hierarchical queries the recursion gets stuck and the functions
//! return `None` — exactly the dichotomy of Dalvi-Suciu.

use std::collections::{BTreeMap, BTreeSet};

use events::UnionFind;

use crate::database::Database;
use crate::query::{ConjunctiveQuery, SubGoal, Term};
use crate::value::Value;

/// Exact confidence of a *Boolean* hierarchical query without self-joins.
///
/// Returns `None` when the query is not Boolean, has a self-join, uses
/// inequality predicates, or is not hierarchical (the safe-plan recursion
/// cannot complete).
pub fn boolean_confidence(query: &ConjunctiveQuery, db: &Database) -> Option<f64> {
    if !query.is_boolean() || query.has_self_join() || !query.predicates.is_empty() {
        return None;
    }
    if !query.is_hierarchical() {
        return None;
    }
    evaluate(&query.subgoals, &BTreeMap::new(), db)
}

/// Exact confidence of every answer of a hierarchical query (grouping by head
/// values). Returns `None` under the same conditions as
/// [`boolean_confidence`].
pub fn answer_confidences(
    query: &ConjunctiveQuery,
    db: &Database,
) -> Option<Vec<(Vec<Value>, f64)>> {
    if query.has_self_join() || !query.predicates.is_empty() || !query.is_hierarchical() {
        return None;
    }
    if query.is_boolean() {
        return boolean_confidence(query, db).map(|p| vec![(Vec::new(), p)]);
    }
    // Enumerate the candidate head-value combinations via ordinary query
    // evaluation, then compute each answer's confidence with the head
    // variables bound to the answer values.
    let answers = query.evaluate(db);
    let mut out = Vec::with_capacity(answers.len());
    for answer in answers {
        let bindings: BTreeMap<String, Value> =
            query.head.iter().cloned().zip(answer.head.iter().cloned()).collect();
        let p = evaluate(&query.subgoals, &bindings, db)?;
        out.push((answer.head, p));
    }
    Some(out)
}

/// Recursive safe-plan evaluation of a set of subgoals under variable
/// bindings.
fn evaluate(
    subgoals: &[SubGoal],
    bindings: &BTreeMap<String, Value>,
    db: &Database,
) -> Option<f64> {
    if subgoals.is_empty() {
        return Some(1.0);
    }

    // Base case: a single subgoal — independent union over matching tuples.
    if subgoals.len() == 1 {
        return Some(single_subgoal_probability(&subgoals[0], bindings, db));
    }

    // Independent join: group subgoals by shared *unbound* variables.
    let groups = independent_groups(subgoals, bindings);
    if groups.len() > 1 {
        let mut product = 1.0;
        for group in groups {
            let subset: Vec<SubGoal> = group.into_iter().map(|i| subgoals[i].clone()).collect();
            product *= evaluate(&subset, bindings, db)?;
        }
        return Some(product);
    }

    // Independent project: find a root variable occurring (unbound) in every
    // subgoal.
    let root = find_root_variable(subgoals, bindings)?;
    let values = candidate_values(subgoals, &root, bindings, db);
    let mut complement = 1.0;
    for value in values {
        let mut extended = bindings.clone();
        extended.insert(root.clone(), value);
        let p = evaluate(subgoals, &extended, db)?;
        complement *= 1.0 - p;
    }
    Some(1.0 - complement)
}

/// Probability that at least one tuple of the relation matches the subgoal
/// under the bindings.
fn single_subgoal_probability(
    sg: &SubGoal,
    bindings: &BTreeMap<String, Value>,
    db: &Database,
) -> f64 {
    let mut complement = 1.0;
    // Stream the subgoal's tuples straight from the store: SPROUT only needs
    // each tuple's marginal, never the materialized relation.
    'tuples: for tuple in db.scan(&sg.relation) {
        // Check the tuple against constants, bound variables, and repeated
        // variables within the subgoal.
        let mut local: BTreeMap<&str, &Value> = BTreeMap::new();
        for (pos, term) in sg.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if &tuple.values[pos] != c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some(bound) = bindings.get(v) {
                        if bound != &tuple.values[pos] {
                            continue 'tuples;
                        }
                    } else if let Some(prev) = local.get(v.as_str()) {
                        if *prev != &tuple.values[pos] {
                            continue 'tuples;
                        }
                    } else {
                        local.insert(v, &tuple.values[pos]);
                    }
                }
            }
        }
        // Tuple matches: the lineage of a base tuple is a single clause
        // (one variable, or ⊤ for deterministic tuples).
        let p = tuple.probability(db.space());
        complement *= 1.0 - p;
    }
    1.0 - complement
}

/// Partitions subgoal indices into groups connected through shared unbound
/// variables.
fn independent_groups(subgoals: &[SubGoal], bindings: &BTreeMap<String, Value>) -> Vec<Vec<usize>> {
    let mut uf: UnionFind<usize> = UnionFind::new();
    let mut var_owner: BTreeMap<String, usize> = BTreeMap::new();
    for (i, sg) in subgoals.iter().enumerate() {
        uf.insert(i);
        for term in &sg.terms {
            if let Term::Var(v) = term {
                if bindings.contains_key(v) {
                    continue;
                }
                match var_owner.get(v) {
                    Some(&j) => uf.union(i, j),
                    None => {
                        var_owner.insert(v.clone(), i);
                    }
                }
            }
        }
    }
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..subgoals.len() {
        let r = uf.find(i);
        by_root.entry(r).or_default().push(i);
    }
    by_root.into_values().collect()
}

/// Finds a variable occurring (unbound) in all subgoals — the root of the
/// hierarchy at this recursion level.
fn find_root_variable(subgoals: &[SubGoal], bindings: &BTreeMap<String, Value>) -> Option<String> {
    let mut candidates: Option<BTreeSet<String>> = None;
    for sg in subgoals {
        let vars: BTreeSet<String> = sg
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) if !bindings.contains_key(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        candidates = Some(match candidates {
            None => vars,
            Some(prev) => prev.intersection(&vars).cloned().collect(),
        });
        if candidates.as_ref().map(BTreeSet::is_empty).unwrap_or(false) {
            return None;
        }
    }
    candidates.and_then(|c| c.into_iter().next())
}

/// Candidate values for the root variable: the intersection over subgoals of
/// the values appearing in the variable's column(s) among matching tuples.
fn candidate_values(
    subgoals: &[SubGoal],
    root: &str,
    bindings: &BTreeMap<String, Value>,
    db: &Database,
) -> Vec<Value> {
    let mut result: Option<BTreeSet<Value>> = None;
    for sg in subgoals {
        if db.schema(&sg.relation).is_none() {
            return Vec::new();
        }
        let mut values = BTreeSet::new();
        'tuples: for tuple in db.scan(&sg.relation) {
            for (pos, term) in sg.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &tuple.values[pos] != c {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(b) = bindings.get(v) {
                            if b != &tuple.values[pos] {
                                continue 'tuples;
                            }
                        }
                    }
                }
            }
            for (pos, term) in sg.terms.iter().enumerate() {
                if matches!(term, Term::Var(v) if v == root) {
                    values.insert(tuple.values[pos].clone());
                }
            }
        }
        result = Some(match result {
            None => values,
            Some(prev) => prev.intersection(&values).cloned().collect(),
        });
    }
    result.map(|s| s.into_iter().collect()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;
    use dtree::{exact_probability, CompileOptions};

    fn rst_database() -> Database {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.3), (vec![Value::Int(2)], 0.4)],
        );
        db.add_tuple_independent_table(
            "S",
            &["a", "b"],
            vec![
                (vec![Value::Int(1), Value::Int(10)], 0.5),
                (vec![Value::Int(1), Value::Int(20)], 0.6),
                (vec![Value::Int(2), Value::Int(10)], 0.7),
            ],
        );
        db.add_tuple_independent_table(
            "T",
            &["b"],
            vec![(vec![Value::Int(10)], 0.8), (vec![Value::Int(20)], 0.9)],
        );
        db
    }

    /// q():-R(A), S(A,B): hierarchical; SPROUT must agree with brute force.
    #[test]
    fn hierarchical_boolean_query_matches_lineage_probability() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        assert!(q.is_hierarchical());
        let p_sprout = boolean_confidence(&q, &db).expect("hierarchical query");
        let answers = q.evaluate(&db);
        let p_exact = answers[0].lineage.exact_probability_enumeration(db.space());
        assert!((p_sprout - p_exact).abs() < 1e-12, "sprout {p_sprout} exact {p_exact}");
    }

    /// A single-subgoal query is an independent union over its tuples.
    #[test]
    fn single_subgoal_probability_is_independent_union() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("r").with_subgoal("R", vec![Term::var("A")]);
        let p = boolean_confidence(&q, &db).unwrap();
        assert!((p - (1.0 - 0.7 * 0.6)).abs() < 1e-12);
    }

    /// Independent join of two subgoals that share no variable.
    #[test]
    fn independent_join_multiplies() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("rt")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("T", vec![Term::var("B")]);
        let p = boolean_confidence(&q, &db).unwrap();
        let p_r = 1.0 - 0.7 * 0.6;
        let p_t = 1.0 - 0.2 * 0.1;
        assert!((p - p_r * p_t).abs() < 1e-12);
    }

    /// The hard pattern R(X),S(X,Y),T(Y) is rejected.
    #[test]
    fn non_hierarchical_queries_are_rejected() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("hard")
            .with_subgoal("R", vec![Term::var("X")])
            .with_subgoal("S", vec![Term::var("X"), Term::var("Y")])
            .with_subgoal("T", vec![Term::var("Y")]);
        assert_eq!(boolean_confidence(&q, &db), None);
    }

    /// Self-joins and inequality predicates are out of scope for the safe
    /// plan.
    #[test]
    fn self_joins_and_predicates_are_rejected() {
        let db = rst_database();
        let sj = ConjunctiveQuery::new("sj")
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("S", vec![Term::var("B"), Term::var("C")]);
        assert_eq!(boolean_confidence(&sj, &db), None);
        let iq = ConjunctiveQuery::new("iq")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("T", vec![Term::var("B")])
            .with_var_predicate("A", crate::query::IneqOp::Lt, "B");
        assert_eq!(boolean_confidence(&iq, &db), None);
    }

    /// Per-answer confidences of a non-Boolean hierarchical query agree with
    /// the d-tree exact evaluation of each answer's lineage.
    #[test]
    fn answer_confidences_match_dtree_exact() {
        let db = rst_database();
        let q = ConjunctiveQuery::new("per_a")
            .with_head(&["A"])
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let sprout = answer_confidences(&q, &db).expect("hierarchical");
        let answers = q.evaluate(&db);
        assert_eq!(sprout.len(), answers.len());
        for ((head, p_sprout), answer) in sprout.iter().zip(answers.iter()) {
            assert_eq!(head, &answer.head);
            let p_dtree = exact_probability(
                &answer.lineage,
                db.space(),
                &CompileOptions::with_origins(db.origins().clone()),
            )
            .probability;
            assert!((p_sprout - p_dtree).abs() < 1e-9);
        }
    }

    /// Deterministic tuples (probability 1) are handled: they force the
    /// single-subgoal probability to 1.
    #[test]
    fn deterministic_tuples_saturate_probability() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 1.0), (vec![Value::Int(2)], 0.5)],
        );
        let q = ConjunctiveQuery::new("r").with_subgoal("R", vec![Term::var("A")]);
        let p = boolean_confidence(&q, &db).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    /// Larger hierarchical query q():-R1(A,B), R2(A,C): SPROUT equals the
    /// exact lineage probability computed by the d-tree.
    #[test]
    fn two_sided_hierarchy() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R1",
            &["a", "b"],
            vec![
                (vec![Value::Int(1), Value::Int(1)], 0.2),
                (vec![Value::Int(1), Value::Int(2)], 0.3),
                (vec![Value::Int(2), Value::Int(1)], 0.4),
            ],
        );
        db.add_tuple_independent_table(
            "R2",
            &["a", "c"],
            vec![
                (vec![Value::Int(1), Value::Int(5)], 0.5),
                (vec![Value::Int(2), Value::Int(5)], 0.6),
                (vec![Value::Int(2), Value::Int(6)], 0.7),
            ],
        );
        let q = ConjunctiveQuery::new("q1")
            .with_subgoal("R1", vec![Term::var("A"), Term::var("B")])
            .with_subgoal("R2", vec![Term::var("A"), Term::var("C")]);
        assert!(q.is_hierarchical());
        let p_sprout = boolean_confidence(&q, &db).unwrap();
        let lineage = &q.evaluate(&db)[0].lineage;
        let p_exact = lineage.exact_probability_enumeration(db.space());
        assert!((p_sprout - p_exact).abs() < 1e-12);
    }
}
