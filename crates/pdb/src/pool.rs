//! A bounded cross-batch pool of suspended confidence computations.
//!
//! Streaming maintenance keeps one [`ResumableConfidence`] handle per
//! in-flight answer tuple so that each round of inserts only has to *apply a
//! delta and resume* instead of recompiling the lineage from scratch. Handles
//! own their partial d-tree (arena included), so an unbounded pool over a
//! large answer relation is a memory hazard; [`ResumablePool`] bounds the
//! number of live handles and evicts **width-aware**:
//!
//! * Handles that failed closed are never stored — a poisoned frontier can
//!   absorb no delta and answer no resume; the item must recompile anyway.
//! * **Converged** handles *are* stored: convergence is relative to the
//!   current formula, and the next round's delta applies to the handle's
//!   fully-refined d-tree in place — usually far cheaper than recompiling the
//!   grown lineage from scratch. For a streaming workload the converged
//!   handles are precisely the most invested ones.
//! * When over capacity, the handle with the **widest** remaining interval is
//!   evicted. The widest handle has made the least refinement progress toward
//!   its error guarantee, so discarding it forfeits the least accumulated
//!   narrowing — while a nearly-converged handle, one cheap slice away from
//!   its guarantee, would have to repay its whole decomposition history if
//!   recompiled. Evicted items simply fall back to scratch compilation on
//!   their next maintenance round; eviction never changes results, only work.

use std::collections::HashMap;

use crate::confidence::ResumableConfidence;

/// Bounded, width-aware store of [`ResumableConfidence`] handles keyed by the
/// item's index in its batch. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct ResumablePool {
    capacity: usize,
    handles: HashMap<usize, ResumableConfidence>,
    evictions: u64,
}

impl ResumablePool {
    /// A pool holding at most `capacity` suspended handles. A capacity of 0
    /// stores nothing (every insert is dropped); maintenance then degrades to
    /// recompiling every item, which stays correct.
    pub fn new(capacity: usize) -> Self {
        ResumablePool { capacity, handles: HashMap::new(), evictions: 0 }
    }

    /// The configured maximum number of live handles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of handles currently held.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` when no handles are held.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Number of handles evicted (or rejected at capacity) so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stores a handle under `key`, replacing any previous handle for the
    /// same key. Failed handles are discarded (nothing can be resumed or
    /// delta-maintained on them); converged handles are kept — the next
    /// round's delta applies to them in place. When the insert exceeds the
    /// capacity, the widest handle (possibly the new one) is evicted.
    pub fn insert(&mut self, key: usize, handle: ResumableConfidence) {
        if handle.failed() {
            return;
        }
        self.handles.insert(key, handle);
        while self.handles.len() > self.capacity {
            // Widest remaining interval = least invested refinement; ties
            // break toward the larger key so eviction is deterministic.
            let victim = self
                .handles
                .iter()
                .map(|(&k, h)| (h.remaining_width(), k))
                .max_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, k)| k)
                .expect("over-capacity pool is non-empty");
            self.handles.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Removes and returns the handle for `key`, if held.
    pub fn take(&mut self, key: usize) -> Option<ResumableConfidence> {
        self.handles.remove(&key)
    }

    /// The handle for `key`, if held. Maintenance callers read per-item
    /// diagnostics ([`ResumableConfidence::width_curve`],
    /// [`ResumableConfidence::remaining_width`]) through this.
    pub fn get(&self, key: usize) -> Option<&ResumableConfidence> {
        self.handles.get(&key)
    }

    /// `true` when a handle for `key` is held.
    pub fn contains(&self, key: usize) -> bool {
        self.handles.contains_key(&key)
    }

    /// Keys of all held handles, in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.handles.keys().copied()
    }

    /// Drops every handle (the eviction counter survives).
    pub fn clear(&mut self) {
        self.handles.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::{confidence_resumable, ConfidenceBudget, ConfidenceMethod};
    use events::{Clause, Dnf, ProbabilitySpace};

    /// A chain lineage hard enough that a small step budget truncates;
    /// returns the space alongside the handle (resumes are pinned to it).
    fn hard_handle(steps: u64) -> (ProbabilitySpace, ResumableConfidence) {
        let mut s = ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..20).map(|i| s.add_bool(format!("x{i}"), 0.2 + 0.02 * i as f64)).collect();
        let phi = Dnf::from_clauses(
            (0..19).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])).collect::<Vec<_>>(),
        );
        let budget = ConfidenceBudget { timeout: None, max_work: Some(steps) };
        let (_, handle) = confidence_resumable(
            &phi,
            &s,
            None,
            &ConfidenceMethod::DTreeExact,
            &budget,
            None,
            None,
        );
        (s, handle.expect("budgeted run truncates"))
    }

    #[test]
    fn evicts_the_widest_handle_at_capacity() {
        let mut pool = ResumablePool::new(2);
        // Three snapshots of the same refinement at increasing depth: each
        // extra slice strictly tightens the interval on this chain.
        let (s, wide) = hard_handle(1);
        let slice = ConfidenceBudget { timeout: None, max_work: Some(5) };
        let mut mid = wide.clone();
        mid.resume(&s, &slice, None);
        let mut narrow = mid.clone();
        narrow.resume(&s, &slice, None);
        assert!(wide.remaining_width() > mid.remaining_width());
        assert!(mid.remaining_width() > narrow.remaining_width());
        pool.insert(0, wide);
        pool.insert(1, narrow);
        pool.insert(2, mid);
        // The widest (least invested) handle is the victim.
        assert_eq!(pool.evictions(), 1);
        assert!(!pool.contains(0), "widest handle must be evicted");
        assert!(pool.contains(1) && pool.contains(2));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn converged_handles_stay_pooled_for_future_deltas() {
        let mut pool = ResumablePool::new(4);
        let (s, mut h) = hard_handle(2);
        let done = h.resume(&s, &ConfidenceBudget::default(), None);
        assert!(done.converged);
        pool.insert(0, h);
        // Converged ≠ useless: the next round's delta applies to the pooled
        // d-tree in place, so the handle must survive.
        assert_eq!(pool.len(), 1);
        assert!(pool.get(0).is_some_and(ResumableConfidence::is_converged));
        // A converged handle's width is ~0, so under pressure it outlives
        // wide (barely-refined) handles.
        let (_s1, wide) = hard_handle(1);
        let (_s2, wide2) = hard_handle(1);
        let (_s3, wide3) = hard_handle(1);
        let (_s4, wide4) = hard_handle(1);
        for (k, h) in [(1, wide), (2, wide2), (3, wide3), (4, wide4)] {
            pool.insert(k, h);
        }
        assert_eq!(pool.len(), 4);
        assert!(pool.contains(0), "the converged handle must never be the eviction victim");
    }

    #[test]
    fn zero_capacity_pool_stores_nothing() {
        let mut pool = ResumablePool::new(0);
        let (_s, h) = hard_handle(1);
        pool.insert(0, h);
        assert!(pool.is_empty());
        assert_eq!(pool.evictions(), 1);
    }

    #[test]
    fn take_and_reinsert_round_trip() {
        let mut pool = ResumablePool::new(4);
        let (_s, h) = hard_handle(3);
        pool.insert(7, h);
        assert_eq!(pool.keys().collect::<Vec<_>>(), vec![7]);
        let h = pool.take(7).expect("held");
        assert!(pool.take(7).is_none());
        pool.insert(7, h);
        assert!(pool.get(7).is_some());
        pool.clear();
        assert!(pool.is_empty());
    }
}
