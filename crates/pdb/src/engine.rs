//! Batched confidence computation: the [`ConfidenceEngine`].
//!
//! The paper's d-tree approximation (Section V) is meant to answer *whole
//! queries* — every answer tuple's lineage — under one budget. The
//! per-lineage [`crate::confidence::confidence`] front-end cannot exploit
//! that: it re-derives options per call, computes every sub-formula from
//! scratch, and applies budgets per lineage, so one hard lineage can eat the
//! whole experiment's time.
//!
//! [`ConfidenceEngine::confidence_batch`] fixes all three at once:
//!
//! * **Shared deadline** — the batch's [`ConfidenceBudget::timeout`] is
//!   converted into one absolute deadline; every lineage gets whatever time
//!   remains, so the batch as a whole terminates on schedule and stragglers
//!   return sound partial bounds with `converged = false`.
//! * **Parallelism** — lineages are distributed over a scoped thread pool
//!   ([`std::thread::scope`], no extra dependencies) with work stealing via
//!   an atomic cursor.
//! * **Shared memoization** — answer tuples of the same query overlap heavily
//!   in their lineage sub-formulas; a per-batch, thread-safe
//!   [`SubformulaCache`] lets every d-tree run reuse exact leaf probabilities
//!   and bucket bounds computed by any other run in the batch. Because all
//!   producers are deterministic, cached results are *bit-identical* to what
//!   the per-lineage front-end computes.
//!
//! Reproducibility: the Monte-Carlo methods seed from entropy by default.
//! Give the engine a base seed with [`ConfidenceEngine::with_seed`] and every
//! lineage `i` gets the deterministic per-item seed
//! [`ConfidenceEngine::item_seed`]`(base, i)`, independent of thread
//! scheduling, so batches are reproducible and comparable with seeded
//! per-lineage calls.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dtree::{CacheStats, SubformulaCache};
use events::{Dnf, LineageDelta, ProbabilitySpace, VarOrigins};

use crate::confidence::{
    confidence_resumable, confidence_with, ConfidenceBudget, ConfidenceMethod, ConfidenceResult,
    DegradationReason, ResumableConfidence,
};
use crate::fault::Fault;
use crate::pool::ResumablePool;

/// Pre-fetched observability handles for the engine's hot paths. Resolved
/// once in [`ConfidenceEngine::with_obs`]; the default records nowhere. All
/// handles are write-only — the engine never reads them back, so attaching
/// observability cannot change any result bit.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineObs {
    obs: obs::Obs,
    items: obs::Counter,
    items_converged: obs::Counter,
    items_truncated: obs::Counter,
    batches: obs::Counter,
    dedup_saved: obs::Counter,
    degraded: obs::Counter,
    item_seconds: obs::Histogram,
    item_width: obs::Histogram,
    batch_seconds: obs::Histogram,
    maintain_rounds: obs::Counter,
    maintain_snapshots: obs::Counter,
    maintain_refreshed: obs::Counter,
    maintain_recompiled: obs::Counter,
}

impl EngineObs {
    fn new(o: &obs::Obs) -> EngineObs {
        EngineObs {
            obs: o.clone(),
            items: o.counter("engine.items"),
            items_converged: o.counter("engine.items_converged"),
            items_truncated: o.counter("engine.items_truncated"),
            batches: o.counter("engine.batches"),
            dedup_saved: o.counter("engine.dedup_saved"),
            degraded: o.counter("engine.degraded"),
            item_seconds: o.histogram("engine.item_seconds"),
            item_width: o.histogram("engine.item_width"),
            batch_seconds: o.histogram("engine.batch_seconds"),
            maintain_rounds: o.counter("engine.maintain.rounds"),
            maintain_snapshots: o.counter("engine.maintain.snapshots"),
            maintain_refreshed: o.counter("engine.maintain.refreshed"),
            maintain_recompiled: o.counter("engine.maintain.recompiled"),
        }
    }
}

/// Result of a batched confidence computation.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-lineage results, in input order.
    pub results: Vec<ConfidenceResult>,
    /// Wall-clock time for the whole batch (not the sum of per-item times —
    /// with `n` threads this is roughly the sum divided by `n`).
    pub wall: Duration,
    /// Effectiveness counters of the sub-formula cache **for this batch**
    /// (all zeros when the cache was disabled). For a long-lived cache
    /// attached with [`ConfidenceEngine::with_shared_cache`] the hit, miss,
    /// stale, and eviction counters are deltas over the batch, while
    /// `entries` is the cache's size after the batch. The deltas are
    /// before/after snapshots of the cache's global counters: when *other*
    /// batches run concurrently against the same `Arc`, their traffic lands
    /// in whichever overlapping snapshot windows observe it, so per-batch
    /// attribution is only exact for non-overlapping batches (results are
    /// unaffected either way).
    pub cache: CacheStats,
}

impl BatchResult {
    /// `true` when every lineage met its guarantee within the budget.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }

    /// Sum of the per-item algorithm times (the quantity the paper reports
    /// for multi-answer queries).
    pub fn total_compute(&self) -> Duration {
        self.results.iter().map(|r| r.elapsed).sum()
    }
}

/// Result of one streaming-maintenance round
/// ([`ConfidenceEngine::maintain_batch`]).
#[derive(Debug, Clone)]
pub struct MaintainResult {
    /// Per-item results, in input order. Same soundness semantics as
    /// [`crate::confidence::ConfidenceResult`]; for items served from a
    /// suspended handle without new work, `elapsed` is zero.
    pub results: Vec<ConfidenceResult>,
    /// Items maintained **incrementally**: a pooled handle absorbed the
    /// item's delta in place and was re-refined because its bounds left the
    /// error guarantee.
    pub refreshed: usize,
    /// Items whose pooled handle stayed within the error guarantee after the
    /// delta — served as a zero-work snapshot.
    pub snapshots: usize,
    /// Items compiled **from scratch**: no pooled handle (first sight,
    /// evicted, or a Monte-Carlo method), or the handle failed closed under a
    /// destructive edit or space invalidation.
    pub recompiled: usize,
    /// Wall-clock time for the whole round.
    pub wall: Duration,
    /// Sub-formula cache counters for this round (deltas; see
    /// [`BatchResult::cache`]).
    pub cache: CacheStats,
}

impl MaintainResult {
    /// `true` when every item met its guarantee within the budget.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }
}

/// Computes the confidences of a whole query result — all answer tuples'
/// lineages — in one call. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct ConfidenceEngine {
    method: ConfidenceMethod,
    budget: ConfidenceBudget,
    threads: Option<usize>,
    seed: Option<u64>,
    share_cache: bool,
    shared_cache: Option<Arc<SubformulaCache>>,
    obs: EngineObs,
    fault: Fault,
}

impl ConfidenceEngine {
    /// An engine for the given method with no budget, automatic parallelism,
    /// entropy-seeded Monte-Carlo, and a per-batch shared cache enabled.
    pub fn new(method: ConfidenceMethod) -> Self {
        ConfidenceEngine {
            method,
            budget: ConfidenceBudget::default(),
            threads: None,
            seed: None,
            share_cache: true,
            shared_cache: None,
            obs: EngineObs::default(),
            fault: Fault::disabled(),
        }
    }

    /// Sets the per-batch budget. The `timeout` is a *shared deadline*: it
    /// bounds the whole batch, not each lineage. `max_work` still applies per
    /// lineage (it bounds decomposition steps / samples, which are per-run
    /// quantities).
    pub fn with_budget(mut self, budget: ConfidenceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Fixes the number of worker threads (default: one per available CPU,
    /// capped by the batch size). `1` forces sequential evaluation.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets a base seed making the Monte-Carlo methods reproducible: lineage
    /// `i` is evaluated with [`ConfidenceEngine::item_seed`]`(seed, i)`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches an externally owned, long-lived sub-formula cache, shared
    /// across every batch this engine (and any other engine holding the same
    /// [`Arc`]) runs. This is the **cross-batch** mode for production traffic
    /// that repeats queries: the second batch of a repeated query starts with
    /// every exact leaf probability and bucket bound already warm.
    ///
    /// Entries are validated against the probability space's
    /// [`generation`](events::ProbabilitySpace::generation), so the cache
    /// survives database mutations: stale entries turn into misses and are
    /// overwritten, never served. Each sub-formula entry holds the value of
    /// one generation at a time, so the intended pattern is one *live* space
    /// per cache — interleaving batches from several spaces stays correct
    /// but makes spaces whose sub-formulas share hashes overwrite each
    /// other's entries, running those keys cold. Build the cache with
    /// [`SubformulaCache::with_capacity`] to bound its memory; eviction
    /// churn never changes results, only hit rates — cached and uncached
    /// runs are bit-identical.
    pub fn with_shared_cache(mut self, cache: Arc<SubformulaCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Disables sub-formula caching entirely — both the default per-batch
    /// cache and any cache attached with
    /// [`ConfidenceEngine::with_shared_cache`] (useful for measuring the
    /// cache's effect; results are identical either way).
    pub fn without_cache(mut self) -> Self {
        self.share_cache = false;
        self.shared_cache = None;
        self
    }

    /// Attaches observability: batches and items record counts, outcomes,
    /// latencies, and interval widths into `o`'s registry (one `engine.item`
    /// trace event per computed item, one `engine.batch`/`engine.maintain`
    /// event per call), and every resumable handle the engine creates
    /// inherits the d-tree slice instrumentation. Handles are write-only;
    /// results are bit-identical with or without an attached registry.
    pub fn with_obs(mut self, o: &obs::Obs) -> Self {
        self.obs = EngineObs::new(o);
        self
    }

    /// Attaches a fault-injection plan (see [`crate::fault`]). The batch
    /// paths check the `"engine.item"` site once per item with the item's
    /// **input index** as the decision token, so injected panics and errors
    /// are a pure function of `(plan seed, index)` — independent of thread
    /// scheduling — and same-seed replays degrade the same items. With the
    /// default [`Fault::disabled`] every check is a free no-op.
    pub fn with_fault(mut self, fault: &Fault) -> Self {
        self.fault = fault.clone();
        self
    }

    /// Builds, records, and returns the **degraded** result for item `index`:
    /// the vacuous (but sound) interval `[0, 1]` with `converged = false` and
    /// `degraded = Some(reason)`. This is the graceful-degradation contract —
    /// when an item's computation is lost to a panic, a dead shard, or
    /// exhausted retries, the batch still returns a valid answer for every
    /// item and says *why* this one carries no information. Schedulers
    /// layered above the engine (the `cluster` crate) call this too, so all
    /// degradations land in the engine's `engine.degraded` counter and
    /// `engine.degraded` trace events.
    pub fn degrade_item(&self, index: usize, reason: DegradationReason) -> ConfidenceResult {
        let r = ConfidenceResult {
            estimate: 0.5,
            lower: 0.0,
            upper: 1.0,
            converged: false,
            elapsed: Duration::ZERO,
            method: self.method.label(),
            stats: None,
            degraded: Some(reason),
        };
        self.obs.degraded.inc();
        self.obs
            .obs
            .event("engine.degraded")
            .u64("index", index as u64)
            .str("reason", &reason.to_string())
            .emit();
        self.record_item(index, &r);
        r
    }

    /// [`ConfidenceEngine::compute_item`] behind the fault boundary used by
    /// the batch paths: checks the `"engine.item"` failpoint (token = input
    /// index) and isolates panics — injected or real — with
    /// [`catch_unwind`], degrading the item instead of unwinding the batch.
    fn compute_item_isolated(
        &self,
        lineage: &Dnf,
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
        index: usize,
        deadline: Option<Instant>,
        cache: Option<&SubformulaCache>,
    ) -> ConfidenceResult {
        match catch_unwind(AssertUnwindSafe(|| {
            self.fault
                .check_at("engine.item", index as u64)
                .map(|()| self.compute_item(lineage, space, origins, index, deadline, cache))
        })) {
            Ok(Ok(r)) => r,
            Ok(Err(_)) | Err(_) => self.degrade_item(index, DegradationReason::WorkerPanic),
        }
    }

    /// Records one computed item's outcome (no-op without an attached
    /// registry). Called from the single per-item choke points, so batch,
    /// maintenance, and cluster-scheduler traffic all land here.
    fn record_item(&self, index: usize, r: &ConfidenceResult) {
        self.obs.items.inc();
        if r.converged {
            self.obs.items_converged.inc();
        } else {
            self.obs.items_truncated.inc();
        }
        self.obs.item_seconds.record_duration(r.elapsed);
        self.obs.item_width.record(r.upper - r.lower);
        self.obs
            .obs
            .event("engine.item")
            .u64("index", index as u64)
            .str("method", &r.method)
            .bool("converged", r.converged)
            .f64("seconds", r.elapsed.as_secs_f64())
            .f64("width", r.upper - r.lower)
            .emit();
    }

    /// The deterministic per-item seed derived from a base seed, independent
    /// of thread scheduling (SplitMix64 over `base ⊕ index`).
    pub fn item_seed(base: u64, index: usize) -> u64 {
        let mut x = base ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Computes the confidence of every lineage in `lineages` (accepts
    /// `&[Dnf]` as well as `&[&Dnf]`) over one shared probability space.
    ///
    /// Results come back in input order. With no timeout set the results are
    /// bit-identical to calling [`crate::confidence::confidence`] (or, for
    /// seeded engines, [`confidence_with`] with the matching item seed) on
    /// each lineage — batching changes the work done, never the answers.
    ///
    /// For the deterministic d-tree methods, *duplicate* lineages in the
    /// batch (common in answer relations with symmetries, and in user
    /// traffic repeating the same query) are detected up front by canonical
    /// hash (verified by structural equality) and evaluated once; the
    /// duplicate receives a copy of the result with `elapsed` zeroed (no
    /// work ran for it), identical in every value-bearing field.
    pub fn confidence_batch<L: AsRef<Dnf> + Sync>(
        &self,
        lineages: &[L],
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
    ) -> BatchResult {
        let start = Instant::now();
        let deadline = self.budget.timeout.map(|t| start + t);
        // Cache selection: an attached long-lived cache wins; otherwise a
        // fresh per-batch cache (the default), or nothing. Stats are reported
        // as deltas so a long-lived cache's history does not drown the
        // current batch's hit rate.
        let per_batch = if self.share_cache && self.shared_cache.is_none() {
            Some(SubformulaCache::new())
        } else {
            None
        };
        let cache: Option<&SubformulaCache> = self.shared_cache.as_deref().or(per_batch.as_ref());
        let cache_before = cache.map(SubformulaCache::stats).unwrap_or_default();

        // `representative[i]` is the first index holding a lineage identical
        // to `lineages[i]`; only representatives are evaluated. Monte-Carlo
        // methods keep their per-item seeds, so every item stays its own
        // representative there.
        let (representative, work) = dedup_lineages(&self.method, lineages);

        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .min(work.len().max(1));

        let mut slots: Vec<Option<ConfidenceResult>> = vec![None; lineages.len()];
        if threads <= 1 {
            for &i in &work {
                slots[i] = Some(self.compute_item_isolated(
                    lineages[i].as_ref(),
                    space,
                    origins,
                    i,
                    deadline,
                    cache,
                ));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let out = Mutex::new(&mut slots);
            let work = &work;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let w = cursor.fetch_add(1, Ordering::Relaxed);
                        if w >= work.len() {
                            break;
                        }
                        let i = work[w];
                        let r = self.compute_item_isolated(
                            lineages[i].as_ref(),
                            space,
                            origins,
                            i,
                            deadline,
                            cache,
                        );
                        out.lock().expect("result slots poisoned")[i] = Some(r);
                    });
                }
            });
        }

        // Replicate representative results onto their duplicates. The copy
        // carries zero `elapsed`: no work ran for the duplicate, and summed
        // timing metrics (`total_compute`, the bench harness) must not count
        // the representative's time twice.
        for i in 0..lineages.len() {
            if slots[i].is_none() {
                let mut r = slots[representative[i]].clone().expect("representative evaluated");
                r.elapsed = Duration::ZERO;
                slots[i] = Some(r);
            }
        }

        let wall = start.elapsed();
        self.obs.batches.inc();
        self.obs.dedup_saved.add((lineages.len() - work.len()) as u64);
        self.obs.batch_seconds.record_duration(wall);
        self.obs
            .obs
            .event("engine.batch")
            .u64("items", lineages.len() as u64)
            .u64("deduped", (lineages.len() - work.len()) as u64)
            .f64("seconds", wall.as_secs_f64())
            .emit();
        BatchResult {
            results: slots.into_iter().map(|r| r.expect("every slot filled")).collect(),
            wall,
            cache: cache.map(|c| c.stats().since(&cache_before)).unwrap_or_default(),
        }
    }

    /// Computes one batch item exactly as [`ConfidenceEngine::confidence_batch`]
    /// does internally: the remaining time until `deadline` becomes the item's
    /// timeout (items starting past the deadline short-circuit to an immediate
    /// non-converged result), `index` derives the per-item Monte-Carlo seed
    /// from the engine's base seed, and `cache` supplies the sub-formula memo.
    ///
    /// This is the per-item hook for schedulers layered *above* the engine
    /// (e.g. the `cluster` crate's sharded, deadline-aware scheduler), which
    /// need to pick their own item order, per-item deadlines, and cache
    /// topology while keeping results bit-identical to a plain batch: calling
    /// this with the same index, an unexpired deadline, and any cache yields
    /// the same value-bearing fields as [`ConfidenceEngine::confidence_batch`]
    /// for deterministic methods, and the same seeded estimates for
    /// Monte-Carlo ones. The engine's own `timeout` is ignored here —
    /// `deadline` replaces it; `max_work` still applies per item.
    pub fn compute_item(
        &self,
        lineage: &Dnf,
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
        index: usize,
        deadline: Option<Instant>,
        cache: Option<&SubformulaCache>,
    ) -> ConfidenceResult {
        let item_budget = match self.item_budget(lineage, deadline) {
            Ok(budget) => budget,
            Err(short_circuit) => {
                self.record_item(index, &short_circuit);
                return *short_circuit;
            }
        };
        let seed = self.seed.map(|base| Self::item_seed(base, index));
        let r = confidence_with(lineage, space, origins, &self.method, &item_budget, seed, cache);
        self.record_item(index, &r);
        r
    }

    /// [`ConfidenceEngine::compute_item`], but for anytime d-tree runs the
    /// second return value carries a [`ResumableConfidence`] handle over the
    /// item's d-tree frontier (see [`confidence_resumable`]): open after a
    /// budget truncation, settled after convergence. Schedulers hold the
    /// handle and spend later refinement rounds resuming it — or route
    /// streaming deltas into it — instead of recompiling the item.
    /// The first return value is identical to what
    /// [`ConfidenceEngine::compute_item`] reports for the same call.
    pub fn compute_item_resumable(
        &self,
        lineage: &Dnf,
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
        index: usize,
        deadline: Option<Instant>,
        cache: Option<&SubformulaCache>,
    ) -> (ConfidenceResult, Option<ResumableConfidence>) {
        let item_budget = match self.item_budget(lineage, deadline) {
            Ok(budget) => budget,
            Err(short_circuit) => {
                self.record_item(index, &short_circuit);
                return (*short_circuit, None);
            }
        };
        let seed = self.seed.map(|base| Self::item_seed(base, index));
        let (r, mut handle) =
            confidence_resumable(lineage, space, origins, &self.method, &item_budget, seed, cache);
        if let Some(h) = handle.as_mut() {
            h.attach_obs(&self.obs.obs);
        }
        self.record_item(index, &r);
        (r, handle)
    }

    /// One round of **streaming confidence maintenance**: brings every item's
    /// confidence up to date with its grown lineage, reusing the suspended
    /// d-tree frontiers pooled in `pool` instead of recompiling from scratch.
    ///
    /// Inputs per item `i`:
    ///
    /// * `lineages[i]` — the item's **current** (post-append) lineage,
    /// * `deltas[i]` — the clauses appended since the previous round
    ///   (`None` or an empty delta means the lineage did not change). Obtain
    ///   deltas from [`events::LineageArena::append_clauses`] or
    ///   [`LineageDelta::between`]; they must describe exactly the growth the
    ///   pooled handle has not seen yet.
    ///
    /// For the deterministic d-tree methods each item takes the cheapest
    /// sound path, counted in the returned [`MaintainResult`]:
    ///
    /// 1. **snapshot** — the pooled handle absorbed the delta in place
    ///    ([`ResumableConfidence::apply_delta`]) and its bounds still satisfy
    ///    the error guarantee: report them with zero new work;
    /// 2. **refreshed** — the delta pushed the bounds outside the guarantee:
    ///    resume the handle under the engine's budget (only the touched leaf
    ///    chain of the d-tree lost its refinement, everything else is
    ///    retained);
    /// 3. **recompiled** — no handle was pooled (first sight or evicted), or
    ///    the handle failed closed (space invalidated in place / destructive
    ///    edit): compile from scratch via
    ///    [`ConfidenceEngine::compute_item_resumable`], pooling the new
    ///    handle — open if the run truncated, settled if it converged — so
    ///    the *next* round's delta finds a frontier to land in.
    ///
    /// The Monte-Carlo methods have no incremental story — their estimators
    /// must resample under the grown formula — so every changed item
    /// recompiles with the engine's per-item seed, keeping results
    /// bit-identical to [`ConfidenceEngine::confidence_batch`] on the same
    /// final lineages.
    ///
    /// The engine's `timeout` is one shared deadline for the round. Handles
    /// stay pooled across rounds whether they converged or truncated — a
    /// converged frontier is exactly what makes the *next* delta cheap. The
    /// pool is keyed by item index: callers must keep one pool per
    /// (answer set, method) pair.
    pub fn maintain_batch<L: AsRef<Dnf>>(
        &self,
        lineages: &[L],
        deltas: &[Option<LineageDelta>],
        space: &ProbabilitySpace,
        origins: Option<&VarOrigins>,
        pool: &mut ResumablePool,
    ) -> MaintainResult {
        assert_eq!(lineages.len(), deltas.len(), "one delta slot per lineage");
        let start = Instant::now();
        let deadline = self.budget.timeout.map(|t| start + t);
        let per_batch = if self.share_cache && self.shared_cache.is_none() {
            Some(SubformulaCache::new())
        } else {
            None
        };
        let cache: Option<&SubformulaCache> = self.shared_cache.as_deref().or(per_batch.as_ref());
        let cache_before = cache.map(SubformulaCache::stats).unwrap_or_default();

        let mut results = Vec::with_capacity(lineages.len());
        let (mut refreshed, mut snapshots, mut recompiled) = (0usize, 0usize, 0usize);
        for (i, lineage) in lineages.iter().enumerate() {
            // The whole per-item step runs behind the fault boundary: a panic
            // (injected at the "engine.item" site or real) degrades this item
            // to the vacuous interval instead of unwinding the round. A
            // pooled handle taken before the panic is dropped — the next
            // round recompiles the item from scratch, which is sound.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.fault
                    .check_at("engine.item", i as u64)
                    .unwrap_or_else(|e| panic!("injected engine fault: {e}"));
                let mut handle = if self.method.is_deterministic() { pool.take(i) } else { None };
                // Fail closed up front: a handle pinned to an invalidated
                // space can neither absorb a delta nor resume — recompiling
                // immediately avoids reporting its vacuous poisoned bounds.
                if handle.as_ref().is_some_and(|h| !h.is_current(space)) {
                    handle = None;
                }
                if let (Some(h), Some(delta)) = (handle.as_mut(), deltas[i].as_ref()) {
                    if !delta.is_empty() && !h.apply_delta(space, delta) {
                        handle = None; // failed closed → recompile below
                    }
                }
                match handle {
                    Some(mut h) => {
                        // Pooled handles may predate this engine's registry
                        // (the pool outlives engines); re-attach so their
                        // slices land in the current registry. Never detach:
                        // an engine without observability leaves the handle's
                        // sink alone.
                        if self.obs.obs.is_enabled() {
                            h.attach_obs(&self.obs.obs);
                        }
                        let r = if h.is_converged() {
                            snapshots += 1;
                            h.snapshot_result()
                        } else {
                            let budget = ConfidenceBudget {
                                timeout: deadline
                                    .map(|d| d.saturating_duration_since(Instant::now())),
                                max_work: self.budget.max_work,
                            };
                            refreshed += 1;
                            h.resume(space, &budget, cache)
                        };
                        self.record_item(i, &r);
                        pool.insert(i, h);
                        r
                    }
                    None => {
                        let (r, h) = self.compute_item_resumable(
                            lineage.as_ref(),
                            space,
                            origins,
                            i,
                            deadline,
                            cache,
                        );
                        recompiled += 1;
                        if let Some(h) = h {
                            pool.insert(i, h);
                        }
                        r
                    }
                }
            }));
            results.push(match attempt {
                Ok(r) => r,
                Err(_) => self.degrade_item(i, DegradationReason::WorkerPanic),
            });
        }
        let wall = start.elapsed();
        self.obs.maintain_rounds.inc();
        self.obs.maintain_snapshots.add(snapshots as u64);
        self.obs.maintain_refreshed.add(refreshed as u64);
        self.obs.maintain_recompiled.add(recompiled as u64);
        self.obs
            .obs
            .event("engine.maintain")
            .u64("items", lineages.len() as u64)
            .u64("snapshots", snapshots as u64)
            .u64("refreshed", refreshed as u64)
            .u64("recompiled", recompiled as u64)
            .f64("seconds", wall.as_secs_f64())
            .emit();
        MaintainResult {
            results,
            refreshed,
            snapshots,
            recompiled,
            wall,
            cache: cache.map(|c| c.stats().since(&cache_before)).unwrap_or_default(),
        }
    }

    /// The per-item budget derived from the shared deadline, or (`Err`) the
    /// immediate result for items starting past the deadline.
    ///
    /// Whatever time remains until the shared deadline is this item's
    /// timeout. Items that start *after* the deadline short-circuit to an
    /// immediate non-converged result with the vacuous (but sound)
    /// interval [0, 1]: handing them a zero timeout instead would still
    /// pay the full per-item setup — DNF preparation and, for the
    /// Monte-Carlo methods, the whole DKLR estimation block — once per
    /// straggler, so a tight deadline over a large batch would overrun by
    /// the sum of those setup costs.
    fn item_budget(
        &self,
        lineage: &Dnf,
        deadline: Option<Instant>,
    ) -> Result<ConfidenceBudget, Box<ConfidenceResult>> {
        match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    // Constant lineages are knowable in O(1) even now —
                    // don't replace an exact answer with a vacuous one.
                    if lineage.is_tautology() || lineage.is_empty() {
                        let p = if lineage.is_tautology() { 1.0 } else { 0.0 };
                        return Err(Box::new(ConfidenceResult {
                            estimate: p,
                            lower: p,
                            upper: p,
                            converged: true,
                            elapsed: Duration::ZERO,
                            method: self.method.label(),
                            stats: None,
                            degraded: None,
                        }));
                    }
                    return Err(Box::new(ConfidenceResult {
                        estimate: 0.5,
                        lower: 0.0,
                        upper: 1.0,
                        converged: false,
                        elapsed: Duration::ZERO,
                        method: self.method.label(),
                        stats: None,
                        degraded: None,
                    }));
                }
                Ok(ConfidenceBudget { timeout: Some(remaining), max_work: self.budget.max_work })
            }
            None => Ok(ConfidenceBudget { timeout: None, max_work: self.budget.max_work }),
        }
    }
}

/// Detects duplicate lineages in a batch (common in answer relations with
/// symmetries, and in user traffic repeating the same query) by canonical
/// hash, verified by structural equality so a hash collision can never alias
/// two different formulas.
///
/// Returns `(representative, work)`: `representative[i]` is the first index
/// holding a lineage identical to `lineages[i]`, and `work` lists the
/// representatives — the items actually worth evaluating — in input order.
/// For non-deterministic methods ([`ConfidenceMethod::is_deterministic`])
/// the identity mapping comes back — every item carries its own seed and
/// must run. Shared by [`ConfidenceEngine::confidence_batch`] and
/// cluster-level schedulers so both sides of the bit-identity contract
/// deduplicate identically.
pub fn dedup_lineages<L: AsRef<Dnf>>(
    method: &ConfidenceMethod,
    lineages: &[L],
) -> (Vec<usize>, Vec<usize>) {
    let mut representative: Vec<usize> = (0..lineages.len()).collect();
    let mut work: Vec<usize> = Vec::with_capacity(lineages.len());
    if !method.is_deterministic() {
        work.extend(0..lineages.len());
        return (representative, work);
    }
    let mut seen: HashMap<events::DnfHash, usize> = HashMap::new();
    for (i, lineage) in lineages.iter().enumerate() {
        let rep = *seen.entry(lineage.as_ref().canonical_hash()).or_insert(i);
        if rep != i && lineages[rep].as_ref() == lineage.as_ref() {
            representative[i] = rep;
        } else {
            work.push(i);
        }
    }
    (representative, work)
}

/// Convenience wrapper: one batched call with default engine settings
/// (automatic parallelism, shared cache, entropy-seeded Monte-Carlo).
pub fn confidence_batch<L: AsRef<Dnf> + Sync>(
    lineages: &[L],
    space: &ProbabilitySpace,
    origins: Option<&VarOrigins>,
    method: &ConfidenceMethod,
    budget: &ConfidenceBudget,
) -> Vec<ConfidenceResult> {
    ConfidenceEngine::new(method.clone())
        .with_budget(budget.clone())
        .confidence_batch(lineages, space, origins)
        .results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::confidence;
    use crate::database::Database;
    use crate::value::Value;
    use crate::{ConjunctiveQuery, Term};

    /// A join query with several answer tuples whose lineages overlap.
    fn answers_db() -> (Database, Vec<Dnf>) {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            (0..4).map(|i| (vec![Value::Int(i)], 0.2 + 0.1 * i as f64)).collect(),
        );
        db.add_tuple_independent_table(
            "S",
            &["a", "b"],
            (0..4)
                .flat_map(|a| (0..3).map(move |b| (vec![Value::Int(a), Value::Int(b)], 0.5)))
                .collect(),
        );
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let lineages = q.evaluate(&db).into_iter().map(|a| a.lineage).collect();
        (db, lineages)
    }

    #[test]
    fn empty_batch_is_empty() {
        let (db, _) = answers_db();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact);
        let out = engine.confidence_batch::<Dnf>(&[], db.space(), None);
        assert!(out.results.is_empty());
        assert!(out.all_converged());
    }

    #[test]
    fn batch_matches_per_lineage_calls_bitwise() {
        let (db, lineages) = answers_db();
        let budget = ConfidenceBudget::default();
        for method in [
            ConfidenceMethod::DTreeExact,
            ConfidenceMethod::DTreeAbsolute(0.01),
            ConfidenceMethod::DTreeRelative(0.01),
        ] {
            let engine = ConfidenceEngine::new(method.clone()).with_threads(2);
            let batch = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
            assert_eq!(batch.results.len(), lineages.len());
            for (lineage, got) in lineages.iter().zip(&batch.results) {
                let want = confidence(lineage, db.space(), Some(db.origins()), &method, &budget);
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits(), "{}", want.method);
                assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                assert_eq!(want.upper.to_bits(), got.upper.to_bits());
                assert_eq!(want.converged, got.converged);
            }
        }
    }

    #[test]
    fn seeded_batches_are_reproducible_across_thread_counts() {
        let (db, lineages) = answers_db();
        let method = ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 };
        let sequential = ConfidenceEngine::new(method.clone())
            .with_seed(0xfeed)
            .with_threads(1)
            .confidence_batch(&lineages, db.space(), None);
        let parallel = ConfidenceEngine::new(method)
            .with_seed(0xfeed)
            .with_threads(4)
            .confidence_batch(&lineages, db.space(), None);
        for (a, b) in sequential.results.iter().zip(&parallel.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
    }

    #[test]
    fn cache_on_and_off_agree() {
        let (db, lineages) = answers_db();
        let method = ConfidenceMethod::DTreeAbsolute(0.001);
        let with_cache = ConfidenceEngine::new(method.clone()).confidence_batch(
            &lineages,
            db.space(),
            Some(db.origins()),
        );
        let without = ConfidenceEngine::new(method).without_cache().confidence_batch(
            &lineages,
            db.space(),
            Some(db.origins()),
        );
        assert_eq!(without.cache, CacheStats::default());
        for (a, b) in with_cache.results.iter().zip(&without.results) {
            assert!((a.estimate - b.estimate).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_deadline_bounds_the_whole_batch() {
        // Hard chain lineages that cannot finish exactly in a few
        // milliseconds each.
        let mut s = ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..40).map(|i| s.add_bool(format!("x{i}"), 0.2 + 0.015 * i as f64)).collect();
        let lineages: Vec<Dnf> = (0..6)
            .map(|k| {
                Dnf::from_clauses(
                    (0..30)
                        .map(|i| {
                            events::Clause::from_bools(&[vars[i + (k % 8)], vars[i + (k % 8) + 1]])
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
            .with_budget(ConfidenceBudget {
                timeout: Some(Duration::from_millis(30)),
                max_work: None,
            })
            .with_threads(2);
        let t0 = Instant::now();
        let out = engine.confidence_batch(&lineages, &s, None);
        assert_eq!(out.results.len(), lineages.len());
        // Generous slack for slow CI machines: the point is that the batch
        // does not take ~6 × the per-item worst case.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn duplicate_lineages_are_deduplicated_without_changing_results() {
        let (db, mut lineages) = answers_db();
        // Duplicate every lineage (like a symmetric answer relation would).
        let copies: Vec<Dnf> = lineages.clone();
        lineages.extend(copies);
        let method = ConfidenceMethod::DTreeAbsolute(0.01);
        let engine = ConfidenceEngine::new(method.clone()).with_threads(2);
        let batch = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        let half = lineages.len() / 2;
        for (i, (lineage, got)) in lineages.iter().zip(&batch.results).take(half).enumerate() {
            // The duplicate's result is bit-identical to its original …
            assert_eq!(got.estimate.to_bits(), batch.results[half + i].estimate.to_bits());
            // … and both match the per-lineage front-end.
            let want = confidence(
                lineage,
                db.space(),
                Some(db.origins()),
                &method,
                &ConfidenceBudget::default(),
            );
            assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
        }
    }

    #[test]
    fn shared_cache_survives_batches_and_stays_bit_identical() {
        let (db, lineages) = answers_db();
        let method = ConfidenceMethod::DTreeAbsolute(0.001);
        let baseline = ConfidenceEngine::new(method.clone()).without_cache().confidence_batch(
            &lineages,
            db.space(),
            Some(db.origins()),
        );
        let cache = Arc::new(SubformulaCache::with_capacity(4096));
        let engine = ConfidenceEngine::new(method).with_shared_cache(Arc::clone(&cache));
        let cold = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        let warm = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        // The warm batch is served from the cross-batch cache …
        assert!(warm.cache.hits > 0, "warm batch saw no hits: {:?}", warm.cache);
        assert!(
            warm.cache.hit_rate() > cold.cache.hit_rate(),
            "warm {:?} vs cold {:?}",
            warm.cache,
            cold.cache
        );
        // … and every result, cold or warm, is bit-identical to the uncached
        // baseline.
        for batch in [&cold, &warm] {
            for (want, got) in baseline.results.iter().zip(&batch.results) {
                assert_eq!(want.estimate.to_bits(), got.estimate.to_bits());
                assert_eq!(want.lower.to_bits(), got.lower.to_bits());
                assert_eq!(want.upper.to_bits(), got.upper.to_bits());
            }
        }
    }

    /// Watermark-scoped invalidation (the append-only fast path): inserting a
    /// *fresh* table only appends independent variables, so the warm entries
    /// for the old lineages keep serving — the second batch sees warm hits
    /// and zero stale lookups. A genuine in-place change (replacing a table)
    /// still retires everything. Results are bit-identical throughout: warm
    /// or cold, a cache can only change the work done, never an answer.
    #[test]
    fn fresh_table_keeps_shared_cache_warm_but_replacement_invalidates() {
        let (mut db, lineages) = answers_db();
        let method = ConfidenceMethod::DTreeAbsolute(0.001);
        let cache = Arc::new(SubformulaCache::new());
        let engine = ConfidenceEngine::new(method).with_shared_cache(Arc::clone(&cache));
        let before = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        // Insert a fresh table: append-only growth, entries stay warm.
        db.add_tuple_independent_table("T", &["z"], vec![(vec![Value::Int(0)], 0.5)]);
        let warm = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        assert!(warm.cache.hits > 0, "expected warm hits after an insert: {:?}", warm.cache);
        assert_eq!(warm.cache.stale, 0, "no entry may look stale after an insert");
        // Replace an existing table: a genuine in-place change retires the
        // warm entries (stale lookups), and answers are recomputed — the old
        // lineages still reference the *old* variables, whose distributions
        // are unchanged in the space, so the values stay bit-identical.
        db.add_tuple_independent_table("T", &["z"], vec![(vec![Value::Int(1)], 0.25)]);
        let cold = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        assert!(cold.cache.stale > 0, "expected stale lookups: {:?}", cold.cache);
        for ((a, b), c) in before.results.iter().zip(&warm.results).zip(&cold.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            assert_eq!(a.estimate.to_bits(), c.estimate.to_bits());
        }
    }

    /// Batch-level promptness of the short-circuit lives in
    /// `tests/cache_reuse.rs`; this covers the item-level contract: past the
    /// deadline, constant lineages keep their exact O(1) answers while
    /// everything else gets the vacuous non-converged interval.
    #[test]
    fn past_deadline_items_keep_trivial_lineages_exact() {
        let (db, mut lineages) = answers_db();
        let n_real = lineages.len();
        lineages.push(Dnf::tautology());
        lineages.push(Dnf::empty());
        let engine =
            ConfidenceEngine::new(ConfidenceMethod::KarpLuby { epsilon: 0.01, delta: 0.01 })
                .with_budget(ConfidenceBudget { timeout: Some(Duration::ZERO), max_work: None })
                .with_threads(2);
        let out = engine.confidence_batch(&lineages, db.space(), None);
        for r in &out.results[..n_real] {
            assert!(!r.converged);
            assert_eq!((r.lower, r.upper), (0.0, 1.0));
            assert_eq!(r.elapsed, Duration::ZERO);
        }
        let taut = &out.results[n_real];
        assert!(taut.converged);
        assert_eq!((taut.estimate, taut.lower, taut.upper), (1.0, 1.0, 1.0));
        let empty = &out.results[n_real + 1];
        assert!(empty.converged);
        assert_eq!((empty.estimate, empty.lower, empty.upper), (0.0, 0.0, 0.0));
    }

    /// Degenerate thread counts must be clamped to ≥ 1, not spawn a
    /// zero-thread scope that would never fill any result slot.
    #[test]
    fn with_threads_zero_is_clamped_to_sequential() {
        let (db, lineages) = answers_db();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact).with_threads(0);
        assert_eq!(engine.threads, Some(1));
        let out = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        assert_eq!(out.results.len(), lineages.len());
        assert!(out.all_converged());
        // … and the clamped engine matches an explicitly sequential one.
        let sequential = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
            .with_threads(1)
            .confidence_batch(&lineages, db.space(), Some(db.origins()));
        for (a, b) in out.results.iter().zip(&sequential.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
    }

    /// The per-item hook used by cluster-level schedulers returns the same
    /// value-bearing fields as the batch path, and d-tree items expose their
    /// `CompileStats` for hardness calibration.
    #[test]
    fn compute_item_matches_batch_and_exposes_stats() {
        let (db, lineages) = answers_db();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(0.01));
        let batch = engine.confidence_batch(&lineages, db.space(), Some(db.origins()));
        for (i, lineage) in lineages.iter().enumerate() {
            let item = engine.compute_item(lineage, db.space(), Some(db.origins()), i, None, None);
            assert_eq!(item.estimate.to_bits(), batch.results[i].estimate.to_bits());
            assert_eq!(item.lower.to_bits(), batch.results[i].lower.to_bits());
            assert_eq!(item.upper.to_bits(), batch.results[i].upper.to_bits());
            let stats = item.stats.expect("d-tree items expose CompileStats");
            assert!(stats.work() > 0, "a non-trivial lineage must report work: {stats:?}");
        }
    }

    /// Hard chain lineages plus a shared space for streaming-maintenance
    /// tests: every lineage is a 2-literal chain over a sliding window, hard
    /// enough that a small step budget truncates.
    fn streaming_fixture() -> (ProbabilitySpace, Vec<events::VarId>, Vec<Dnf>) {
        let mut s = ProbabilitySpace::new();
        let vars: Vec<_> =
            (0..34).map(|i| s.add_bool(format!("x{i}"), 0.15 + 0.02 * i as f64)).collect();
        let lineages: Vec<Dnf> = (0..3)
            .map(|k| {
                Dnf::from_clauses(
                    (0..22)
                        .map(|i| events::Clause::from_bools(&[vars[i + k], vars[i + k + 1]]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        (s, vars, lineages)
    }

    /// The incremental path must agree with from-scratch recompilation: after
    /// appends, maintained bounds converge to the exact probability of the
    /// *grown* formula, and the second round actually takes the
    /// refresh/snapshot paths instead of recompiling.
    #[test]
    fn maintain_batch_tracks_grown_lineages_incrementally() {
        let (mut s, _vars, mut lineages) = streaming_fixture();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
            .with_budget(ConfidenceBudget { timeout: None, max_work: Some(4) });
        let mut pool = ResumablePool::new(8);
        // Round 0: first sight — everything compiles from scratch and the
        // truncated frontiers land in the pool.
        let none: Vec<Option<LineageDelta>> = vec![None; lineages.len()];
        let r0 = engine.maintain_batch(&lineages, &none, &s, None, &mut pool);
        assert_eq!(r0.recompiled, lineages.len());
        assert_eq!(r0.refreshed + r0.snapshots, 0);
        assert_eq!(pool.len(), lineages.len(), "truncated handles are pooled");
        // Round 1: append one fresh independent clause per item (new streamed
        // tuples) and one clause over existing variables.
        let mut deltas = Vec::new();
        for (i, lineage) in lineages.iter_mut().enumerate() {
            let fresh = s.add_bool(format!("t{i}"), 0.35);
            let old = lineage
                .clauses()
                .first()
                .and_then(|c| c.vars().next())
                .expect("chain lineage has variables");
            let grown = lineage.or(&Dnf::from_clauses(vec![
                events::Clause::from_bools(&[fresh]),
                events::Clause::from_bools(&[old, fresh]),
            ]));
            let delta = LineageDelta::between(lineage, &grown).expect("append-only growth");
            assert!(!delta.is_empty());
            deltas.push(Some(delta));
            *lineage = grown;
        }
        // Unlimited budget for the maintenance round: converge everything.
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact);
        let r1 = engine.maintain_batch(&lineages, &deltas, &s, None, &mut pool);
        assert_eq!(r1.recompiled, 0, "pooled handles must absorb the deltas: {r1:?}");
        assert_eq!(r1.refreshed, lineages.len());
        assert!(r1.all_converged());
        for (lineage, got) in lineages.iter().zip(&r1.results) {
            let exact = lineage.exact_probability_enumeration(&s);
            assert!(
                (got.estimate - exact).abs() < 1e-9,
                "maintained {} vs exact {exact}",
                got.estimate
            );
        }
        // Round 2: nothing changed — every item is served as a snapshot.
        let none: Vec<Option<LineageDelta>> = vec![None; lineages.len()];
        let r2 = engine.maintain_batch(&lineages, &none, &s, None, &mut pool);
        assert_eq!((r2.recompiled, r2.refreshed), (0, 0));
        assert_eq!(r2.snapshots, lineages.len());
        for (a, b) in r1.results.iter().zip(&r2.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert_eq!(b.elapsed, Duration::ZERO);
        }
    }

    /// Space invalidation between rounds poisons the pooled handles; the next
    /// round must fail closed into scratch recompilation and still be right.
    #[test]
    fn maintain_batch_fails_closed_on_invalidation() {
        let (mut s, _vars, lineages) = streaming_fixture();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact)
            .with_budget(ConfidenceBudget { timeout: None, max_work: Some(4) });
        let mut pool = ResumablePool::new(8);
        let none: Vec<Option<LineageDelta>> = vec![None; lineages.len()];
        engine.maintain_batch(&lineages, &none, &s, None, &mut pool);
        assert!(!pool.is_empty());
        s.invalidate(); // in-place change: every pooled frontier is stale
        let empty_delta = LineageDelta::between(&lineages[0], &lineages[0]).unwrap();
        assert!(empty_delta.is_empty());
        let deltas: Vec<Option<LineageDelta>> =
            lineages.iter().map(|_| Some(empty_delta.clone())).collect();
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeExact);
        let r = engine.maintain_batch(&lineages, &deltas, &s, None, &mut pool);
        assert_eq!(r.recompiled, lineages.len(), "poisoned handles must recompile: {r:?}");
        assert!(r.all_converged());
        for (lineage, got) in lineages.iter().zip(&r.results) {
            let exact = lineage.exact_probability_enumeration(&s);
            assert!((got.estimate - exact).abs() < 1e-9);
        }
    }

    /// Monte-Carlo methods have no incremental path: maintenance recompiles
    /// them with the engine's per-item seeds, bit-identical to a plain batch
    /// over the same final lineages.
    #[test]
    fn maintain_batch_monte_carlo_matches_plain_batch_bitwise() {
        let (db, lineages) = answers_db();
        let method = ConfidenceMethod::KarpLuby { epsilon: 0.1, delta: 0.01 };
        let engine = ConfidenceEngine::new(method).with_seed(0xbeef).with_threads(1);
        let mut pool = ResumablePool::new(8);
        let none: Vec<Option<LineageDelta>> = vec![None; lineages.len()];
        let maintained = engine.maintain_batch(&lineages, &none, db.space(), None, &mut pool);
        assert_eq!(maintained.recompiled, lineages.len());
        assert!(pool.is_empty(), "Monte-Carlo items leave no resumable handles");
        let batch = engine.confidence_batch(&lineages, db.space(), None);
        for (a, b) in maintained.results.iter().zip(&batch.results) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
    }

    #[test]
    fn item_seed_is_deterministic_and_spreads() {
        let a = ConfidenceEngine::item_seed(1, 0);
        let b = ConfidenceEngine::item_seed(1, 0);
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(ConfidenceEngine::item_seed(42, i));
        }
        assert_eq!(seen.len(), 100);
    }
}
