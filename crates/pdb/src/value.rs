//! Attribute values stored in probabilistic relations.

use std::fmt;

/// A relational attribute value.
///
/// The evaluation workloads of the paper (TPC-H, graphs, social networks)
/// only need integers and strings; a small closed enum keeps joins and
/// hashing fast.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// An owned string.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::str("b"), Value::Str("b".into()));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn ordering_within_variants() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("eu").to_string(), "eu");
    }
}
