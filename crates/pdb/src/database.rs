//! Probabilistic databases: collections of tuple-independent and
//! block-independent-disjoint tables over one shared probability space,
//! backed by a pluggable [`TableStore`].

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::path::Path;

use events::{Atom, Clause, Dnf, DnfView, LineageArena, ProbabilitySpace, VarId, VarOrigins};

use crate::relation::{AnnotatedTuple, Relation, Schema};
use crate::storage::{DiskStore, HeapStore, StorageError, StorageStats, TableStore};
use crate::value::Value;

/// A probabilistic database (Section VI-A of the paper, Figure 5).
///
/// * **Tuple-independent tables**: every tuple carries its own Boolean
///   variable and occurs in a world independently of all other tuples.
/// * **Block-independent-disjoint (BID) tables**: tuples are grouped in
///   blocks of mutually exclusive alternatives; one multi-valued variable per
///   block selects the alternative (or none).
/// * **Deterministic tables**: tuples present in every world (constant-true
///   lineage).
///
/// All tables share one [`ProbabilitySpace`], and each variable is labelled
/// with the table it originates from ([`Database::origins`]) — the metadata
/// that powers the independent-and factorization and the tractable
/// elimination orders of the d-tree algorithms.
///
/// Tuples live in a [`TableStore`]: the default heap store keeps decoded
/// relations in RAM, while [`Database::open_disk`] backs the database with
/// the LSM-style [`DiskStore`] (WAL + memtable + sorted runs) so tables can
/// outgrow the heap and survive restarts with their exact cache generation
/// (see [`Database::generation`]).
///
/// # Storage failures
///
/// Mutating methods treat storage-layer failures (WAL write errors, flush
/// I/O errors) as fatal and panic: a database whose durability log diverged
/// from its in-memory state has no sound continuation.
#[derive(Debug)]
pub struct Database {
    space: ProbabilitySpace,
    store: Box<dyn TableStore>,
    table_ids: BTreeMap<String, u32>,
    origins: VarOrigins,
    next_table_id: u32,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            space: ProbabilitySpace::new(),
            store: Box::new(HeapStore::new()),
            table_ids: BTreeMap::new(),
            origins: VarOrigins::new(),
            next_table_id: 0,
        }
    }
}

impl Clone for Database {
    /// Cloning yields an independent database: heap-backed clones copy their
    /// tables; a disk-backed clone **materializes to a heap snapshot**
    /// (two handles must never share one WAL). Either way the clones share
    /// the probability space's generation protocol, so divergence through
    /// table *replacement* on either side re-generations that side and can
    /// never serve the other side's cache entries.
    fn clone(&self) -> Self {
        Database {
            space: self.space.clone(),
            store: self.store.clone_box(),
            table_ids: self.table_ids.clone(),
            origins: self.origins.clone(),
            next_table_id: self.next_table_id,
        }
    }
}

/// Panics on storage failure — see the [`Database`] docs.
fn commit<T>(result: Result<T, StorageError>) -> T {
    result.unwrap_or_else(|e| panic!("storage engine failure: {e}"))
}

impl Database {
    /// Creates an empty heap-backed database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Opens (or initializes) a disk-backed database in `dir` with the given
    /// memtable byte budget.
    ///
    /// On an existing directory this **recovers** the pre-crash state: the
    /// WAL is replayed to rebuild the probability space variable-for-variable
    /// (bit-identical distributions and `VarId`s, hence the exact watermark),
    /// tables and their row counts are restored from runs + WAL tail, and the
    /// last logged epoch is restored via
    /// [`ProbabilitySpace::restore_generation`] — so the recovered space
    /// carries the exact generation fingerprint of the pre-crash one and
    /// warm [`dtree::SubformulaCache`] entries keyed against it remain
    /// servable.
    pub fn open_disk(dir: impl AsRef<Path>, memtable_budget: usize) -> Result<Self, StorageError> {
        let (store, meta) = DiskStore::open(dir.as_ref(), memtable_budget)?;
        let mut space = ProbabilitySpace::new();
        let mut origins = VarOrigins::new();
        for (name, distribution, origin) in &meta.vars {
            let v = space.try_add_discrete(name.clone(), distribution.clone()).map_err(|e| {
                StorageError::Corrupt(format!("invalid logged distribution for {name:?}: {e}"))
            })?;
            if let Some(o) = origin {
                origins.set(v, *o);
            }
        }
        if let Some(g) = meta.generation {
            space.restore_generation(g);
        }
        let table_ids: BTreeMap<String, u32> = meta.table_ids.iter().cloned().collect();
        let next_table_id = table_ids.values().max().map_or(0, |m| m + 1);
        let mut db = Database { space, store: Box::new(store), table_ids, origins, next_table_id };
        if meta.generation.is_none() {
            // Brand-new store: log the initial epoch so the very first
            // recovery can already restore an exact generation.
            db.store.log_epoch(db.space.generation())?;
        }
        Ok(db)
    }

    /// The shared probability space.
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// The generation fingerprint of the database's probability space
    /// (see [`ProbabilitySpace::generation`]).
    ///
    /// *Appending a fresh table* keeps the generation: the insert introduces
    /// new, independent variables and cannot change any probability computed
    /// before it, so warm [`dtree::SubformulaCache`] entries — tagged with
    /// the generation and the variable-count watermark they require — stay
    /// valid across inserts. *Replacing* an existing table (or calling
    /// [`Database::invalidate_caches`]) is a genuine in-place change and
    /// advances the generation, retiring every previous entry: after such a
    /// change, cached probabilities from before it can never be served again.
    ///
    /// For disk-backed databases the fingerprint doubles as the **recovery
    /// epoch**: every generation change is logged to the WAL, and
    /// [`Database::open_disk`] restores the last one exactly, so warm-cache
    /// semantics survive a restart.
    pub fn generation(&self) -> u64 {
        self.space.generation()
    }

    /// Explicitly advances the generation, invalidating every sub-formula
    /// cache entry computed against the current state. Mutating methods call
    /// this implicitly; it only needs to be called by hand after out-of-band
    /// changes (e.g. mutating a [`Relation`] obtained through interior
    /// access in an extension).
    pub fn invalidate_caches(&mut self) {
        self.space.invalidate();
        commit(self.store.log_epoch(self.space.generation()));
    }

    /// Variable origin labels (variable → table id).
    pub fn origins(&self) -> &VarOrigins {
        &self.origins
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.store.table_names()
    }

    /// Materializes a table by name as an owned [`Relation`] snapshot.
    ///
    /// Heap-backed databases return a clone of the stored relation;
    /// disk-backed ones decode every row. For large disk tables prefer
    /// [`Database::scan`], which streams tuples without materializing the
    /// relation.
    pub fn table(&self, name: &str) -> Option<Relation> {
        self.store.materialize(name)
    }

    /// Streams a table's tuples in insertion order without materializing the
    /// relation: borrowed from the heap store, decoded row-by-row from disk
    /// runs (resident memory stays bounded by the memtable budget). Unknown
    /// tables yield an empty stream.
    pub fn scan<'a>(&'a self, name: &str) -> impl Iterator<Item = Cow<'a, AnnotatedTuple>> + 'a {
        self.store.scan(name)
    }

    /// Keyed point read: the `index`-th row (insertion order) of a table, or
    /// `None` when the table or index is absent. Heap-backed databases answer
    /// in O(1); disk-backed ones map the position to its global sequence
    /// number and probe the memtable and run bloom filters
    /// ([`DiskStore::get_row`]) — never materializing or scanning the table.
    pub fn row(&self, name: &str, index: usize) -> Result<Option<AnnotatedTuple>, StorageError> {
        self.store.row_at(name, index)
    }

    /// Streams the clauses of a table's *Boolean* lineage (the disjunction
    /// of all tuple lineages) straight into `arena` — the out-of-core
    /// counterpart of [`Relation::boolean_lineage`]: only interned clause
    /// ids accumulate in memory, never the decoded tuples.
    pub fn scan_boolean_lineage(&self, name: &str, arena: &mut LineageArena) -> DnfView {
        arena.intern_clause_stream(
            self.scan(name).flat_map(|t| t.into_owned().lineage.into_clauses()),
        )
    }

    /// The schema of a table, if it exists.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.store.schema(name)
    }

    /// Numeric id assigned to a table (used as the variable-origin group).
    pub fn table_id(&self, name: &str) -> Option<u32> {
        self.table_ids.get(name).copied()
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.store.table_names().iter().map(|n| self.store.table_len(n)).sum()
    }

    /// Storage-layer resource counters (memtable bytes, WAL length, runs,
    /// flush/compaction counts). Heap-backed databases report only
    /// table/row counts.
    pub fn storage_stats(&self) -> StorageStats {
        self.store.stats()
    }

    /// Attaches an observability sink to the storage layer: disk-backed
    /// databases start emitting `storage.*` metrics (WAL appends/rotations,
    /// flushes, compactions, bloom screen outcomes) and trace events into
    /// it. A no-op for heap-backed databases, and with the default disabled
    /// sink every handle stays a no-op.
    pub fn attach_obs(&mut self, obs: &obs::Obs) {
        self.store.attach_obs(obs);
    }

    /// Attaches a fault-injection handle ([`crate::fault::Fault`]) to the
    /// storage layer: disk-backed databases start consulting their
    /// `wal.*`/`storage.*` failpoint sites. A no-op for heap-backed
    /// databases, and with the default disabled handle every site stays
    /// free.
    pub fn attach_fault(&mut self, fault: &crate::fault::Fault) {
        self.store.attach_fault(fault);
    }

    /// Forces buffered storage state down: drains the memtable into a run
    /// and fsyncs the WAL. No-op for heap-backed databases.
    pub fn sync_storage(&mut self) {
        commit(self.store.sync());
    }

    fn register_table(&mut self, name: &str) -> u32 {
        // Registering a *fresh* table is append-only: it introduces new
        // variables and tuples but cannot change any existing variable's
        // distribution, so every sub-formula probability computed before the
        // insert is still correct — the generation survives and warm cache
        // entries keep serving (watermark-scoped invalidation; see
        // [`ProbabilitySpace::watermark`]). Replacing an existing table is a
        // genuine in-place change and retires everything; the new generation
        // is logged as the store's recovery epoch.
        if let Some(&id) = self.table_ids.get(name) {
            self.space.invalidate();
            commit(self.store.log_epoch(self.space.generation()));
            return id;
        }
        let id = self.next_table_id;
        self.table_ids.insert(name.to_owned(), id);
        self.next_table_id += 1;
        id
    }

    /// Creates (or replaces) a tuple-independent table and returns a
    /// [`TupleWriter`] that streams rows straight into the store — the
    /// no-staging-`Vec` ingestion path the scaled workload generators use.
    pub fn tuple_writer(&mut self, name: &str, columns: &[&str]) -> TupleWriter<'_> {
        let table_id = self.register_table(name);
        commit(self.store.create_table(Schema::new(name, columns), table_id));
        TupleWriter { db: self, table: name.to_owned(), table_id, next_row: 0 }
    }

    /// A [`TupleWriter`] appending to an **existing** tuple-independent
    /// table, continuing its `"{name}#{row}"` numbering — the streaming-
    /// ingestion primitive behind
    /// [`Database::append_tuple_independent_rows`].
    ///
    /// # Panics
    /// Panics if no table of that name exists.
    pub fn append_writer(&mut self, name: &str) -> TupleWriter<'_> {
        let table_id = *self
            .table_ids
            .get(name)
            .unwrap_or_else(|| panic!("append_writer: unknown table {name:?}"));
        let next_row = self.store.table_len(name);
        TupleWriter { db: self, table: name.to_owned(), table_id, next_row }
    }

    /// Adds a tuple-independent table: each row `(values, probability)` gets
    /// its own Boolean variable. Probabilities must lie in `(0, 1)`; rows
    /// with probability `>= 1` are stored as deterministic (constant-true
    /// lineage) which keeps generators simple.
    pub fn add_tuple_independent_table(
        &mut self,
        name: &str,
        columns: &[&str],
        rows: Vec<(Vec<Value>, f64)>,
    ) -> Vec<Option<VarId>> {
        let mut writer = self.tuple_writer(name, columns);
        rows.into_iter().map(|(values, p)| writer.push(values, p)).collect()
    }

    /// Appends rows to an **existing** tuple-independent table in place —
    /// the streaming-ingestion primitive. Each appended row gets a fresh
    /// Boolean variable continuing the table's `"{name}#{row}"` numbering;
    /// rows with probability `>= 1` are stored as deterministic, exactly as
    /// in [`Database::add_tuple_independent_table`].
    ///
    /// Appending is **append-only growth**: it introduces new independent
    /// variables but cannot change any existing variable's distribution, so
    /// the space's [`generation`](Database::generation) survives (only the
    /// watermark advances) and both warm [`dtree::SubformulaCache`] entries
    /// and suspended [`crate::confidence::ResumableConfidence`] handles stay
    /// valid. This is what makes maintenance incremental: compute the
    /// per-answer [`events::LineageDelta`]s for the new rows and feed them to
    /// [`crate::ConfidenceEngine::maintain_batch`] instead of re-evaluating
    /// the query from scratch.
    ///
    /// Returns the per-row variables (`None` for deterministic rows).
    ///
    /// # Panics
    /// Panics if no table of that name exists — replacing or retyping a table
    /// is an in-place change and must go through
    /// [`Database::add_tuple_independent_table`], which invalidates caches.
    pub fn append_tuple_independent_rows(
        &mut self,
        name: &str,
        rows: Vec<(Vec<Value>, f64)>,
    ) -> Vec<Option<VarId>> {
        if !self.table_ids.contains_key(name) {
            panic!("append_tuple_independent_rows: unknown table {name:?}");
        }
        let mut writer = self.append_writer(name);
        rows.into_iter().map(|(values, p)| writer.push(values, p)).collect()
    }

    /// Adds a deterministic table (all tuples certain).
    pub fn add_deterministic_table(&mut self, name: &str, columns: &[&str], rows: Vec<Vec<Value>>) {
        let table_id = self.register_table(name);
        commit(self.store.create_table(Schema::new(name, columns), table_id));
        for values in rows {
            commit(self.store.append(name, &AnnotatedTuple::new(values, Dnf::tautology())));
        }
    }

    /// Adds a block-independent-disjoint table. Each block is a list of
    /// mutually exclusive alternatives `(values, probability)`; if the block
    /// probabilities sum to less than 1, the remaining mass is assigned to
    /// "no alternative present". One multi-valued variable is created per
    /// block (with domain value 0 reserved for "none" when needed).
    ///
    /// Returns the block variables.
    pub fn add_bid_table(
        &mut self,
        name: &str,
        columns: &[&str],
        blocks: Vec<Vec<(Vec<Value>, f64)>>,
    ) -> Vec<VarId> {
        let table_id = self.register_table(name);
        commit(self.store.create_table(Schema::new(name, columns), table_id));
        let mut block_vars = Vec::with_capacity(blocks.len());
        for (b, alternatives) in blocks.into_iter().enumerate() {
            assert!(!alternatives.is_empty(), "BID block must have at least one alternative");
            let total: f64 = alternatives.iter().map(|(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-9, "BID block probabilities must sum to at most 1");
            let leftover = (1.0 - total).max(0.0);
            // Domain: value 0 = "none" (if leftover > 0), then one value per
            // alternative.
            let mut distribution = Vec::new();
            let has_none = leftover > 1e-12;
            if has_none {
                distribution.push(leftover);
            }
            distribution.extend(alternatives.iter().map(|(_, p)| *p));
            let var = if distribution.len() == 1 {
                // Degenerate single certain alternative: deterministic tuple.
                None
            } else {
                let v = self.space.add_discrete(format!("{name}@{b}"), distribution);
                let info = self.space.info(v).expect("variable just added");
                commit(self.store.log_variable(&info.name, &info.distribution, Some(table_id)));
                self.origins.set(v, table_id);
                Some(v)
            };
            if let Some(v) = var {
                block_vars.push(v);
            }
            for (i, (values, _)) in alternatives.into_iter().enumerate() {
                let lineage = match var {
                    Some(v) => {
                        let offset = if has_none { 1 } else { 0 };
                        Dnf::singleton(Clause::singleton(Atom::new(v, (i + offset) as u32)))
                    }
                    None => Dnf::tautology(),
                };
                commit(self.store.append(name, &AnnotatedTuple::new(values, lineage)));
            }
        }
        block_vars
    }
}

/// Streams rows into one tuple-independent table of a [`Database`] without
/// any intermediate staging `Vec` — each pushed row creates its variable,
/// logs it, and lands in the [`TableStore`] immediately (triggering memtable
/// flushes on disk-backed stores as the byte budget fills). Obtained from
/// [`Database::tuple_writer`] (create/replace) or
/// [`Database::append_writer`] (append-only growth).
#[derive(Debug)]
pub struct TupleWriter<'a> {
    db: &'a mut Database,
    table: String,
    table_id: u32,
    next_row: usize,
}

impl TupleWriter<'_> {
    /// Appends one row. Probabilities `>= 1` store a deterministic row
    /// (constant-true lineage, no variable); otherwise the row gets a fresh
    /// Boolean variable named `"{table}#{row}"`, returned for lineage
    /// bookkeeping.
    pub fn push(&mut self, values: Vec<Value>, p: f64) -> Option<VarId> {
        let db = &mut *self.db;
        let (lineage, var) = if p >= 1.0 {
            (Dnf::tautology(), None)
        } else {
            let v = db.space.add_bool(format!("{}#{}", self.table, self.next_row), p);
            let info = db.space.info(v).expect("variable just added");
            commit(db.store.log_variable(&info.name, &info.distribution, Some(self.table_id)));
            db.origins.set(v, self.table_id);
            (Dnf::literal(v), Some(v))
        };
        commit(db.store.append(&self.table, &AnnotatedTuple::new(values, lineage)));
        self.next_row += 1;
        var
    }

    /// Rows in the table after the pushes so far.
    pub fn rows(&self) -> usize {
        self.next_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::testutil::TempDir;

    #[test]
    fn tuple_independent_table_creates_one_variable_per_row() {
        let mut db = Database::new();
        let vars = db.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
            ],
        );
        assert_eq!(vars.len(), 2);
        assert!(vars.iter().all(Option::is_some));
        assert_eq!(db.space().num_vars(), 2);
        let table = db.table("E").unwrap();
        assert_eq!(table.len(), 2);
        assert!((table.tuples[0].probability(db.space()) - 0.9).abs() < 1e-12);
        assert_eq!(db.origins().get(vars[0].unwrap()), db.table_id("E"));
    }

    #[test]
    fn certain_rows_become_deterministic() {
        let mut db = Database::new();
        let vars = db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 1.0), (vec![Value::Int(2)], 0.5)],
        );
        assert_eq!(vars[0], None);
        assert!(vars[1].is_some());
        let table = db.table("R").unwrap();
        assert!(table.tuples[0].lineage.is_tautology());
    }

    #[test]
    fn deterministic_table_has_constant_lineage() {
        let mut db = Database::new();
        db.add_deterministic_table(
            "N",
            &["id", "name"],
            vec![vec![Value::Int(1), Value::str("eu")]],
        );
        let t = db.table("N").unwrap();
        assert!(t.tuples[0].lineage.is_tautology());
        assert_eq!(db.space().num_vars(), 0);
    }

    #[test]
    fn bid_table_builds_mutually_exclusive_alternatives() {
        let mut db = Database::new();
        // One block with two alternatives 0.3 / 0.5 (0.2 mass on "none").
        let vars = db.add_bid_table(
            "E",
            &["u", "v", "present"],
            vec![vec![
                (vec![Value::Int(5), Value::Int(7), Value::Int(1)], 0.3),
                (vec![Value::Int(5), Value::Int(7), Value::Int(0)], 0.5),
            ]],
        );
        assert_eq!(vars.len(), 1);
        let var = vars[0];
        assert_eq!(db.space().domain_size(var), 3);
        let t = db.table("E").unwrap();
        let p1 = t.tuples[0].probability(db.space());
        let p2 = t.tuples[1].probability(db.space());
        assert!((p1 - 0.3).abs() < 1e-9);
        assert!((p2 - 0.5).abs() < 1e-9);
        // Mutually exclusive: conjunction of the two lineages is inconsistent.
        let both = t.tuples[0].lineage.and(&t.tuples[1].lineage);
        assert!(both.is_empty());
    }

    #[test]
    fn bid_block_with_full_mass_has_no_none_value() {
        let mut db = Database::new();
        let vars = db.add_bid_table(
            "E",
            &["x"],
            vec![vec![(vec![Value::Int(0)], 0.4), (vec![Value::Int(1)], 0.6)]],
        );
        assert_eq!(db.space().domain_size(vars[0]), 2);
        let t = db.table("E").unwrap();
        let total: f64 = t.tuples.iter().map(|tp| tp.probability(db.space())).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fresh_tables_keep_generation_but_replacement_invalidates() {
        let mut db = Database::new();
        let g0 = db.generation();
        db.add_tuple_independent_table("R", &["a"], vec![(vec![Value::Int(1)], 0.5)]);
        assert_eq!(db.generation(), g0, "inserting a fresh table is append-only");
        assert_eq!(db.space().watermark(), 1);
        db.add_deterministic_table("D", &["x"], vec![vec![Value::Int(1)]]);
        assert_eq!(db.generation(), g0);
        db.add_bid_table("B", &["x"], vec![vec![(vec![Value::Int(0)], 0.4)]]);
        assert_eq!(db.generation(), g0);
        assert_eq!(db.space().watermark(), 2);
        // Replacing an existing table is an in-place change: generation bumps.
        db.add_tuple_independent_table("R", &["a"], vec![(vec![Value::Int(2)], 0.7)]);
        let g1 = db.generation();
        assert!(g1 > g0, "replacing a table must advance the generation");
        db.invalidate_caches();
        assert!(db.generation() > g1);
        assert_eq!(db.generation(), db.space().generation());
    }

    /// Satellite regression for the clone/divergence edge: two clones of one
    /// database that diverge via table **replacement** must each land on a
    /// fresh, distinct generation — neither may keep serving cache entries
    /// tagged with the shared pre-clone fingerprint, and their post-divergence
    /// tags must not collide with each other either.
    #[test]
    fn cloned_databases_diverging_by_replacement_get_distinct_generations() {
        let mut a = Database::new();
        a.add_tuple_independent_table("R", &["x"], vec![(vec![Value::Int(1)], 0.5)]);
        let g0 = a.generation();
        let mut b = a.clone();
        assert_eq!(b.generation(), g0, "a clone starts on the shared generation");

        // B replaces R: B must leave the shared generation; A is untouched.
        b.add_tuple_independent_table("R", &["x"], vec![(vec![Value::Int(2)], 0.25)]);
        assert_eq!(a.generation(), g0);
        assert_ne!(b.generation(), g0, "replacement on a clone must re-generation it");

        // A replaces R too: now both clones moved, to *distinct* fresh tags.
        a.add_tuple_independent_table("R", &["x"], vec![(vec![Value::Int(3)], 0.75)]);
        assert_ne!(a.generation(), g0);
        assert_ne!(a.generation(), b.generation(), "divergent clones must not share a tag");

        // The replacement is fully isolated: each clone sees only its data.
        assert_eq!(a.table("R").unwrap().tuples[0].values, vec![Value::Int(3)]);
        assert_eq!(b.table("R").unwrap().tuples[0].values, vec![Value::Int(2)]);
    }

    #[test]
    fn appended_rows_extend_the_table_without_invalidation() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.5), (vec![Value::Int(2)], 1.0)],
        );
        let g0 = db.generation();
        let w0 = db.space().watermark();
        let vars = db.append_tuple_independent_rows(
            "R",
            vec![(vec![Value::Int(3)], 0.25), (vec![Value::Int(4)], 1.0)],
        );
        // Generation survives (caches and resumable handles stay valid), the
        // watermark advances past the new variable.
        assert_eq!(db.generation(), g0);
        assert!(db.space().watermark() > w0);
        let table = db.table("R").unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(vars.len(), 2);
        // Variable naming continues the table's row numbering.
        let v = vars[0].expect("probabilistic row gets a variable");
        assert_eq!(db.space().info(v).unwrap().name, "R#2");
        assert_eq!(db.origins().get(v), db.table_id("R"));
        // Deterministic appended rows carry the constant-true lineage.
        assert_eq!(vars[1], None);
        assert!(table.tuples[3].lineage.is_tautology());
        assert!((table.tuples[2].probability(db.space()) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn append_to_missing_table_panics() {
        let mut db = Database::new();
        db.append_tuple_independent_rows("nope", vec![(vec![Value::Int(1)], 0.5)]);
    }

    #[test]
    fn table_bookkeeping() {
        let mut db = Database::new();
        db.add_deterministic_table("A", &["x"], vec![]);
        db.add_deterministic_table("B", &["y"], vec![vec![Value::Int(1)]]);
        assert_eq!(db.table_names(), vec!["A", "B"]);
        assert_eq!(db.total_tuples(), 1);
        assert!(db.table("C").is_none());
        assert_ne!(db.table_id("A"), db.table_id("B"));
        assert_eq!(db.schema("B").unwrap().columns, vec!["y"]);
    }

    #[test]
    fn scan_streams_tuples_in_insertion_order() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(3)], 0.5), (vec![Value::Int(1)], 0.25)],
        );
        let scanned: Vec<AnnotatedTuple> = db.scan("R").map(Cow::into_owned).collect();
        assert_eq!(scanned, db.table("R").unwrap().tuples);
        assert_eq!(db.scan("missing").count(), 0);
    }

    #[test]
    fn scan_boolean_lineage_matches_the_materialized_disjunction() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.5), (vec![Value::Int(2)], 0.25)],
        );
        let mut arena = LineageArena::new();
        let view = db.scan_boolean_lineage("R", &mut arena);
        let dnf = db.table("R").unwrap().boolean_lineage();
        assert_eq!(view.to_dnf(&arena), dnf);
        assert_eq!(view.hash(&arena), dnf.canonical_hash());
    }

    #[test]
    fn disk_backed_database_matches_heap_semantics() {
        let dir = TempDir::new("db-parity");
        let mut heap = Database::new();
        let mut disk = Database::open_disk(dir.path(), 1 << 20).expect("open");
        for db in [&mut heap, &mut disk] {
            db.add_tuple_independent_table(
                "R",
                &["a", "b"],
                vec![
                    (vec![Value::Int(1), Value::str("x")], 0.5),
                    (vec![Value::Int(2), Value::str("y")], 1.0),
                    (vec![Value::Int(3), Value::str("z")], 0.125),
                ],
            );
            db.add_bid_table(
                "B",
                &["k"],
                vec![vec![(vec![Value::Int(0)], 0.3), (vec![Value::Int(1)], 0.5)]],
            );
        }
        assert_eq!(heap.table("R"), disk.table("R"));
        assert_eq!(heap.table("B"), disk.table("B"));
        assert_eq!(heap.total_tuples(), disk.total_tuples());
        // Lineage bit-identity end to end.
        assert_eq!(
            heap.table("R").unwrap().boolean_lineage(),
            disk.table("R").unwrap().boolean_lineage()
        );
    }

    #[test]
    fn tiny_memtable_budget_flushes_to_runs_without_changing_reads() {
        let dir = TempDir::new("db-flush");
        // A budget far below one row forces a flush on every append.
        let mut disk = Database::open_disk(dir.path(), 1).expect("open");
        let rows: Vec<(Vec<Value>, f64)> =
            (0..40).map(|i| (vec![Value::Int(i)], 0.3 + 0.01 * (i % 30) as f64)).collect();
        let mut heap = Database::new();
        heap.add_tuple_independent_table("R", &["a"], rows.clone());
        disk.add_tuple_independent_table("R", &["a"], rows);
        let stats = disk.storage_stats();
        assert!(stats.flushes >= 40, "every append must overflow the 1-byte budget");
        assert!(stats.compactions > 0, "run growth must trigger compaction");
        assert!(stats.runs < stats.flushes as usize, "compaction must merge runs");
        assert_eq!(disk.table("R"), heap.table("R"), "reads must be unaffected by flushes");
    }

    #[test]
    fn disk_database_recovers_tables_generation_and_watermark() {
        let dir = TempDir::new("db-recover");
        let (g, w, table, lineage) = {
            let mut db = Database::open_disk(dir.path(), 256).expect("open");
            db.add_tuple_independent_table(
                "R",
                &["a"],
                vec![(vec![Value::Int(1)], 0.5), (vec![Value::Int(2)], 0.75)],
            );
            // Replace once so the logged epoch is a non-initial generation.
            db.add_tuple_independent_table(
                "R",
                &["a"],
                (0..12).map(|i| (vec![Value::Int(i)], 0.25 + 0.05 * (i % 10) as f64)).collect(),
            );
            db.sync_storage();
            (
                db.generation(),
                db.space().watermark(),
                db.table("R").unwrap(),
                db.table("R").unwrap().boolean_lineage(),
            )
        };
        let recovered = Database::open_disk(dir.path(), 256).expect("recover");
        assert_eq!(recovered.generation(), g, "recovery epoch must restore the generation");
        assert_eq!(recovered.space().watermark(), w, "watermark must be exact");
        assert_eq!(recovered.table("R").unwrap(), table);
        assert_eq!(recovered.table("R").unwrap().boolean_lineage(), lineage);
        assert_eq!(recovered.table_id("R"), Some(0));
    }

    #[test]
    fn point_reads_match_materialized_rows_on_both_backends() {
        let dir = TempDir::new("db-row");
        let mut heap = Database::new();
        // A tiny budget forces flushes, so point reads cross memtable, runs,
        // and compacted runs alike.
        let mut disk = Database::open_disk(dir.path(), 64).expect("open");
        let rows: Vec<(Vec<Value>, f64)> =
            (0..20).map(|i| (vec![Value::Int(i)], 0.3 + 0.01 * (i % 30) as f64)).collect();
        heap.add_tuple_independent_table("R", &["a"], rows.clone());
        disk.add_tuple_independent_table("R", &["a"], rows);
        let rel = heap.table("R").unwrap();
        for (i, expected) in rel.tuples.iter().enumerate() {
            assert_eq!(heap.row("R", i).unwrap().as_ref(), Some(expected));
            assert_eq!(disk.row("R", i).unwrap().as_ref(), Some(expected), "row {i}");
        }
        assert_eq!(heap.row("R", rel.len()).unwrap(), None);
        assert_eq!(disk.row("R", rel.len()).unwrap(), None);
        assert_eq!(disk.row("missing", 0).unwrap(), None);
    }

    #[test]
    fn point_reads_survive_recovery() {
        let dir = TempDir::new("db-row-recover");
        let expected = {
            let mut db = Database::open_disk(dir.path(), 128).expect("open");
            db.add_tuple_independent_table(
                "R",
                &["a"],
                (0..15).map(|i| (vec![Value::Int(i)], 0.25 + 0.05 * (i % 10) as f64)).collect(),
            );
            db.sync_storage();
            db.table("R").unwrap()
        };
        let recovered = Database::open_disk(dir.path(), 128).expect("recover");
        for (i, tuple) in expected.tuples.iter().enumerate() {
            assert_eq!(recovered.row("R", i).unwrap().as_ref(), Some(tuple), "row {i}");
        }
        assert_eq!(recovered.row("R", expected.len()).unwrap(), None);
    }

    #[test]
    fn tuple_writer_appends_through_the_store() {
        let mut db = Database::new();
        let mut writer = db.tuple_writer("S", &["a"]);
        let v0 = writer.push(vec![Value::Int(1)], 0.5);
        let v1 = writer.push(vec![Value::Int(2)], 1.0);
        assert_eq!(writer.rows(), 2);
        assert!(v0.is_some() && v1.is_none());
        let mut more = db.append_writer("S");
        let v2 = more.push(vec![Value::Int(3)], 0.25);
        assert_eq!(db.space().info(v2.unwrap()).unwrap().name, "S#2");
        assert_eq!(db.table("S").unwrap().len(), 3);
    }
}
