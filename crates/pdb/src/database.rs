//! Probabilistic databases: collections of tuple-independent and
//! block-independent-disjoint tables over one shared probability space.

use std::collections::BTreeMap;

use events::{Atom, Clause, Dnf, ProbabilitySpace, VarId, VarOrigins};

use crate::relation::{AnnotatedTuple, Relation, Schema};
use crate::value::Value;

/// A probabilistic database (Section VI-A of the paper, Figure 5).
///
/// * **Tuple-independent tables**: every tuple carries its own Boolean
///   variable and occurs in a world independently of all other tuples.
/// * **Block-independent-disjoint (BID) tables**: tuples are grouped in
///   blocks of mutually exclusive alternatives; one multi-valued variable per
///   block selects the alternative (or none).
/// * **Deterministic tables**: tuples present in every world (constant-true
///   lineage).
///
/// All tables share one [`ProbabilitySpace`], and each variable is labelled
/// with the table it originates from ([`Database::origins`]) — the metadata
/// that powers the independent-and factorization and the tractable
/// elimination orders of the d-tree algorithms.
#[derive(Debug, Clone, Default)]
pub struct Database {
    space: ProbabilitySpace,
    tables: BTreeMap<String, Relation>,
    table_ids: BTreeMap<String, u32>,
    origins: VarOrigins,
    next_table_id: u32,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The shared probability space.
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// The generation fingerprint of the database's probability space
    /// (see [`ProbabilitySpace::generation`]).
    ///
    /// *Appending a fresh table* keeps the generation: the insert introduces
    /// new, independent variables and cannot change any probability computed
    /// before it, so warm [`dtree::SubformulaCache`] entries — tagged with
    /// the generation and the variable-count watermark they require — stay
    /// valid across inserts. *Replacing* an existing table (or calling
    /// [`Database::invalidate_caches`]) is a genuine in-place change and
    /// advances the generation, retiring every previous entry: after such a
    /// change, cached probabilities from before it can never be served again.
    pub fn generation(&self) -> u64 {
        self.space.generation()
    }

    /// Explicitly advances the generation, invalidating every sub-formula
    /// cache entry computed against the current state. Mutating methods call
    /// this implicitly; it only needs to be called by hand after out-of-band
    /// changes (e.g. mutating a [`Relation`] obtained through interior
    /// access in an extension).
    pub fn invalidate_caches(&mut self) {
        self.space.invalidate();
    }

    /// Variable origin labels (variable → table id).
    pub fn origins(&self) -> &VarOrigins {
        &self.origins
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Numeric id assigned to a table (used as the variable-origin group).
    pub fn table_id(&self, name: &str) -> Option<u32> {
        self.table_ids.get(name).copied()
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|r| r.len()).sum()
    }

    fn register_table(&mut self, name: &str) -> u32 {
        // Registering a *fresh* table is append-only: it introduces new
        // variables and tuples but cannot change any existing variable's
        // distribution, so every sub-formula probability computed before the
        // insert is still correct — the generation survives and warm cache
        // entries keep serving (watermark-scoped invalidation; see
        // [`ProbabilitySpace::watermark`]). Replacing an existing table is a
        // genuine in-place change and retires everything.
        if self.table_ids.contains_key(name) {
            self.space.invalidate();
            return self.table_ids[name];
        }
        let id = self.next_table_id;
        self.table_ids.insert(name.to_owned(), id);
        self.next_table_id += 1;
        id
    }

    /// Adds a tuple-independent table: each row `(values, probability)` gets
    /// its own Boolean variable. Probabilities must lie in `(0, 1)`; rows
    /// with probability `>= 1` are stored as deterministic (constant-true
    /// lineage) which keeps generators simple.
    pub fn add_tuple_independent_table(
        &mut self,
        name: &str,
        columns: &[&str],
        rows: Vec<(Vec<Value>, f64)>,
    ) -> Vec<Option<VarId>> {
        let table_id = self.register_table(name);
        let mut rel = Relation::empty(Schema::new(name, columns));
        let mut vars = Vec::with_capacity(rows.len());
        for (i, (values, p)) in rows.into_iter().enumerate() {
            let lineage = if p >= 1.0 {
                vars.push(None);
                Dnf::tautology()
            } else {
                let v = self.space.add_bool(format!("{name}#{i}"), p);
                self.origins.set(v, table_id);
                vars.push(Some(v));
                Dnf::literal(v)
            };
            rel.push(AnnotatedTuple::new(values, lineage));
        }
        self.tables.insert(name.to_owned(), rel);
        vars
    }

    /// Appends rows to an **existing** tuple-independent table in place —
    /// the streaming-ingestion primitive. Each appended row gets a fresh
    /// Boolean variable continuing the table's `"{name}#{row}"` numbering;
    /// rows with probability `>= 1` are stored as deterministic, exactly as
    /// in [`Database::add_tuple_independent_table`].
    ///
    /// Appending is **append-only growth**: it introduces new independent
    /// variables but cannot change any existing variable's distribution, so
    /// the space's [`generation`](Database::generation) survives (only the
    /// watermark advances) and both warm [`dtree::SubformulaCache`] entries
    /// and suspended [`crate::confidence::ResumableConfidence`] handles stay
    /// valid. This is what makes maintenance incremental: compute the
    /// per-answer [`events::LineageDelta`]s for the new rows and feed them to
    /// [`crate::ConfidenceEngine::maintain_batch`] instead of re-evaluating
    /// the query from scratch.
    ///
    /// Returns the per-row variables (`None` for deterministic rows).
    ///
    /// # Panics
    /// Panics if no table of that name exists — replacing or retyping a table
    /// is an in-place change and must go through
    /// [`Database::add_tuple_independent_table`], which invalidates caches.
    pub fn append_tuple_independent_rows(
        &mut self,
        name: &str,
        rows: Vec<(Vec<Value>, f64)>,
    ) -> Vec<Option<VarId>> {
        let table_id = *self
            .table_ids
            .get(name)
            .unwrap_or_else(|| panic!("append_tuple_independent_rows: unknown table {name:?}"));
        let rel = self.tables.get_mut(name).expect("registered table must exist");
        let start = rel.len();
        let mut vars = Vec::with_capacity(rows.len());
        for (i, (values, p)) in rows.into_iter().enumerate() {
            let lineage = if p >= 1.0 {
                vars.push(None);
                Dnf::tautology()
            } else {
                let v = self.space.add_bool(format!("{name}#{}", start + i), p);
                self.origins.set(v, table_id);
                vars.push(Some(v));
                Dnf::literal(v)
            };
            rel.push(AnnotatedTuple::new(values, lineage));
        }
        vars
    }

    /// Adds a deterministic table (all tuples certain).
    pub fn add_deterministic_table(&mut self, name: &str, columns: &[&str], rows: Vec<Vec<Value>>) {
        self.register_table(name);
        let mut rel = Relation::empty(Schema::new(name, columns));
        for values in rows {
            rel.push(AnnotatedTuple::new(values, Dnf::tautology()));
        }
        self.tables.insert(name.to_owned(), rel);
    }

    /// Adds a block-independent-disjoint table. Each block is a list of
    /// mutually exclusive alternatives `(values, probability)`; if the block
    /// probabilities sum to less than 1, the remaining mass is assigned to
    /// "no alternative present". One multi-valued variable is created per
    /// block (with domain value 0 reserved for "none" when needed).
    ///
    /// Returns the block variables.
    pub fn add_bid_table(
        &mut self,
        name: &str,
        columns: &[&str],
        blocks: Vec<Vec<(Vec<Value>, f64)>>,
    ) -> Vec<VarId> {
        let table_id = self.register_table(name);
        let mut rel = Relation::empty(Schema::new(name, columns));
        let mut block_vars = Vec::with_capacity(blocks.len());
        for (b, alternatives) in blocks.into_iter().enumerate() {
            assert!(!alternatives.is_empty(), "BID block must have at least one alternative");
            let total: f64 = alternatives.iter().map(|(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-9, "BID block probabilities must sum to at most 1");
            let leftover = (1.0 - total).max(0.0);
            // Domain: value 0 = "none" (if leftover > 0), then one value per
            // alternative.
            let mut distribution = Vec::new();
            let has_none = leftover > 1e-12;
            if has_none {
                distribution.push(leftover);
            }
            distribution.extend(alternatives.iter().map(|(_, p)| *p));
            let var = if distribution.len() == 1 {
                // Degenerate single certain alternative: deterministic tuple.
                None
            } else {
                let v = self.space.add_discrete(format!("{name}@{b}"), distribution);
                self.origins.set(v, table_id);
                Some(v)
            };
            if let Some(v) = var {
                block_vars.push(v);
            }
            for (i, (values, _)) in alternatives.into_iter().enumerate() {
                let lineage = match var {
                    Some(v) => {
                        let offset = if has_none { 1 } else { 0 };
                        Dnf::singleton(Clause::singleton(Atom::new(v, (i + offset) as u32)))
                    }
                    None => Dnf::tautology(),
                };
                rel.push(AnnotatedTuple::new(values, lineage));
            }
        }
        self.tables.insert(name.to_owned(), rel);
        block_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_independent_table_creates_one_variable_per_row() {
        let mut db = Database::new();
        let vars = db.add_tuple_independent_table(
            "E",
            &["u", "v"],
            vec![
                (vec![Value::Int(5), Value::Int(7)], 0.9),
                (vec![Value::Int(5), Value::Int(11)], 0.8),
            ],
        );
        assert_eq!(vars.len(), 2);
        assert!(vars.iter().all(Option::is_some));
        assert_eq!(db.space().num_vars(), 2);
        let table = db.table("E").unwrap();
        assert_eq!(table.len(), 2);
        assert!((table.tuples[0].probability(db.space()) - 0.9).abs() < 1e-12);
        assert_eq!(db.origins().get(vars[0].unwrap()), db.table_id("E"));
    }

    #[test]
    fn certain_rows_become_deterministic() {
        let mut db = Database::new();
        let vars = db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 1.0), (vec![Value::Int(2)], 0.5)],
        );
        assert_eq!(vars[0], None);
        assert!(vars[1].is_some());
        let table = db.table("R").unwrap();
        assert!(table.tuples[0].lineage.is_tautology());
    }

    #[test]
    fn deterministic_table_has_constant_lineage() {
        let mut db = Database::new();
        db.add_deterministic_table(
            "N",
            &["id", "name"],
            vec![vec![Value::Int(1), Value::str("eu")]],
        );
        let t = db.table("N").unwrap();
        assert!(t.tuples[0].lineage.is_tautology());
        assert_eq!(db.space().num_vars(), 0);
    }

    #[test]
    fn bid_table_builds_mutually_exclusive_alternatives() {
        let mut db = Database::new();
        // One block with two alternatives 0.3 / 0.5 (0.2 mass on "none").
        let vars = db.add_bid_table(
            "E",
            &["u", "v", "present"],
            vec![vec![
                (vec![Value::Int(5), Value::Int(7), Value::Int(1)], 0.3),
                (vec![Value::Int(5), Value::Int(7), Value::Int(0)], 0.5),
            ]],
        );
        assert_eq!(vars.len(), 1);
        let var = vars[0];
        assert_eq!(db.space().domain_size(var), 3);
        let t = db.table("E").unwrap();
        let p1 = t.tuples[0].probability(db.space());
        let p2 = t.tuples[1].probability(db.space());
        assert!((p1 - 0.3).abs() < 1e-9);
        assert!((p2 - 0.5).abs() < 1e-9);
        // Mutually exclusive: conjunction of the two lineages is inconsistent.
        let both = t.tuples[0].lineage.and(&t.tuples[1].lineage);
        assert!(both.is_empty());
    }

    #[test]
    fn bid_block_with_full_mass_has_no_none_value() {
        let mut db = Database::new();
        let vars = db.add_bid_table(
            "E",
            &["x"],
            vec![vec![(vec![Value::Int(0)], 0.4), (vec![Value::Int(1)], 0.6)]],
        );
        assert_eq!(db.space().domain_size(vars[0]), 2);
        let t = db.table("E").unwrap();
        let total: f64 = t.tuples.iter().map(|tp| tp.probability(db.space())).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fresh_tables_keep_generation_but_replacement_invalidates() {
        let mut db = Database::new();
        let g0 = db.generation();
        db.add_tuple_independent_table("R", &["a"], vec![(vec![Value::Int(1)], 0.5)]);
        assert_eq!(db.generation(), g0, "inserting a fresh table is append-only");
        assert_eq!(db.space().watermark(), 1);
        db.add_deterministic_table("D", &["x"], vec![vec![Value::Int(1)]]);
        assert_eq!(db.generation(), g0);
        db.add_bid_table("B", &["x"], vec![vec![(vec![Value::Int(0)], 0.4)]]);
        assert_eq!(db.generation(), g0);
        assert_eq!(db.space().watermark(), 2);
        // Replacing an existing table is an in-place change: generation bumps.
        db.add_tuple_independent_table("R", &["a"], vec![(vec![Value::Int(2)], 0.7)]);
        let g1 = db.generation();
        assert!(g1 > g0, "replacing a table must advance the generation");
        db.invalidate_caches();
        assert!(db.generation() > g1);
        assert_eq!(db.generation(), db.space().generation());
    }

    #[test]
    fn appended_rows_extend_the_table_without_invalidation() {
        let mut db = Database::new();
        db.add_tuple_independent_table(
            "R",
            &["a"],
            vec![(vec![Value::Int(1)], 0.5), (vec![Value::Int(2)], 1.0)],
        );
        let g0 = db.generation();
        let w0 = db.space().watermark();
        let vars = db.append_tuple_independent_rows(
            "R",
            vec![(vec![Value::Int(3)], 0.25), (vec![Value::Int(4)], 1.0)],
        );
        // Generation survives (caches and resumable handles stay valid), the
        // watermark advances past the new variable.
        assert_eq!(db.generation(), g0);
        assert!(db.space().watermark() > w0);
        let table = db.table("R").unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(vars.len(), 2);
        // Variable naming continues the table's row numbering.
        let v = vars[0].expect("probabilistic row gets a variable");
        assert_eq!(db.space().info(v).unwrap().name, "R#2");
        assert_eq!(db.origins().get(v), db.table_id("R"));
        // Deterministic appended rows carry the constant-true lineage.
        assert_eq!(vars[1], None);
        assert!(table.tuples[3].lineage.is_tautology());
        assert!((table.tuples[2].probability(db.space()) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn append_to_missing_table_panics() {
        let mut db = Database::new();
        db.append_tuple_independent_rows("nope", vec![(vec![Value::Int(1)], 0.5)]);
    }

    #[test]
    fn table_bookkeeping() {
        let mut db = Database::new();
        db.add_deterministic_table("A", &["x"], vec![]);
        db.add_deterministic_table("B", &["y"], vec![vec![Value::Int(1)]]);
        assert_eq!(db.table_names(), vec!["A", "B"]);
        assert_eq!(db.total_tuples(), 1);
        assert!(db.table("C").is_none());
        assert_ne!(db.table_id("A"), db.table_id("B"));
    }
}
