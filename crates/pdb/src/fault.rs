//! Deterministic fault injection and the storage retry policy.
//!
//! The anytime architecture degrades gracefully by construction — a truncated
//! d-tree still yields a valid `[L, U]` interval — but the system around it
//! (WAL, runs, shard workers) can only be *proven* failure-tolerant if its
//! failure paths are exercised deterministically. This module provides that:
//! named **failpoint sites** threaded through every fallible layer, driven by
//! a seed-deterministic [`FaultPlan`], mirroring the `obs` handle pattern —
//! a [`Fault`] handle is an `Option<Arc<..>>` that is a free no-op (one
//! branch per site) when no plan is installed.
//!
//! # Sites
//!
//! A site is a `&'static`-ish string named after the operation it guards,
//! e.g. `"wal.append"`, `"wal.sync"`, `"storage.flush"`, `"storage.compact"`,
//! `"storage.get"`, `"storage.scan"`, `"engine.item"`, `"cluster.worker"`.
//! The instrumented code calls [`Fault::check`] (or [`Fault::check_at`] with
//! an explicit token) at the site; the installed policy decides whether this
//! hit errors, panics, sleeps, or passes.
//!
//! # Determinism
//!
//! Every policy decision is a pure function of `(plan seed, site name,
//! token)`. [`Fault::check`] tokens are the site's own hit counter — exact
//! replay for single-threaded sequences like a storage workload.
//! [`Fault::check_at`] takes the token from the caller (the engine passes
//! the item's input index), so the decision is independent of thread
//! interleaving and a re-run of the same seed degrades exactly the same
//! items — the bit-identical-replay guarantee the differential tests pin.
//!
//! Injected errors are [`StorageError::Io`] with
//! [`std::io::ErrorKind::Interrupted`], which [`StorageError::is_transient`]
//! classifies as retryable; injected torn writes surface as permanent
//! (`UnexpectedEof`) errors since retrying a half-written frame would
//! corrupt the log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::storage::encode::splitmix64;
use crate::storage::StorageError;

/// What an installed rule does when its site is hit and the decision fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPolicy {
    /// Inject a transient I/O error on tokens `0..count` (error-once is
    /// `count: 1`).
    ErrorTimes {
        /// Number of leading hits that fail.
        count: u64,
    },
    /// Inject a transient I/O error on every `n`th hit (tokens `n-1`,
    /// `2n-1`, …).
    ErrorEveryNth {
        /// The period; `0` never fires.
        n: u64,
    },
    /// Inject a transient I/O error independently with probability `p`,
    /// drawn from a SplitMix64 stream keyed by `(seed, site, token)`.
    ErrorWithProbability {
        /// Per-hit injection probability in `[0, 1]`.
        p: f64,
    },
    /// Sleep for `delay` on every hit, then pass — models a slow device.
    Delay {
        /// Injected latency.
        delay: Duration,
    },
    /// Truncate the site's write to a `fraction` prefix on tokens
    /// `0..count`, surfacing a permanent error — models a crash mid-write.
    /// Only sites that consult [`Fault::torn`] (the WAL append) honor it.
    TornWrite {
        /// Fraction of the payload that reaches the file, in `[0, 1)`.
        fraction: f64,
        /// Number of leading hits that tear.
        count: u64,
    },
    /// Panic at the site on tokens `0..count` — models a crashing worker.
    /// The engine and the cluster scheduler isolate these panics and degrade
    /// the item instead of aborting the batch.
    PanicTimes {
        /// Number of leading hits that panic.
        count: u64,
    },
    /// Panic independently with probability `p` per hit, keyed like
    /// [`FaultPolicy::ErrorWithProbability`].
    PanicWithProbability {
        /// Per-hit panic probability in `[0, 1]`.
        p: f64,
    },
}

/// One installed rule: a site name plus the policy applied to its hits.
#[derive(Debug)]
struct Rule {
    site: String,
    policy: FaultPolicy,
    /// Hits observed at this rule (the token stream for [`Fault::check`]).
    hits: AtomicU64,
    /// Faults actually injected by this rule.
    injected: AtomicU64,
}

/// A deterministic fault schedule: a seed plus per-site policies. Build one
/// with the fluent API and install it via [`FaultPlan::build`]:
///
/// ```
/// use pdb::fault::{FaultPlan, FaultPolicy};
/// let fault = FaultPlan::new(42)
///     .on("wal.sync", FaultPolicy::ErrorTimes { count: 2 })
///     .on("storage.get", FaultPolicy::ErrorWithProbability { p: 0.01 })
///     .build();
/// assert!(fault.is_enabled());
/// assert!(fault.check("wal.sync").is_err()); // first hit fails
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(String, FaultPolicy)>,
    obs: obs::Obs,
}

impl FaultPlan {
    /// Starts an empty plan with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new(), obs: obs::Obs::default() }
    }

    /// Adds a rule: `policy` governs hits of `site`.
    pub fn on(mut self, site: impl Into<String>, policy: FaultPolicy) -> FaultPlan {
        self.rules.push((site.into(), policy));
        self
    }

    /// Attaches observability: injected faults bump `fault.injected` and
    /// emit `fault` trace events naming the site.
    pub fn with_obs(mut self, o: &obs::Obs) -> FaultPlan {
        self.obs = o.clone();
        self
    }

    /// Freezes the plan into a shareable [`Fault`] handle.
    pub fn build(self) -> Fault {
        let injected = self.obs.counter("fault.injected");
        let rules = self
            .rules
            .into_iter()
            .map(|(site, policy)| Rule {
                site,
                policy,
                hits: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            })
            .collect();
        Fault {
            inner: Some(Arc::new(FaultInner {
                seed: self.seed,
                rules,
                obs: self.obs,
                injected,
                total_injected: AtomicU64::new(0),
            })),
        }
    }
}

#[derive(Debug)]
struct FaultInner {
    seed: u64,
    rules: Vec<Rule>,
    obs: obs::Obs,
    injected: obs::Counter,
    total_injected: AtomicU64,
}

/// A handle on an installed [`FaultPlan`] — or, by default, on nothing at
/// all: the disabled handle short-circuits every site to a single `None`
/// branch, so production code pays nothing for carrying one.
#[derive(Debug, Clone, Default)]
pub struct Fault {
    inner: Option<Arc<FaultInner>>,
}

/// FNV-1a over the site name — mixed into the per-hit decision stream so
/// distinct sites under one seed draw independent streams.
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Uniform draw in `[0, 1)` from `(seed, site, token)`.
fn u01(seed: u64, site: &str, token: u64) -> f64 {
    let x = splitmix64(seed ^ site_hash(site) ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Fault {
    /// The always-pass handle (same as `Fault::default()`).
    pub fn disabled() -> Fault {
        Fault { inner: None }
    }

    /// `true` when a plan is installed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Total faults injected across all rules — lets tests assert the
    /// schedule actually fired without wiring up a registry.
    pub fn injected(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.total_injected.load(Ordering::Relaxed))
    }

    /// Hits a site with the rule's own hit counter as the decision token.
    /// Returns the injected transient error when the policy fires; panics
    /// for the panic policies; sleeps for delay policies.
    pub fn check(&self, site: &str) -> Result<(), StorageError> {
        let Some(inner) = &self.inner else { return Ok(()) };
        inner.fire(site, None)
    }

    /// Hits a site with a caller-provided token, making the decision a pure
    /// function of `(seed, site, token)` regardless of thread interleaving.
    /// The engine passes each item's input index so same-seed replays
    /// degrade exactly the same items.
    pub fn check_at(&self, site: &str, token: u64) -> Result<(), StorageError> {
        let Some(inner) = &self.inner else { return Ok(()) };
        inner.fire(site, Some(token))
    }

    /// For write sites: when a [`FaultPolicy::TornWrite`] rule fires on this
    /// hit, the number of prefix bytes (of `len`) that should reach the
    /// file. The caller writes that prefix and returns
    /// [`Fault::torn_error`].
    pub fn torn(&self, site: &str, len: usize) -> Option<usize> {
        let inner = self.inner.as_ref()?;
        for rule in inner.rules.iter().filter(|r| r.site == site) {
            if let FaultPolicy::TornWrite { fraction, count } = rule.policy {
                let token = rule.hits.fetch_add(1, Ordering::Relaxed);
                if token < count {
                    inner.record(rule, "torn");
                    let keep = ((len as f64) * fraction.clamp(0.0, 1.0)) as usize;
                    return Some(keep.min(len.saturating_sub(1)));
                }
            }
        }
        None
    }

    /// The permanent error surfaced after a torn write: retrying would
    /// append a second partial frame after the tear, so this is deliberately
    /// not transient.
    pub fn torn_error(site: &str) -> StorageError {
        StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("injected torn write at {site}"),
        ))
    }
}

impl FaultInner {
    fn fire(&self, site: &str, token: Option<u64>) -> Result<(), StorageError> {
        for rule in self.rules.iter().filter(|r| r.site == site) {
            // Torn writes only fire through `Fault::torn`; skip them here
            // *without* consuming a hit, so `count` means "the first `count`
            // write attempts tear" even though write sites also `check`.
            if matches!(rule.policy, FaultPolicy::TornWrite { .. }) {
                continue;
            }
            let counter = rule.hits.fetch_add(1, Ordering::Relaxed);
            let token = token.unwrap_or(counter);
            let (inject, panic) = match rule.policy {
                FaultPolicy::ErrorTimes { count } => (token < count, false),
                FaultPolicy::ErrorEveryNth { n } => (n > 0 && (token + 1).is_multiple_of(n), false),
                FaultPolicy::ErrorWithProbability { p } => (u01(self.seed, site, token) < p, false),
                FaultPolicy::PanicTimes { count } => (token < count, true),
                FaultPolicy::PanicWithProbability { p } => (u01(self.seed, site, token) < p, true),
                FaultPolicy::Delay { delay } => {
                    self.record(rule, "delay");
                    std::thread::sleep(delay);
                    (false, false)
                }
                // Torn writes only fire through `Fault::torn`.
                FaultPolicy::TornWrite { .. } => (false, false),
            };
            if inject {
                if panic {
                    self.record(rule, "panic");
                    panic!("injected fault panic at {site} (token {token})");
                }
                self.record(rule, "error");
                return Err(StorageError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected fault at {site} (token {token})"),
                )));
            }
        }
        Ok(())
    }

    fn record(&self, rule: &Rule, kind: &str) {
        rule.injected.fetch_add(1, Ordering::Relaxed);
        self.total_injected.fetch_add(1, Ordering::Relaxed);
        self.injected.inc();
        self.obs.event("fault").str("site", &rule.site).str("kind", kind).emit();
    }
}

/// Bounded exponential backoff with deterministic jitter, applied to
/// transient storage I/O ([`StorageError::is_transient`]). Permanent errors
/// propagate immediately; transient ones are retried up to `max_retries`
/// times with delay `base_delay · 2^attempt · jitter` capped at `max_delay`,
/// where the jitter factor in `[0.5, 1.5)` is a pure function of
/// `(seed, attempt)` — same policy, same sleep schedule, every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff base delay (attempt 0).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries, 100 µs base, 5 ms cap — absorbs transient hiccups
    /// without ever stalling a write path by more than ~10 ms.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(5),
            seed: 0x5eed_5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (fail fast).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The default retry counts with zero sleeping — what fault-matrix tests
    /// use so schedules with many injected errors stay fast.
    pub fn immediate() -> RetryPolicy {
        RetryPolicy { base_delay: Duration::ZERO, max_delay: Duration::ZERO, ..Default::default() }
    }

    /// The deterministic backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let jitter =
            0.5 + (splitmix64(self.seed ^ (attempt as u64 + 1)) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = Duration::from_nanos((exp.as_nanos() as f64 * jitter) as u64);
        jittered.min(self.max_delay)
    }

    /// Runs `op`, retrying transient failures per the policy. `on_retry` is
    /// called before each backoff sleep with the 0-based attempt number and
    /// the error — the storage layer bumps its `storage.retries` metric
    /// there.
    pub fn run_with<T>(
        &self,
        mut on_retry: impl FnMut(u32, &StorageError),
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.max_retries => {
                    on_retry(attempt, &e);
                    let delay = self.backoff(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`RetryPolicy::run_with`] without the retry callback.
    pub fn run<T>(&self, op: impl FnMut() -> Result<T, StorageError>) -> Result<T, StorageError> {
        self.run_with(|_, _| {}, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_always_passes() {
        let f = Fault::default();
        assert!(!f.is_enabled());
        for _ in 0..100 {
            assert!(f.check("anything").is_ok());
        }
        assert_eq!(f.torn("anything", 64), None);
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn error_times_fails_the_leading_hits_only() {
        let f = FaultPlan::new(1).on("s", FaultPolicy::ErrorTimes { count: 2 }).build();
        assert!(f.check("s").is_err());
        assert!(f.check("s").is_err());
        assert!(f.check("s").is_ok());
        assert!(f.check("other").is_ok(), "unrelated sites pass");
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn error_every_nth_is_periodic() {
        let f = FaultPlan::new(1).on("s", FaultPolicy::ErrorEveryNth { n: 3 }).build();
        let outcomes: Vec<bool> = (0..9).map(|_| f.check("s").is_err()).collect();
        assert_eq!(outcomes, [false, false, true, false, false, true, false, false, true]);
        let never = FaultPlan::new(1).on("s", FaultPolicy::ErrorEveryNth { n: 0 }).build();
        assert!((0..10).all(|_| never.check("s").is_ok()));
    }

    #[test]
    fn probabilistic_stream_is_seed_deterministic_and_roughly_calibrated() {
        let run = |seed: u64| -> Vec<bool> {
            let f =
                FaultPlan::new(seed).on("s", FaultPolicy::ErrorWithProbability { p: 0.2 }).build();
            (0..500).map(|_| f.check("s").is_err()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let hits = run(7).iter().filter(|&&b| b).count();
        assert!((60..140).contains(&hits), "p=0.2 over 500 hits fired {hits} times");
    }

    #[test]
    fn check_at_is_independent_of_hit_order() {
        let f = FaultPlan::new(3).on("s", FaultPolicy::ErrorWithProbability { p: 0.5 }).build();
        let forward: Vec<bool> = (0..32).map(|t| f.check_at("s", t).is_err()).collect();
        let g = FaultPlan::new(3).on("s", FaultPolicy::ErrorWithProbability { p: 0.5 }).build();
        let backward: Vec<bool> = (0..32).rev().map(|t| g.check_at("s", t).is_err()).collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward, "token decides, not arrival order");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix_then_clears() {
        let f =
            FaultPlan::new(1).on("w", FaultPolicy::TornWrite { fraction: 0.5, count: 1 }).build();
        let keep = f.torn("w", 100).expect("first hit tears");
        assert_eq!(keep, 50);
        assert_eq!(f.torn("w", 100), None, "only the first hit tears");
        assert!(!Fault::torn_error("w").is_transient(), "torn writes must not be retried");
    }

    #[test]
    fn torn_write_never_keeps_the_full_frame() {
        let f =
            FaultPlan::new(1).on("w", FaultPolicy::TornWrite { fraction: 1.0, count: 8 }).build();
        for len in [1usize, 2, 64] {
            let keep = f.torn("w", len).expect("tears");
            assert!(keep < len, "torn write of {len} kept {keep}");
        }
    }

    #[test]
    fn panic_policy_panics_and_is_isolatable() {
        let f = FaultPlan::new(1).on("p", FaultPolicy::PanicTimes { count: 1 }).build();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.check("p")));
        assert!(caught.is_err(), "first hit panics");
        assert!(f.check("p").is_ok(), "second hit passes");
        assert_eq!(f.injected(), 1);
    }

    #[test]
    fn retry_policy_recovers_transient_errors_within_budget() {
        let f = FaultPlan::new(1).on("s", FaultPolicy::ErrorTimes { count: 3 }).build();
        let mut retries = 0;
        let out = RetryPolicy::immediate().run_with(|_, _| retries += 1, || f.check("s"));
        assert!(out.is_ok(), "3 injected errors, 3 retries: the 4th attempt lands");
        assert_eq!(retries, 3);
    }

    #[test]
    fn retry_policy_gives_up_past_the_budget_and_never_retries_permanent_errors() {
        let f = FaultPlan::new(1).on("s", FaultPolicy::ErrorTimes { count: 10 }).build();
        assert!(RetryPolicy::immediate().run(|| f.check("s")).is_err());

        let mut calls = 0;
        let out: Result<(), _> = RetryPolicy::immediate().run(|| {
            calls += 1;
            Err(StorageError::corrupt("permanent"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "permanent errors fail fast");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), p.backoff(0));
        assert!(p.backoff(0) >= p.base_delay / 2);
        assert!(p.backoff(20) <= p.max_delay);
        assert!(RetryPolicy::immediate().backoff(3).is_zero());
    }

    #[test]
    fn injected_faults_reach_the_metrics_registry() {
        let o = obs::Obs::enabled();
        let f =
            FaultPlan::new(1).on("s", FaultPolicy::ErrorTimes { count: 2 }).with_obs(&o).build();
        let _ = f.check("s");
        let _ = f.check("s");
        let _ = f.check("s");
        let snap = o.snapshot().expect("enabled registry snapshots");
        let injected =
            snap.counters.iter().find(|(name, _)| name == "fault.injected").map(|&(_, v)| v);
        assert_eq!(injected, Some(2));
        assert!(snap.events.iter().any(|e| e.kind == "fault"));
    }
}
