//! Crash-recovery tests for the disk-backed storage engine: kill the
//! database at arbitrary write-ahead-log offsets, replay, and require the
//! recovered state to be **bit-identical** — for all five confidence
//! methods — to a database that was built directly with exactly the
//! surviving records. Plus the recovery-epoch guarantee: a clean restart
//! restores the exact pre-crash generation and watermark, so a warm shared
//! sub-formula cache keeps serving hits across the crash boundary.

use std::fs::OpenOptions;
use std::path::Path;

use dtree::SubformulaCache;
use events::{Clause, Dnf, ProbabilitySpace};
use pdb::confidence::{confidence_with, ConfidenceBudget, ConfidenceMethod};
use pdb::storage::testutil::TempDir;
use pdb::storage::wal::WalRecord;
use pdb::{Database, Value};
use proptest::prelude::*;

/// All five confidence methods of the paper's evaluation. The Monte-Carlo
/// methods run seeded, so both sides of every comparison are bit-exact.
fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
        ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.2 },
    ]
}

fn unbounded() -> ConfidenceBudget {
    ConfidenceBudget { timeout: None, max_work: None }
}

/// Simulates the crash: chops the WAL to exactly `len` bytes, as if the
/// process died mid-write with everything after the cut never reaching disk.
fn truncate_wal(dir: &Path, len: u64) {
    let file = OpenOptions::new().write(true).open(dir.join("wal.log")).expect("open wal");
    file.set_len(len).expect("truncate wal");
}

/// The WAL footprint of row `i`'s Variable record in a table named `table`
/// with id `table_id` — computed from the same record the writer logs, so
/// the test knows the exact byte where the variable becomes durable.
fn variable_record_len(table: &str, i: usize, p: f64, table_id: u32) -> u64 {
    WalRecord::Variable {
        name: format!("{table}#{i}"),
        distribution: vec![1.0 - p, p],
        origin: Some(table_id),
    }
    .framed_len()
}

/// Builds the oracle for a crash that preserved `vars` variable records and
/// `rows` row records (`rows <= vars <= rows + 1`; a crash between a row's
/// Variable and Row record leaves one orphan variable, which must exist on
/// both sides so seeded sampling consumes the randomness identically).
fn oracle(probs: &[f64], vars: usize, rows: usize) -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let ids: Vec<_> = probs[..vars]
        .iter()
        .enumerate()
        .map(|(i, &p)| space.add_bool(format!("v{i}"), p))
        .collect();
    let lineage = Dnf::from_clauses(ids[..rows].iter().map(|&v| Clause::from_bools(&[v])));
    (space, lineage)
}

/// Asserts that the recovered database computes, for every method,
/// bit-identical confidences to the oracle space/lineage.
fn assert_bit_identical(db: &Database, space: &ProbabilitySpace, lineage: &Dnf) {
    let recovered = db.table("S").expect("table survives metadata replay").boolean_lineage();
    assert_eq!(&recovered, lineage, "recovered lineage must match the surviving rows exactly");
    for method in all_methods() {
        let want = confidence_with(lineage, space, None, &method, &unbounded(), Some(7), None);
        let got =
            confidence_with(&recovered, db.space(), None, &method, &unbounded(), Some(7), None);
        assert_eq!(
            got.estimate.to_bits(),
            want.estimate.to_bits(),
            "estimate diverged for {method:?}"
        );
        assert_eq!(got.lower.to_bits(), want.lower.to_bits(), "lower diverged for {method:?}");
        assert_eq!(got.upper.to_bits(), want.upper.to_bits(), "upper diverged for {method:?}");
    }
}

/// Populates a fresh disk database with one tuple-independent table `S` and
/// returns the WAL offset after each push (`boundaries[i]` = bytes once row
/// `i`'s Variable **and** Row records are logged), plus the offset before
/// the first push.
fn populate(dir: &Path, probs: &[f64]) -> (u64, Vec<u64>) {
    let mut db = Database::open_disk(dir, 1 << 20).expect("open");
    let mut writer = db.tuple_writer("S", &["a"]);
    let mut boundaries = Vec::with_capacity(probs.len());
    for (i, &p) in probs.iter().enumerate() {
        writer.push(vec![Value::Int(i as i64)], p);
        boundaries.push(0);
    }
    drop(writer);
    // Re-derive the boundaries from the final length and the record sizes:
    // pushes append Variable then Row frames back to back, so walking the
    // arithmetic backwards from stats() is exact. (The writer borrows the
    // database mutably, so stats cannot be sampled mid-loop.)
    let mut at = db.storage_stats().wal_bytes;
    for (i, &p) in probs.iter().enumerate().rev() {
        boundaries[i] = at;
        at -= row_record_len(i) + variable_record_len("S", i, p, 0);
    }
    (at, boundaries)
}

/// The WAL footprint of row `i`'s Row record: frame header + tag + uid +
/// seq + payload length prefix + encoded tuple payload. The encoding is
/// fixed-width, so only the shape of the tuple matters, not the uid/seq.
fn row_record_len(i: usize) -> u64 {
    let tuple =
        pdb::AnnotatedTuple::new(vec![Value::Int(i as i64)], Dnf::literal(events::VarId(i as u32)));
    let payload = pdb::storage::encode::encode_tuple(&tuple);
    WalRecord::Row { uid: 0, seq: i as u64, payload }.framed_len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill the store at an arbitrary WAL offset (anywhere from "no rows
    /// survive" to "everything survives", including offsets that tear a
    /// frame in half or orphan a row's variable), replay, and require all
    /// five confidence methods to agree bit-for-bit with a database built
    /// directly from the surviving records.
    #[test]
    fn recovery_at_arbitrary_wal_offsets_is_bit_identical(
        probs in prop::collection::vec(0.1f64..0.9, 1..6),
        cut in 0.0f64..1.0,
    ) {
        let dir = TempDir::new("crash-prop");
        let (meta_end, boundaries) = populate(dir.path(), &probs);
        let end = *boundaries.last().expect("at least one row");
        // Truncate anywhere in the row region; the metadata prefix (epoch +
        // table records) must survive, as it would in a real crash: it was
        // durable before the first row was ever appended.
        let span = end - meta_end;
        let cut_at = meta_end + (cut * span as f64) as u64;
        truncate_wal(dir.path(), cut_at);

        // How many variable / row records are fully inside the cut.
        let mut vars = 0;
        let mut rows = 0;
        let mut start = meta_end;
        for (i, &b) in boundaries.iter().enumerate() {
            let var_end = start + variable_record_len("S", i, probs[i], 0);
            if cut_at >= var_end {
                vars = i + 1;
            }
            if cut_at >= b {
                rows = i + 1;
            }
            start = b;
        }

        let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
        prop_assert_eq!(db.space().num_vars(), vars, "surviving variable count");
        prop_assert_eq!(db.table("S").expect("table").len(), rows, "surviving row count");
        let (space, lineage) = oracle(&probs, vars, rows);
        prop_assert_eq!(db.space().watermark(), space.watermark());
        assert_bit_identical(&db, &space, &lineage);
    }
}

/// Deterministic corner: the cut lands exactly between one row's Variable
/// and Row records, leaving an orphan variable. Recovery must keep the
/// orphan (it was durable) and drop the row, and every method must still be
/// bit-identical to the oracle with the same orphan.
#[test]
fn a_cut_between_variable_and_row_orphans_the_variable() {
    let probs = [0.5, 0.25, 0.75];
    let dir = TempDir::new("crash-orphan");
    let (_, boundaries) = populate(dir.path(), &probs);
    let cut_at = boundaries[1] + variable_record_len("S", 2, probs[2], 0);
    truncate_wal(dir.path(), cut_at);

    let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
    assert_eq!(db.space().num_vars(), 3, "the orphan variable survives");
    assert_eq!(db.table("S").unwrap().len(), 2, "its row does not");
    let (space, lineage) = oracle(&probs, 3, 2);
    assert_bit_identical(&db, &space, &lineage);
}

/// The recovery-epoch guarantee end to end: flushes, a table replacement
/// (advancing the generation), a crash, recovery — the generation and
/// watermark come back exactly, and a warm shared cache that served the
/// pre-crash database keeps serving **hits** to the recovered one.
#[test]
fn recovery_restores_the_epoch_and_serves_the_warm_cache() {
    let dir = TempDir::new("crash-epoch");
    let cache = SubformulaCache::new();
    let method = ConfidenceMethod::DTreeExact;

    let (generation, watermark, lineage, want) = {
        // A 128-byte budget forces flushes, so recovery reads runs + WAL.
        let mut db = Database::open_disk(dir.path(), 128).expect("open");
        db.add_tuple_independent_table(
            "S",
            &["a"],
            (0..6).map(|i| (vec![Value::Int(i)], 0.3 + 0.05 * i as f64)).collect(),
        );
        // Replace once: the logged recovery epoch is now a *non-initial*
        // generation, the interesting case.
        db.add_tuple_independent_table(
            "S",
            &["a"],
            (0..8).map(|i| (vec![Value::Int(i)], 0.2 + 0.04 * i as f64)).collect(),
        );
        let lineage = db.table("S").unwrap().boolean_lineage();
        let want =
            confidence_with(&lineage, db.space(), None, &method, &unbounded(), None, Some(&cache));
        db.sync_storage();
        (db.generation(), db.space().watermark(), lineage, want)
        // `db` dropped here without any orderly shutdown: the crash.
    };
    assert!(cache.stats().entries > 0, "the pre-crash run must have populated the cache");

    let db = Database::open_disk(dir.path(), 128).expect("recover");
    assert_eq!(db.generation(), generation, "recovery epoch restores the exact generation");
    assert_eq!(db.space().watermark(), watermark, "watermark restored exactly");
    assert_eq!(db.table("S").unwrap().boolean_lineage(), lineage);

    let hits_before = cache.stats().hits;
    let got = confidence_with(
        &db.table("S").unwrap().boolean_lineage(),
        db.space(),
        None,
        &method,
        &unbounded(),
        None,
        Some(&cache),
    );
    assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
    assert!(
        cache.stats().hits > hits_before,
        "the warm cache must serve the recovered generation: {:?}",
        cache.stats()
    );
}

/// Killing the store immediately after open (metadata only, zero rows)
/// still recovers: empty table, initial generation logged and restored.
#[test]
fn recovery_of_an_empty_store_is_clean() {
    let dir = TempDir::new("crash-empty");
    let generation = {
        let mut db = Database::open_disk(dir.path(), 1 << 20).expect("open");
        let _ = db.tuple_writer("S", &["a"]);
        db.generation()
    };
    let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
    assert_eq!(db.generation(), generation);
    assert_eq!(db.space().num_vars(), 0);
    assert_eq!(db.table("S").expect("registered table").len(), 0);
}
