//! Crash-recovery tests for the disk-backed storage engine: kill the
//! database at arbitrary write-ahead-log offsets, replay, and require the
//! recovered state to be **bit-identical** — for all five confidence
//! methods — to a database that was built directly with exactly the
//! surviving records. Plus the recovery-epoch guarantee: a clean restart
//! restores the exact pre-crash generation and watermark, so a warm shared
//! sub-formula cache keeps serving hits across the crash boundary.

use std::fs::OpenOptions;
use std::path::Path;

use dtree::SubformulaCache;
use events::{Clause, Dnf, ProbabilitySpace};
use pdb::confidence::{confidence_with, ConfidenceBudget, ConfidenceMethod};
use pdb::storage::testutil::TempDir;
use pdb::storage::wal::WalRecord;
use pdb::{Database, Value};
use proptest::prelude::*;

/// All five confidence methods of the paper's evaluation. The Monte-Carlo
/// methods run seeded, so both sides of every comparison are bit-exact.
fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
        ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.2 },
    ]
}

fn unbounded() -> ConfidenceBudget {
    ConfidenceBudget { timeout: None, max_work: None }
}

/// Simulates the crash: chops the WAL to exactly `len` bytes, as if the
/// process died mid-write with everything after the cut never reaching disk.
fn truncate_wal(dir: &Path, len: u64) {
    let file = OpenOptions::new().write(true).open(dir.join("wal.log")).expect("open wal");
    file.set_len(len).expect("truncate wal");
}

/// The WAL footprint of row `i`'s Variable record in a table named `table`
/// with id `table_id` — computed from the same record the writer logs, so
/// the test knows the exact byte where the variable becomes durable.
fn variable_record_len(table: &str, i: usize, p: f64, table_id: u32) -> u64 {
    WalRecord::Variable {
        name: format!("{table}#{i}"),
        distribution: vec![1.0 - p, p],
        origin: Some(table_id),
    }
    .framed_len()
}

/// Builds the oracle for a crash that preserved `vars` variable records and
/// `rows` row records (`rows <= vars <= rows + 1`; a crash between a row's
/// Variable and Row record leaves one orphan variable, which must exist on
/// both sides so seeded sampling consumes the randomness identically).
fn oracle(probs: &[f64], vars: usize, rows: usize) -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let ids: Vec<_> = probs[..vars]
        .iter()
        .enumerate()
        .map(|(i, &p)| space.add_bool(format!("v{i}"), p))
        .collect();
    let lineage = Dnf::from_clauses(ids[..rows].iter().map(|&v| Clause::from_bools(&[v])));
    (space, lineage)
}

/// Asserts that the recovered database computes, for every method,
/// bit-identical confidences to the oracle space/lineage.
fn assert_bit_identical(db: &Database, space: &ProbabilitySpace, lineage: &Dnf) {
    let recovered = db.table("S").expect("table survives metadata replay").boolean_lineage();
    assert_eq!(&recovered, lineage, "recovered lineage must match the surviving rows exactly");
    for method in all_methods() {
        let want = confidence_with(lineage, space, None, &method, &unbounded(), Some(7), None);
        let got =
            confidence_with(&recovered, db.space(), None, &method, &unbounded(), Some(7), None);
        assert_eq!(
            got.estimate.to_bits(),
            want.estimate.to_bits(),
            "estimate diverged for {method:?}"
        );
        assert_eq!(got.lower.to_bits(), want.lower.to_bits(), "lower diverged for {method:?}");
        assert_eq!(got.upper.to_bits(), want.upper.to_bits(), "upper diverged for {method:?}");
    }
}

/// Populates a fresh disk database with one tuple-independent table `S` and
/// returns the WAL offset after each push (`boundaries[i]` = bytes once row
/// `i`'s Variable **and** Row records are logged), plus the offset before
/// the first push.
fn populate(dir: &Path, probs: &[f64]) -> (u64, Vec<u64>) {
    let mut db = Database::open_disk(dir, 1 << 20).expect("open");
    let mut writer = db.tuple_writer("S", &["a"]);
    let mut boundaries = Vec::with_capacity(probs.len());
    for (i, &p) in probs.iter().enumerate() {
        writer.push(vec![Value::Int(i as i64)], p);
        boundaries.push(0);
    }
    drop(writer);
    // Re-derive the boundaries from the final length and the record sizes:
    // pushes append Variable then Row frames back to back, so walking the
    // arithmetic backwards from stats() is exact. (The writer borrows the
    // database mutably, so stats cannot be sampled mid-loop.)
    let mut at = db.storage_stats().wal_bytes;
    for (i, &p) in probs.iter().enumerate().rev() {
        boundaries[i] = at;
        at -= row_record_len(i) + variable_record_len("S", i, p, 0);
    }
    (at, boundaries)
}

/// The WAL footprint of row `i`'s Row record: frame header + tag + uid +
/// seq + payload length prefix + encoded tuple payload. The encoding is
/// fixed-width, so only the shape of the tuple matters, not the uid/seq.
fn row_record_len(i: usize) -> u64 {
    let tuple =
        pdb::AnnotatedTuple::new(vec![Value::Int(i as i64)], Dnf::literal(events::VarId(i as u32)));
    let payload = pdb::storage::encode::encode_tuple(&tuple);
    WalRecord::Row { uid: 0, seq: i as u64, payload }.framed_len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kill the store at an arbitrary WAL offset (anywhere from "no rows
    /// survive" to "everything survives", including offsets that tear a
    /// frame in half or orphan a row's variable), replay, and require all
    /// five confidence methods to agree bit-for-bit with a database built
    /// directly from the surviving records.
    #[test]
    fn recovery_at_arbitrary_wal_offsets_is_bit_identical(
        probs in prop::collection::vec(0.1f64..0.9, 1..6),
        cut in 0.0f64..1.0,
    ) {
        let dir = TempDir::new("crash-prop");
        let (meta_end, boundaries) = populate(dir.path(), &probs);
        let end = *boundaries.last().expect("at least one row");
        // Truncate anywhere in the row region; the metadata prefix (epoch +
        // table records) must survive, as it would in a real crash: it was
        // durable before the first row was ever appended.
        let span = end - meta_end;
        let cut_at = meta_end + (cut * span as f64) as u64;
        truncate_wal(dir.path(), cut_at);

        // How many variable / row records are fully inside the cut.
        let mut vars = 0;
        let mut rows = 0;
        let mut start = meta_end;
        for (i, &b) in boundaries.iter().enumerate() {
            let var_end = start + variable_record_len("S", i, probs[i], 0);
            if cut_at >= var_end {
                vars = i + 1;
            }
            if cut_at >= b {
                rows = i + 1;
            }
            start = b;
        }

        let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
        prop_assert_eq!(db.space().num_vars(), vars, "surviving variable count");
        prop_assert_eq!(db.table("S").expect("table").len(), rows, "surviving row count");
        let (space, lineage) = oracle(&probs, vars, rows);
        prop_assert_eq!(db.space().watermark(), space.watermark());
        assert_bit_identical(&db, &space, &lineage);
    }
}

/// Deterministic corner: the cut lands exactly between one row's Variable
/// and Row records, leaving an orphan variable. Recovery must keep the
/// orphan (it was durable) and drop the row, and every method must still be
/// bit-identical to the oracle with the same orphan.
#[test]
fn a_cut_between_variable_and_row_orphans_the_variable() {
    let probs = [0.5, 0.25, 0.75];
    let dir = TempDir::new("crash-orphan");
    let (_, boundaries) = populate(dir.path(), &probs);
    let cut_at = boundaries[1] + variable_record_len("S", 2, probs[2], 0);
    truncate_wal(dir.path(), cut_at);

    let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
    assert_eq!(db.space().num_vars(), 3, "the orphan variable survives");
    assert_eq!(db.table("S").unwrap().len(), 2, "its row does not");
    let (space, lineage) = oracle(&probs, 3, 2);
    assert_bit_identical(&db, &space, &lineage);
}

/// The recovery-epoch guarantee end to end: flushes, a table replacement
/// (advancing the generation), a crash, recovery — the generation and
/// watermark come back exactly, and a warm shared cache that served the
/// pre-crash database keeps serving **hits** to the recovered one.
#[test]
fn recovery_restores_the_epoch_and_serves_the_warm_cache() {
    let dir = TempDir::new("crash-epoch");
    let cache = SubformulaCache::new();
    let method = ConfidenceMethod::DTreeExact;

    let (generation, watermark, lineage, want) = {
        // A 128-byte budget forces flushes, so recovery reads runs + WAL.
        let mut db = Database::open_disk(dir.path(), 128).expect("open");
        db.add_tuple_independent_table(
            "S",
            &["a"],
            (0..6).map(|i| (vec![Value::Int(i)], 0.3 + 0.05 * i as f64)).collect(),
        );
        // Replace once: the logged recovery epoch is now a *non-initial*
        // generation, the interesting case.
        db.add_tuple_independent_table(
            "S",
            &["a"],
            (0..8).map(|i| (vec![Value::Int(i)], 0.2 + 0.04 * i as f64)).collect(),
        );
        let lineage = db.table("S").unwrap().boolean_lineage();
        let want =
            confidence_with(&lineage, db.space(), None, &method, &unbounded(), None, Some(&cache));
        db.sync_storage();
        (db.generation(), db.space().watermark(), lineage, want)
        // `db` dropped here without any orderly shutdown: the crash.
    };
    assert!(cache.stats().entries > 0, "the pre-crash run must have populated the cache");

    let db = Database::open_disk(dir.path(), 128).expect("recover");
    assert_eq!(db.generation(), generation, "recovery epoch restores the exact generation");
    assert_eq!(db.space().watermark(), watermark, "watermark restored exactly");
    assert_eq!(db.table("S").unwrap().boolean_lineage(), lineage);

    let hits_before = cache.stats().hits;
    let got = confidence_with(
        &db.table("S").unwrap().boolean_lineage(),
        db.space(),
        None,
        &method,
        &unbounded(),
        None,
        Some(&cache),
    );
    assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
    assert!(
        cache.stats().hits > hits_before,
        "the warm cache must serve the recovered generation: {:?}",
        cache.stats()
    );
}

/// Killing the store immediately after open (metadata only, zero rows)
/// still recovers: empty table, initial generation logged and restored.
#[test]
fn recovery_of_an_empty_store_is_clean() {
    let dir = TempDir::new("crash-empty");
    let generation = {
        let mut db = Database::open_disk(dir.path(), 1 << 20).expect("open");
        let _ = db.tuple_writer("S", &["a"]);
        db.generation()
    };
    let db = Database::open_disk(dir.path(), 1 << 20).expect("recover");
    assert_eq!(db.generation(), generation);
    assert_eq!(db.space().num_vars(), 0);
    assert_eq!(db.table("S").expect("registered table").len(), 0);
}

/// A crash after WAL rotations: full flushes truncated the log down to
/// metadata + watermark, the rows live in manifest-referenced runs, and the
/// tail rows appended since the last rotation live only in the WAL.
/// Recovery must stitch runs and log back together bit-exactly for all
/// five confidence methods.
#[test]
fn recovery_across_a_wal_rotation_boundary_is_bit_identical() {
    let probs: Vec<f64> = (0..10).map(|i| 0.15 + 0.07 * i as f64).collect();
    let dir = TempDir::new("crash-rotation");
    {
        // A 128-byte budget forces a flush — and therefore a rotation —
        // every couple of appends.
        let mut db = Database::open_disk(dir.path(), 128).expect("open");
        db.add_tuple_independent_table(
            "S",
            &["a"],
            probs.iter().enumerate().map(|(i, &p)| (vec![Value::Int(i as i64)], p)).collect(),
        );
        let stats = db.storage_stats();
        assert!(stats.flushes >= 2, "the budget must force flushes: {stats:?}");
        assert_eq!(stats.wal_rotations, stats.flushes, "every full flush rotates the log");
        db.sync_storage();
        // Dropped here without orderly shutdown: the crash.
    }
    let db = Database::open_disk(dir.path(), 128).expect("recover");
    assert_eq!(db.space().num_vars(), probs.len(), "all variables survive rotation");
    assert_eq!(db.table("S").expect("table").len(), probs.len(), "all rows survive rotation");
    let (space, lineage) = oracle(&probs, probs.len(), probs.len());
    assert_eq!(db.space().watermark(), space.watermark());
    assert_bit_identical(&db, &space, &lineage);
}

/// Rotation keeps the log from growing: after a full flush the WAL holds
/// only metadata records plus the watermark, so its length drops below the
/// pre-flush length and row payloads never accumulate across flushes.
#[test]
fn rotation_truncates_the_wal_after_a_full_flush() {
    use pdb::storage::{DiskStore, TableStore};
    let dir = TempDir::new("crash-rotate-len");
    let tuple = |i: i64| {
        pdb::AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)))
    };
    let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
    store.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
    for i in 0..8 {
        store.append("S", &tuple(i)).unwrap();
    }
    let before = store.stats().wal_bytes;
    store.flush_memtable().unwrap();
    let after = store.stats();
    assert_eq!(after.flushes, 1);
    assert_eq!(after.wal_rotations, 1);
    assert!(
        after.wal_bytes < before,
        "rotation must shrink the log: {before} -> {}",
        after.wal_bytes
    );
    // A second fill-and-flush cycle rotates again instead of accumulating.
    for i in 8..16 {
        store.append("S", &tuple(i)).unwrap();
    }
    store.flush_memtable().unwrap();
    let again = store.stats();
    assert_eq!(again.wal_rotations, 2);
    assert!(again.wal_bytes <= after.wal_bytes + WalRecord::Watermark { next_seq: 0 }.framed_len());
}

/// The watermark record is what keeps sequence numbers monotone across a
/// rotation even when compaction leaves **zero** live run rows (covered
/// watermark = none): without it, recovery would restart `seq` at 0 and
/// alias keys of retired rows.
#[test]
fn the_watermark_keeps_sequence_numbers_monotone_across_rotation() {
    use pdb::storage::wal::Wal;
    use pdb::storage::{DiskStore, TableStore};
    let dir = TempDir::new("crash-watermark");
    let tuple = |i: i64| {
        pdb::AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)))
    };
    {
        let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
        store.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
        for i in 0..3 {
            store.append("S", &tuple(i)).unwrap();
        }
        store.flush_memtable().unwrap(); // run 0: seqs 0..3, rotation 1
        for i in 3..6 {
            store.append("S", &tuple(i)).unwrap();
        }
        store.flush_memtable().unwrap(); // run 1: seqs 3..6, rotation 2
        assert_eq!(store.stats().wal_rotations, 2);
        // Replace the table: every run row is now superseded, so compaction
        // merges two runs into an empty one — the case the watermark is for.
        store.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
        store.compact().unwrap();
        assert_eq!(store.stats().run_rows, 0, "all rows compacted away");
        // Dropped here: the crash.
    }
    let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
    assert_eq!(store.stats().run_rows, 0);
    store.append("S", &tuple(42)).unwrap();
    drop(store);
    let seqs: Vec<u64> = Wal::replay(&dir.path().join("wal.log"))
        .unwrap()
        .into_iter()
        .filter_map(|r| match r {
            WalRecord::Row { seq, .. } => Some(seq),
            _ => None,
        })
        .collect();
    assert_eq!(seqs, vec![6], "sequence numbers continue past the watermark, not from 0");
}

/// Keyed point lookups ([`pdb::storage::DiskStore::get_row`]) find rows in
/// the memtable and — behind the bloom screens — in flushed runs, across a
/// rotation boundary.
#[test]
fn keyed_point_lookups_work_across_flush_and_rotation() {
    use pdb::storage::{DiskStore, TableStore};
    let dir = TempDir::new("crash-getrow");
    let tuple = |i: i64| {
        pdb::AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)))
    };
    let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
    store.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
    for i in 0..5 {
        store.append("S", &tuple(i)).unwrap();
    }
    store.flush_memtable().unwrap(); // seqs 0..5 now live in a run
    store.append("S", &tuple(5)).unwrap(); // seq 5 lives in the memtable
    assert_eq!(store.get_row("S", 2).unwrap(), Some(tuple(2)), "run hit behind the bloom");
    assert_eq!(store.get_row("S", 5).unwrap(), Some(tuple(5)), "memtable hit");
    assert_eq!(store.get_row("S", 99).unwrap(), None, "absent seq");
    assert_eq!(store.get_row("nope", 0).unwrap(), None, "absent table");
}

/// Regression for torn-tail recovery: a torn WAL write leaves dead bytes
/// that replay skips, but a record appended *after* them would be
/// unreachable on the next replay unless recovery truncates the tail.
/// Acked post-recovery appends must survive a further restart.
#[test]
fn appends_after_recovering_from_a_torn_tail_stay_durable() {
    use pdb::fault::{FaultPlan, FaultPolicy};
    use pdb::storage::{DiskStore, TableStore};
    let dir = TempDir::new("crash-torn-tail");
    let tuple = |i: i64| {
        pdb::AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)))
    };
    {
        let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
        store.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
        store.append("S", &tuple(0)).unwrap();
        let fault = FaultPlan::new(1)
            .on("wal.append", FaultPolicy::TornWrite { fraction: 0.5, count: 1 })
            .build();
        store.attach_fault(&fault);
        assert!(store.append("S", &tuple(1)).is_err(), "the torn write is unacknowledged");
        assert!(store.append("S", &tuple(2)).is_err(), "a torn log fails fast until reopened");
        // Dropped here with the dead tail still in the file: the crash.
    }
    {
        let (mut store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
        assert_eq!(store.table_len("S"), 1, "only the acknowledged row survives the tear");
        store.append("S", &tuple(3)).unwrap();
    }
    let (store, _) = DiskStore::open(dir.path(), 1 << 20).unwrap();
    let got: Vec<_> = store.scan("S").map(|t| t.into_owned()).collect();
    assert_eq!(got, vec![tuple(0), tuple(3)], "post-recovery appends survive the next replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault matrix: a random schedule of appends, flushes, compactions,
    /// and restarts runs under a seeded plan injecting failing fsyncs, torn
    /// WAL writes, and flush/rotation/compaction errors, with an immediate
    /// (no-sleep) retry policy absorbing what it can. The oracle is the set
    /// of *acknowledged* appends: every restart must recover exactly them,
    /// in order, bit-exact — and the recovered lineage must agree with an
    /// oracle lineage for all five confidence methods.
    #[test]
    fn acknowledged_appends_survive_any_injected_fault_schedule(
        seed in 0u64..u64::MAX,
        tail in prop::collection::vec(0u8..6, 3..27),
        p in 0.05f64..0.35,
    ) {
        use pdb::fault::{FaultPlan, FaultPolicy, RetryPolicy};
        use pdb::storage::{DiskStore, TableStore};

        // Guarantee at least one append so the differential below has a row
        // to talk about.
        let mut ops = vec![0u8];
        ops.extend(tail);

        let dir = TempDir::new("fault-matrix");
        let fault = FaultPlan::new(seed)
            .on("wal.sync", FaultPolicy::ErrorWithProbability { p })
            .on("storage.flush", FaultPolicy::ErrorWithProbability { p })
            .on("storage.rotate", FaultPolicy::ErrorWithProbability { p })
            .on("storage.compact", FaultPolicy::ErrorWithProbability { p })
            .on("wal.append", FaultPolicy::TornWrite { fraction: 0.7, count: 2 })
            .build();
        let tuple = |i: i64| {
            pdb::AnnotatedTuple::new(vec![Value::Int(i)], Dnf::literal(events::VarId(i as u32)))
        };
        // A 256-byte budget forces organic flushes between the explicit ones.
        let reopen = |attach: bool| -> DiskStore {
            let (mut s, _) =
                DiskStore::open(dir.path(), 256).expect("recovery itself runs fault-free");
            if attach {
                s.set_retry(RetryPolicy::immediate());
                s.attach_fault(&fault);
            }
            s
        };

        let mut store = {
            let (mut s, _) = DiskStore::open(dir.path(), 256).unwrap();
            s.create_table(pdb::Schema::new("S", &["a"]), 0).unwrap();
            s.set_retry(RetryPolicy::immediate());
            s.attach_fault(&fault);
            s
        };
        let mut acked: Vec<i64> = Vec::new();
        let mut next = 0i64;
        for op in ops {
            match op {
                // An append is acknowledged iff it returns Ok; a rejected,
                // torn, or fail-fast append owes recovery nothing.
                0..=2 => {
                    if store.append("S", &tuple(next)).is_ok() {
                        acked.push(next);
                    }
                    next += 1;
                }
                3 => {
                    let _ = store.flush_memtable();
                }
                4 => {
                    let _ = store.compact();
                }
                _ => {
                    drop(store);
                    store = reopen(true);
                    prop_assert_eq!(
                        store.table_len("S"),
                        acked.len(),
                        "restart must recover exactly the acknowledged appends"
                    );
                }
            }
        }
        drop(store);

        let store = reopen(false);
        let rows: Vec<_> = store.scan("S").map(|t| t.into_owned()).collect();
        let want: Vec<_> = acked.iter().map(|&i| tuple(i)).collect();
        prop_assert_eq!(&rows, &want, "recovered rows != acknowledged appends");

        // Differential: recovered lineage vs an oracle built directly from
        // the acknowledged list, bit-identical for all five methods.
        let recovered = store.materialize("S").expect("table").boolean_lineage();
        let mut space = ProbabilitySpace::new();
        let ids: Vec<_> = (0..next)
            .map(|i| space.add_bool(format!("v{i}"), 0.15 + 0.05 * (i % 10) as f64))
            .collect();
        let lineage =
            Dnf::from_clauses(acked.iter().map(|&i| Clause::from_bools(&[ids[i as usize]])));
        prop_assert_eq!(&recovered, &lineage);
        for method in all_methods() {
            let want = confidence_with(&lineage, &space, None, &method, &unbounded(), Some(7), None);
            let got =
                confidence_with(&recovered, &space, None, &method, &unbounded(), Some(7), None);
            prop_assert_eq!(
                got.estimate.to_bits(),
                want.estimate.to_bits(),
                "estimate diverged for {:?}",
                method
            );
            prop_assert_eq!(got.lower.to_bits(), want.lower.to_bits());
            prop_assert_eq!(got.upper.to_bits(), want.upper.to_bits());
        }
    }
}
