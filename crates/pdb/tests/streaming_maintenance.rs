//! Property-based tests of delta-aware confidence maintenance: on randomly
//! generated append streams, maintaining a lineage through
//! [`ConfidenceEngine::maintain_batch`] — truncated frontiers pooled between
//! rounds, deltas absorbed in place — must land on the same answer as
//! compiling the final formula from scratch, for every confidence method and
//! with the subformula cache on or off. Destructive (non-append) edits must
//! fail closed instead of silently reusing a stale frontier.

use events::{Clause, Dnf, LineageDelta, ProbabilitySpace};
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::{ConfidenceEngine, ResumablePool};
use proptest::prelude::*;

/// A random append stream: an initial DNF over `probs.len()` variables, then
/// `rounds` of appended clauses. Each appended clause joins one fresh
/// variable (probability `fresh_p`) with existing variables of the answer, so
/// deltas genuinely dirty the suspended decomposition.
#[derive(Debug, Clone)]
struct StreamSpec {
    probs: Vec<f64>,
    clauses: Vec<Vec<usize>>,
    rounds: Vec<Vec<(f64, Vec<usize>)>>,
}

fn stream_spec() -> impl Strategy<Value = StreamSpec> {
    let probs = prop::collection::vec(0.1f64..0.9, 3..7);
    probs.prop_flat_map(|probs| {
        let nv = probs.len();
        let clause = prop::collection::vec(0..nv, 1..3);
        let clauses = prop::collection::vec(clause, 2..6);
        let append = (0.1f64..0.9, prop::collection::vec(0..nv, 0..3));
        let round = prop::collection::vec(append, 1..3);
        let rounds = prop::collection::vec(round, 1..4);
        (Just(probs), clauses, rounds).prop_map(|(probs, clauses, rounds)| StreamSpec {
            probs,
            clauses,
            rounds,
        })
    })
}

/// Materialises the stream: the shared space, the initial lineage, and one
/// grown lineage plus its append-only delta per round.
fn build_stream(spec: &StreamSpec) -> (ProbabilitySpace, Dnf, Vec<(Dnf, LineageDelta)>) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        spec.probs.iter().enumerate().map(|(i, &p)| space.add_bool(format!("x{i}"), p)).collect();
    let initial = Dnf::from_clauses(
        spec.clauses
            .iter()
            .map(|c| Clause::from_bools(&c.iter().map(|&i| vars[i]).collect::<Vec<_>>())),
    );
    let mut lineage = initial.clone();
    let mut steps = Vec::new();
    for (r, round) in spec.rounds.iter().enumerate() {
        let mut grown = lineage.clone();
        for (a, (fresh_p, existing)) in round.iter().enumerate() {
            let fresh = space.add_bool(format!("s{r}_{a}"), *fresh_p);
            let mut atoms = vec![fresh];
            for &i in existing {
                if !atoms.contains(&vars[i]) {
                    atoms.push(vars[i]);
                }
            }
            grown = grown.or(&Dnf::from_clauses(vec![Clause::from_bools(&atoms)]));
        }
        let delta = LineageDelta::between(&lineage, &grown).expect("or-growth is append-only");
        lineage = grown.clone();
        steps.push((grown, delta));
    }
    (space, initial, steps)
}

fn methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(1e-13),
        ConfidenceMethod::DTreeRelative(1e-13),
        ConfidenceMethod::KarpLuby { epsilon: 0.3, delta: 0.1 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.3 },
    ]
}

fn engine(method: ConfidenceMethod, cache: bool, budget: Option<u64>) -> ConfidenceEngine {
    let mut e = ConfidenceEngine::new(method)
        .with_seed(0x5eed)
        .with_budget(ConfidenceBudget { timeout: None, max_work: budget });
    if !cache {
        e = e.without_cache();
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta-maintained confidence equals from-scratch compilation of the
    /// final formula within 1e-12, for every method and cache setting.
    ///
    /// Intermediate rounds run under a tiny work budget so d-tree frontiers
    /// truncate and get pooled — the final round then *resumes* those
    /// delta-dirtied frontiers to convergence. With ε = 1e-13 error bounds,
    /// maintained and from-scratch answers are each within 1e-13 of the
    /// exact probability, hence within 2e-13 < 1e-12 of each other; the
    /// Monte-Carlo methods recompile with per-index seeds, so they are
    /// bit-identical by construction.
    #[test]
    fn maintained_equals_from_scratch(spec in stream_spec()) {
        let (space, initial, steps) = build_stream(&spec);
        let (last, rest) = steps.split_last().expect("at least one round");
        for method in methods() {
            for cache in [true, false] {
                let trickle = engine(method.clone(), cache, Some(2));
                let converge = engine(method.clone(), cache, None);
                let mut pool = ResumablePool::new(8);
                trickle.maintain_batch(std::slice::from_ref(&initial), &[None], &space, None, &mut pool);
                for (grown, delta) in rest {
                    trickle.maintain_batch(
                        std::slice::from_ref(grown),
                        &[Some(delta.clone())],
                        &space,
                        None,
                        &mut pool,
                    );
                }
                let maintained = converge.maintain_batch(
                    std::slice::from_ref(&last.0),
                    &[Some(last.1.clone())],
                    &space,
                    None,
                    &mut pool,
                );
                prop_assert!(maintained.all_converged(), "{method:?} did not converge");
                let scratch = converge.confidence_batch(std::slice::from_ref(&last.0), &space, None);
                let m = maintained.results[0].estimate;
                let s = scratch.results[0].estimate;
                prop_assert!(
                    (m - s).abs() <= 1e-12,
                    "{method:?} cache={cache}: maintained {m} vs scratch {s}"
                );
                if !method.is_deterministic() {
                    // MC maintenance recompiles every item with its
                    // index-derived seed — bit-identical to the plain batch.
                    prop_assert_eq!(m.to_bits(), s.to_bits());
                }
            }
        }
    }

    /// Destructive edits are not representable as deltas: removing or
    /// rewriting a clause makes [`LineageDelta::between`] return `None`, so
    /// callers are forced onto the recompile path.
    #[test]
    fn destructive_edits_yield_no_delta(spec in stream_spec()) {
        let (_, initial, _) = build_stream(&spec);
        prop_assume!(initial.len() > 1);
        let shrunk = Dnf::from_clauses(initial.clauses()[1..].to_vec());
        prop_assert!(LineageDelta::between(&initial, &shrunk).is_none());
        // Append-after-delete is still not an append overall.
        let mutated = shrunk.or(&Dnf::from_clauses(vec![initial.clauses()[0].clone()]));
        if mutated != initial {
            prop_assert!(LineageDelta::between(&initial, &mutated).is_none());
        }
    }
}

/// A chain lineage long enough that a `max_work`-budgeted d-tree run
/// truncates (small chains converge within a couple of decomposition
/// steps, leaving nothing to pool).
fn chain_fixture() -> (ProbabilitySpace, Vec<events::VarId>, Dnf) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        (0..34).map(|i| space.add_bool(format!("x{i}"), 0.15 + 0.02 * i as f64)).collect();
    let lineage = Dnf::from_clauses((0..22).map(|i| Clause::from_bools(&[vars[i], vars[i + 1]])));
    (space, vars, lineage)
}

/// An in-place space invalidation (the destructive-edit signal) fails
/// closed: pooled handles are discarded and every item recompiles against
/// the current space instead of reporting poisoned bounds.
#[test]
fn invalidated_space_fails_closed_to_recompilation() {
    let (mut space, _, lineage) = chain_fixture();
    let exact =
        dtree::exact_probability(&lineage, &space, &dtree::CompileOptions::default()).probability;

    let trickle = engine(ConfidenceMethod::DTreeExact, true, Some(4));
    let mut pool = ResumablePool::new(4);
    trickle.maintain_batch(std::slice::from_ref(&lineage), &[None], &space, None, &mut pool);
    assert_eq!(pool.len(), 1, "budgeted run should truncate and pool a frontier");

    space.invalidate();
    let converge = engine(ConfidenceMethod::DTreeExact, true, None);
    let r =
        converge.maintain_batch(std::slice::from_ref(&lineage), &[None], &space, None, &mut pool);
    assert_eq!(r.recompiled, 1);
    assert_eq!(r.refreshed + r.snapshots, 0);
    assert!(r.all_converged());
    assert!((r.results[0].estimate - exact).abs() < 1e-9);
}

/// The refresh path is genuinely exercised: after budget-truncated rounds,
/// a later round resumes pooled frontiers (refreshed/snapshot, not
/// recompiled) and still converges to the exact probability.
#[test]
fn delta_rounds_resume_pooled_frontiers() {
    let (mut space, vars, mut lineage) = chain_fixture();

    let trickle = engine(ConfidenceMethod::DTreeRelative(1e-6), true, Some(4));
    let mut pool = ResumablePool::new(4);
    trickle.maintain_batch(std::slice::from_ref(&lineage), &[None], &space, None, &mut pool);
    assert_eq!(pool.len(), 1, "budgeted run should truncate and pool a frontier");

    let fresh = space.add_bool("s0", 0.3);
    let grown = lineage.or(&Dnf::from_clauses(vec![Clause::from_bools(&[fresh, vars[0]])]));
    let delta = LineageDelta::between(&lineage, &grown).expect("append-only");
    lineage = grown;

    let converge = engine(ConfidenceMethod::DTreeRelative(1e-6), true, None);
    let r = converge.maintain_batch(&[lineage.clone()], &[Some(delta)], &space, None, &mut pool);
    assert_eq!(r.recompiled, 0, "pooled frontier must be reused");
    assert_eq!(r.refreshed + r.snapshots, 1);
    assert!(r.all_converged());
    let exact =
        dtree::exact_probability(&lineage, &space, &dtree::CompileOptions::default()).probability;
    assert!((r.results[0].estimate - exact).abs() < 1e-6 * exact + 1e-12);
}
