//! Differential tests for the fault-injection subsystem at the engine
//! layer: with no plan installed the engine is bit-identical to one that
//! never heard of faults; with a seeded plan every item still gets a
//! result (degraded items fail closed to the vacuous `[0, 1]` interval,
//! untouched items stay bit-identical to the clean run); and the whole
//! schedule replays bit-identically from the same seed, independent of
//! thread count.

use events::{Clause, Dnf, ProbabilitySpace};
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod, ConfidenceResult, DegradationReason};
use pdb::fault::{FaultPlan, FaultPolicy};
use pdb::ConfidenceEngine;

/// All five confidence methods of the paper's evaluation. The Monte-Carlo
/// methods run seeded, so both sides of every comparison are bit-exact.
fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
        ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.2 },
    ]
}

/// A batch of `n` distinct two-clause lineages over one shared space —
/// small enough that DTreeExact stays fast, distinct enough that the
/// deduplicator leaves every item its own representative (so the per-item
/// fault token is exercised for every index).
fn fixture(n: usize) -> (ProbabilitySpace, Vec<Dnf>) {
    let mut space = ProbabilitySpace::new();
    let ids: Vec<_> = (0..n + 2)
        .map(|i| space.add_bool(format!("v{i}"), 0.15 + 0.05 * (i % 10) as f64))
        .collect();
    let lineages = (0..n)
        .map(|i| {
            Dnf::from_clauses([
                Clause::from_bools(&[ids[i], ids[i + 1]]),
                Clause::from_bools(&[ids[i + 2]]),
            ])
        })
        .collect();
    (space, lineages)
}

fn engine(method: ConfidenceMethod) -> ConfidenceEngine {
    ConfidenceEngine::new(method)
        .with_seed(7)
        .with_budget(ConfidenceBudget { timeout: None, max_work: None })
}

/// Bit-exact equality of every value-bearing field, including the
/// degradation marker. `elapsed` is wall-clock and deliberately excluded.
fn assert_bit_identical(got: &ConfidenceResult, want: &ConfidenceResult, what: &str) {
    assert_eq!(got.estimate.to_bits(), want.estimate.to_bits(), "estimate diverged: {what}");
    assert_eq!(got.lower.to_bits(), want.lower.to_bits(), "lower diverged: {what}");
    assert_eq!(got.upper.to_bits(), want.upper.to_bits(), "upper diverged: {what}");
    assert_eq!(got.converged, want.converged, "converged diverged: {what}");
    assert_eq!(got.degraded, want.degraded, "degraded diverged: {what}");
}

/// An installed-but-empty plan, and a plan whose only rule targets a
/// storage site the engine never hits, are both bit-identical to running
/// with no plan at all — the "free when disabled" half of the contract,
/// for all five methods.
#[test]
fn an_irrelevant_fault_plan_is_bit_identical_to_none_for_every_method() {
    let (space, lineages) = fixture(8);
    for method in all_methods() {
        let clean =
            engine(method.clone()).with_threads(1).confidence_batch(&lineages, &space, None);
        let empty = FaultPlan::new(42).build();
        let elsewhere = FaultPlan::new(42)
            .on("storage.flush", FaultPolicy::ErrorTimes { count: u64::MAX })
            .build();
        for (label, fault) in [("empty plan", &empty), ("storage-only plan", &elsewhere)] {
            let got = engine(method.clone())
                .with_threads(1)
                .with_fault(fault)
                .confidence_batch(&lineages, &space, None);
            for (i, (g, w)) in got.results.iter().zip(&clean.results).enumerate() {
                assert_bit_identical(g, w, &format!("{method:?} item {i} under {label}"));
            }
            assert_eq!(fault.injected(), 0, "{label} must never fire at the engine");
        }
    }
}

/// A seeded panic schedule at `engine.item` degrades *some* items — and
/// nothing else: every item still gets a result, degraded items carry the
/// sound vacuous interval with the `WorkerPanic` reason, untouched items
/// are bit-identical to the clean run, and no panic escapes the batch.
#[test]
fn injected_panics_degrade_hit_items_and_leave_the_rest_bit_identical() {
    let (space, lineages) = fixture(16);
    let clean = engine(ConfidenceMethod::DTreeExact)
        .with_threads(1)
        .confidence_batch(&lineages, &space, None);
    let fault =
        FaultPlan::new(3).on("engine.item", FaultPolicy::PanicWithProbability { p: 0.4 }).build();
    let got = engine(ConfidenceMethod::DTreeExact)
        .with_threads(1)
        .with_fault(&fault)
        .confidence_batch(&lineages, &space, None);

    assert_eq!(got.results.len(), lineages.len(), "every item gets a result");
    let mut degraded = 0u64;
    for (i, (g, w)) in got.results.iter().zip(&clean.results).enumerate() {
        match g.degraded {
            Some(reason) => {
                degraded += 1;
                assert_eq!(reason, DegradationReason::WorkerPanic, "item {i}");
                assert_eq!(g.estimate, 0.5, "item {i}: degraded midpoint estimate");
                assert_eq!(g.lower, 0.0, "item {i}: vacuous lower bound");
                assert_eq!(g.upper, 1.0, "item {i}: vacuous upper bound");
                assert!(!g.converged, "item {i}: degraded results never claim convergence");
            }
            None => assert_bit_identical(g, w, &format!("untouched item {i}")),
        }
    }
    assert!(
        degraded > 0 && degraded < lineages.len() as u64,
        "seed 3 at p=0.4 must degrade some but not all of 16 items, got {degraded}"
    );
    assert_eq!(fault.injected(), degraded, "the injected counter mirrors the degraded set");
}

/// Injected transient *errors* at the engine boundary (as opposed to
/// panics) take the same degradation path: sound vacuous interval, no
/// batch abort, intervals always contain the clean answer.
#[test]
fn injected_errors_fail_closed_to_a_sound_interval() {
    let (space, lineages) = fixture(12);
    let clean = engine(ConfidenceMethod::DTreeExact)
        .with_threads(1)
        .confidence_batch(&lineages, &space, None);
    let fault =
        FaultPlan::new(9).on("engine.item", FaultPolicy::ErrorWithProbability { p: 0.5 }).build();
    let got = engine(ConfidenceMethod::DTreeExact)
        .with_threads(1)
        .with_fault(&fault)
        .confidence_batch(&lineages, &space, None);
    assert!(fault.injected() > 0, "seed 9 at p=0.5 must fire at least once over 12 items");
    for (i, (g, w)) in got.results.iter().zip(&clean.results).enumerate() {
        assert!(
            g.lower <= w.estimate && w.estimate <= g.upper,
            "item {i}: interval [{}, {}] must contain the clean answer {}",
            g.lower,
            g.upper,
            w.estimate
        );
    }
}

/// The replay guarantee: the fault decision for an item is a pure function
/// of `(plan seed, site, item index)`, so the same plan seed degrades the
/// *identical* set of items with bit-identical results — across fresh runs
/// and across thread counts, for all five methods.
#[test]
fn same_seed_replay_is_bit_identical_across_runs_and_thread_counts() {
    let (space, lineages) = fixture(12);
    for method in all_methods() {
        let runs: Vec<_> = [1usize, 1, 4]
            .iter()
            .map(|&threads| {
                let fault = FaultPlan::new(11)
                    .on("engine.item", FaultPolicy::PanicWithProbability { p: 0.35 })
                    .build();
                engine(method.clone())
                    .with_threads(threads)
                    .with_fault(&fault)
                    .confidence_batch(&lineages, &space, None)
            })
            .collect();
        assert!(
            runs[0].results.iter().any(|r| r.degraded.is_some()),
            "{method:?}: seed 11 must degrade at least one item for the replay to be interesting"
        );
        for (label, other) in [("second run", &runs[1]), ("4-thread run", &runs[2])] {
            for (i, (w, g)) in runs[0].results.iter().zip(&other.results).enumerate() {
                assert_bit_identical(g, w, &format!("{method:?} item {i} on {label}"));
            }
        }
    }
}
