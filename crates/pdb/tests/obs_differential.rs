//! Differential property tests for the observability layer: attaching a
//! metrics registry — enabled or the default no-op — never changes any
//! computed value. Every obs handle is write-only by construction, so these
//! tests pin the invariant end to end: all five confidence methods, all
//! three engine cache modes, and budgeted resume slices produce bit-identical
//! estimates and bounds whether or not a live registry is attached.

use std::sync::Arc;

use dtree::{ApproxCompiler, ApproxOptions, ResumeBudget, SubformulaCache};
use events::{Clause, Dnf, ProbabilitySpace};
use obs::Obs;
use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
use pdb::ConfidenceEngine;
use proptest::prelude::*;

/// All five confidence methods of the paper's evaluation. The Monte-Carlo
/// methods run under the engine's deterministic per-item seeding, so both
/// sides of every comparison are bit-exact.
fn all_methods() -> Vec<ConfidenceMethod> {
    vec![
        ConfidenceMethod::DTreeExact,
        ConfidenceMethod::DTreeAbsolute(0.01),
        ConfidenceMethod::DTreeRelative(0.05),
        ConfidenceMethod::KarpLuby { epsilon: 0.3, delta: 0.1 },
        ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.3 },
    ]
}

fn unbounded() -> ConfidenceBudget {
    ConfidenceBudget { timeout: None, max_work: None }
}

/// A random batch over a shared space: variable probabilities plus, per
/// lineage, clauses given as variable-index lists.
fn batch_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<Vec<usize>>>)> {
    let probs = prop::collection::vec(0.05f64..0.95, 3..9);
    let clause = prop::collection::vec(0usize..64, 1..4);
    let lineage = prop::collection::vec(clause, 1..5);
    let lineages = prop::collection::vec(lineage, 1..5);
    (probs, lineages)
}

/// Materialises a strategy draw into a space and a batch of DNFs.
fn build(probs: &[f64], raw: &[Vec<Vec<usize>>]) -> (ProbabilitySpace, Vec<Dnf>) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        probs.iter().enumerate().map(|(i, &p)| space.add_bool(format!("v{i}"), p)).collect();
    let lineages = raw
        .iter()
        .map(|clauses| {
            Dnf::from_clauses(clauses.iter().map(|c| {
                Clause::from_bools(&c.iter().map(|&i| vars[i % vars.len()]).collect::<Vec<_>>())
            }))
        })
        .collect();
    (space, lineages)
}

/// The three registry wirings under comparison: none (the pre-obs path),
/// the default disabled handle, and a live enabled registry.
fn wirings() -> Vec<Option<Obs>> {
    vec![None, Some(Obs::default()), Some(Obs::enabled())]
}

fn engine(method: &ConfidenceMethod, seed: u64, obs: Option<&Obs>) -> ConfidenceEngine {
    let e = ConfidenceEngine::new(method.clone()).with_budget(unbounded()).with_seed(seed);
    match obs {
        Some(o) => e.with_obs(o),
        None => e,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every method × every cache mode: the batch results are bit-identical
    /// across all three registry wirings.
    #[test]
    fn batches_are_bit_identical_across_registry_wirings(
        (probs, raw) in batch_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let (space, lineages) = build(&probs, &raw);
        for method in all_methods() {
            // Cache modes: per-batch default, cache off, long-lived shared.
            let modes: [&dyn Fn(ConfidenceEngine) -> ConfidenceEngine; 3] = [
                &|e| e,
                &|e| e.without_cache(),
                &|e| e.with_shared_cache(Arc::new(SubformulaCache::new())),
            ];
            for (m, mode) in modes.iter().enumerate() {
                let base = mode(engine(&method, seed, None))
                    .confidence_batch(&lineages, &space, None);
                for obs in wirings().iter().skip(1) {
                    let got = mode(engine(&method, seed, obs.as_ref()))
                        .confidence_batch(&lineages, &space, None);
                    prop_assert_eq!(base.results.len(), got.results.len());
                    for (a, b) in base.results.iter().zip(&got.results) {
                        prop_assert_eq!(
                            a.estimate.to_bits(), b.estimate.to_bits(),
                            "estimate diverged: {:?} cache mode {}", &method, m
                        );
                        prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits());
                        prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits());
                        prop_assert_eq!(a.converged, b.converged);
                    }
                }
            }
        }
    }

    /// Budgeted resume slices: two handles over the same truncated run — one
    /// with a live registry, one without — tighten through bit-identical
    /// bounds at every slice boundary.
    #[test]
    fn resume_slices_are_bit_identical_with_a_live_registry(
        (probs, raw) in batch_strategy(),
        slice in 1usize..16,
    ) {
        let (space, lineages) = build(&probs, &raw);
        let lineage = Dnf::from_clauses(
            lineages.iter().flat_map(|l| l.clauses().iter().cloned()),
        );
        let compiler = ApproxCompiler::new(ApproxOptions::absolute(0.0).with_max_steps(1));
        let (_, plain) = compiler.run_resumable(&lineage, &space, None);
        let (_, observed) = compiler.run_resumable(&lineage, &space, None);
        let (Some(mut plain), Some(mut observed)) = (plain, observed) else {
            return Ok(());
        };
        let obs = Obs::enabled();
        observed.attach_obs(&obs);
        for _ in 0..32 {
            let a = plain.resume(&space, ResumeBudget::steps(slice));
            let b = observed.resume(&space, ResumeBudget::steps(slice));
            prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits());
            prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            prop_assert_eq!(a.steps, b.steps);
            prop_assert_eq!(plain.width().to_bits(), observed.width().to_bits());
            if plain.is_converged() {
                prop_assert!(observed.is_converged());
                break;
            }
        }
        // The registry actually saw the slices it claims not to perturb.
        let snap = obs.snapshot().expect("registry is enabled");
        let slices =
            snap.counters.iter().find(|(n, _)| n == "dtree.resume.slices").map_or(0, |&(_, v)| v);
        prop_assert!(slices > 0, "instrumented handle recorded no slices");
    }
}
