//! Property-based tests of the probabilistic-database substrate: on randomly
//! generated tuple-independent databases and randomly generated conjunctive
//! queries, lineage-based confidence computation must agree with brute-force
//! possible-world enumeration, and SPROUT must agree with the d-tree whenever
//! it is applicable.

use dtree::{exact_probability, CompileOptions};
use pdb::{sprout, ConjunctiveQuery, Database, IneqOp, Term, Value};
use proptest::prelude::*;

/// A random two-table database: R(a) with `nr` tuples and S(a, b) with `ns`
/// tuples whose `a`-values reference R and whose probabilities are drawn from
/// the given vectors. Sizes are kept tiny so possible-world enumeration over
/// all variables stays instant.
#[derive(Debug, Clone)]
struct TwoTableDb {
    r_probs: Vec<f64>,
    s_rows: Vec<(usize, i64, f64)>,
}

fn two_table_db() -> impl Strategy<Value = TwoTableDb> {
    let r = prop::collection::vec(0.1f64..0.9, 1..4);
    r.prop_flat_map(|r_probs| {
        let nr = r_probs.len();
        let s_row = (0..nr, 0i64..3, 0.1f64..0.9);
        let s = prop::collection::vec(s_row, 1..5);
        (Just(r_probs), s).prop_map(|(r_probs, s_rows)| TwoTableDb { r_probs, s_rows })
    })
}

fn build(db_spec: &TwoTableDb) -> Database {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["a"],
        db_spec.r_probs.iter().enumerate().map(|(i, &p)| (vec![Value::Int(i as i64)], p)).collect(),
    );
    db.add_tuple_independent_table(
        "S",
        &["a", "b"],
        db_spec
            .s_rows
            .iter()
            .map(|&(a, b, p)| (vec![Value::Int(a as i64), Value::Int(b)], p))
            .collect(),
    );
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Boolean join query q() :- R(A), S(A, B): lineage probability via
    /// the d-tree equals brute-force enumeration, and SPROUT (which is
    /// applicable because the query is hierarchical) agrees too.
    #[test]
    fn join_confidence_agrees_across_engines(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        prop_assert!(q.is_hierarchical());
        let answers = q.evaluate(&db);
        let sprout_p = sprout::boolean_confidence(&q, &db).expect("hierarchical boolean query");
        match answers.first() {
            None => prop_assert!(sprout_p.abs() < 1e-12),
            Some(answer) => {
                let exact = answer.lineage.exact_probability_enumeration(db.space());
                let d = exact_probability(&answer.lineage, db.space(), &CompileOptions::default());
                prop_assert!((d.probability - exact).abs() < 1e-9);
                prop_assert!((sprout_p - exact).abs() < 1e-9,
                    "sprout {} enumeration {}", sprout_p, exact);
            }
        }
    }

    /// Grouped queries: the per-answer confidences from SPROUT match
    /// enumeration of the per-answer lineage.
    #[test]
    fn grouped_confidences_match(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_head(&["B"])
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let answers = q.evaluate(&db);
        let sprout_answers = sprout::answer_confidences(&q, &db).expect("hierarchical");
        prop_assert_eq!(answers.len(), sprout_answers.len());
        for answer in &answers {
            let exact = answer.lineage.exact_probability_enumeration(db.space());
            let (_, p) = sprout_answers
                .iter()
                .find(|(head, _)| head == &answer.head)
                .expect("answer sets agree");
            prop_assert!((p - exact).abs() < 1e-9);
        }
    }

    /// The non-hierarchical pattern q() :- S(A, B), S'(B, C) built by
    /// self-joining S with itself through renaming is still evaluated
    /// correctly by the d-tree (SPROUT refuses it).
    #[test]
    fn hard_pattern_lineage_is_correct(spec in two_table_db()) {
        let db = build(&spec);
        // R(A), S(A, B) with B also required to appear in R — forces variable
        // sharing both ways, i.e. the non-hierarchical R(A), S(A, B), R'(B)
        // shape using the same R table twice would be a self-join; instead
        // test inequality predicates which keep it a single-occurrence query.
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("C"), Term::var("B")])
            .with_var_predicate("A", IneqOp::Le, "C");
        let answers = q.evaluate(&db);
        prop_assert!(sprout::boolean_confidence(&q, &db).is_none(),
            "SPROUT must refuse queries with inequality predicates");
        if let Some(answer) = answers.first() {
            let exact = answer.lineage.exact_probability_enumeration(db.space());
            let d = exact_probability(
                &answer.lineage,
                db.space(),
                &CompileOptions::with_origins(db.origins().clone()),
            );
            prop_assert!((d.probability - exact).abs() < 1e-9);
        }
    }

    /// Query evaluation respects possible-world semantics: the confidence of
    /// the Boolean query equals the fraction-weighted count of worlds where
    /// the query is true, computed directly from world enumeration.
    #[test]
    fn lineage_matches_world_semantics(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let lineage = q
            .evaluate(&db)
            .into_iter()
            .next()
            .map(|a| a.lineage)
            .unwrap_or_else(events::Dnf::empty);
        // World enumeration over the shared probability space.
        let mut total = 0.0;
        let space = db.space();
        let vars: Vec<_> = space.var_ids().collect();
        let n = vars.len() as u32;
        prop_assume!(n <= 12);
        for mask in 0..(1u32 << n) {
            let assignment: std::collections::BTreeMap<_, _> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (mask >> i) & 1))
                .collect();
            let mut weight = 1.0;
            for (&v, &val) in &assignment {
                weight *= space.prob(v, val);
            }
            // Does the query hold in this world? Evaluate the lineage.
            if lineage.eval(&|v| assignment[&v]) {
                total += weight;
            }
        }
        let exact = lineage.exact_probability_enumeration(space);
        prop_assert!((total - exact).abs() < 1e-9);
    }
}
