//! Property-based tests of the probabilistic-database substrate: on randomly
//! generated tuple-independent databases and randomly generated conjunctive
//! queries, lineage-based confidence computation must agree with brute-force
//! possible-world enumeration, and SPROUT must agree with the d-tree whenever
//! it is applicable.

use dtree::{exact_probability, CompileOptions};
use pdb::{sprout, ConjunctiveQuery, Database, IneqOp, Term, Value};
use proptest::prelude::*;

/// A random two-table database: R(a) with `nr` tuples and S(a, b) with `ns`
/// tuples whose `a`-values reference R and whose probabilities are drawn from
/// the given vectors. Sizes are kept tiny so possible-world enumeration over
/// all variables stays instant.
#[derive(Debug, Clone)]
struct TwoTableDb {
    r_probs: Vec<f64>,
    s_rows: Vec<(usize, i64, f64)>,
}

fn two_table_db() -> impl Strategy<Value = TwoTableDb> {
    let r = prop::collection::vec(0.1f64..0.9, 1..4);
    r.prop_flat_map(|r_probs| {
        let nr = r_probs.len();
        let s_row = (0..nr, 0i64..3, 0.1f64..0.9);
        let s = prop::collection::vec(s_row, 1..5);
        (Just(r_probs), s).prop_map(|(r_probs, s_rows)| TwoTableDb { r_probs, s_rows })
    })
}

fn build(db_spec: &TwoTableDb) -> Database {
    let mut db = Database::new();
    db.add_tuple_independent_table(
        "R",
        &["a"],
        db_spec.r_probs.iter().enumerate().map(|(i, &p)| (vec![Value::Int(i as i64)], p)).collect(),
    );
    db.add_tuple_independent_table(
        "S",
        &["a", "b"],
        db_spec
            .s_rows
            .iter()
            .map(|&(a, b, p)| (vec![Value::Int(a as i64), Value::Int(b)], p))
            .collect(),
    );
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Boolean join query q() :- R(A), S(A, B): lineage probability via
    /// the d-tree equals brute-force enumeration, and SPROUT (which is
    /// applicable because the query is hierarchical) agrees too.
    #[test]
    fn join_confidence_agrees_across_engines(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        prop_assert!(q.is_hierarchical());
        let answers = q.evaluate(&db);
        let sprout_p = sprout::boolean_confidence(&q, &db).expect("hierarchical boolean query");
        match answers.first() {
            None => prop_assert!(sprout_p.abs() < 1e-12),
            Some(answer) => {
                let exact = answer.lineage.exact_probability_enumeration(db.space());
                let d = exact_probability(&answer.lineage, db.space(), &CompileOptions::default());
                prop_assert!((d.probability - exact).abs() < 1e-9);
                prop_assert!((sprout_p - exact).abs() < 1e-9,
                    "sprout {} enumeration {}", sprout_p, exact);
            }
        }
    }

    /// Grouped queries: the per-answer confidences from SPROUT match
    /// enumeration of the per-answer lineage.
    #[test]
    fn grouped_confidences_match(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_head(&["B"])
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let answers = q.evaluate(&db);
        let sprout_answers = sprout::answer_confidences(&q, &db).expect("hierarchical");
        prop_assert_eq!(answers.len(), sprout_answers.len());
        for answer in &answers {
            let exact = answer.lineage.exact_probability_enumeration(db.space());
            let (_, p) = sprout_answers
                .iter()
                .find(|(head, _)| head == &answer.head)
                .expect("answer sets agree");
            prop_assert!((p - exact).abs() < 1e-9);
        }
    }

    /// The non-hierarchical pattern q() :- S(A, B), S'(B, C) built by
    /// self-joining S with itself through renaming is still evaluated
    /// correctly by the d-tree (SPROUT refuses it).
    #[test]
    fn hard_pattern_lineage_is_correct(spec in two_table_db()) {
        let db = build(&spec);
        // R(A), S(A, B) with B also required to appear in R — forces variable
        // sharing both ways, i.e. the non-hierarchical R(A), S(A, B), R'(B)
        // shape using the same R table twice would be a self-join; instead
        // test inequality predicates which keep it a single-occurrence query.
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("C"), Term::var("B")])
            .with_var_predicate("A", IneqOp::Le, "C");
        let answers = q.evaluate(&db);
        prop_assert!(sprout::boolean_confidence(&q, &db).is_none(),
            "SPROUT must refuse queries with inequality predicates");
        if let Some(answer) = answers.first() {
            let exact = answer.lineage.exact_probability_enumeration(db.space());
            let d = exact_probability(
                &answer.lineage,
                db.space(),
                &CompileOptions::with_origins(db.origins().clone()),
            );
            prop_assert!((d.probability - exact).abs() < 1e-9);
        }
    }

    /// Query evaluation respects possible-world semantics: the confidence of
    /// the Boolean query equals the fraction-weighted count of worlds where
    /// the query is true, computed directly from world enumeration.
    #[test]
    fn lineage_matches_world_semantics(spec in two_table_db()) {
        let db = build(&spec);
        let q = ConjunctiveQuery::new("q")
            .with_subgoal("R", vec![Term::var("A")])
            .with_subgoal("S", vec![Term::var("A"), Term::var("B")]);
        let lineage = q
            .evaluate(&db)
            .into_iter()
            .next()
            .map(|a| a.lineage)
            .unwrap_or_else(events::Dnf::empty);
        // World enumeration over the shared probability space.
        let mut total = 0.0;
        let space = db.space();
        let vars: Vec<_> = space.var_ids().collect();
        let n = vars.len() as u32;
        prop_assume!(n <= 12);
        for mask in 0..(1u32 << n) {
            let assignment: std::collections::BTreeMap<_, _> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (mask >> i) & 1))
                .collect();
            let mut weight = 1.0;
            for (&v, &val) in &assignment {
                weight *= space.prob(v, val);
            }
            // Does the query hold in this world? Evaluate the lineage.
            if lineage.eval(&|v| assignment[&v]) {
                total += weight;
            }
        }
        let exact = lineage.exact_probability_enumeration(space);
        prop_assert!((total - exact).abs() < 1e-9);
    }
}

/// A batch of random *correlated* DNFs: clauses drawn over one shared
/// variable pool, so lineages overlap in sub-formulas like the answer tuples
/// of one query do.
#[derive(Debug, Clone)]
struct DnfBatchSpec {
    probs: Vec<f64>,
    /// One DNF per entry: clauses given as variable-index lists.
    dnfs: Vec<Vec<Vec<usize>>>,
}

fn dnf_batch() -> impl Strategy<Value = DnfBatchSpec> {
    let probs = prop::collection::vec(0.05f64..0.95, 6..14);
    probs.prop_flat_map(|probs| {
        let nvars = probs.len();
        let clause = prop::collection::vec(0..nvars, 1..4);
        let dnf = prop::collection::vec(clause, 1..8);
        let dnfs = prop::collection::vec(dnf, 2..6);
        (Just(probs), dnfs).prop_map(|(probs, dnfs)| DnfBatchSpec { probs, dnfs })
    })
}

fn build_batch(spec: &DnfBatchSpec) -> (events::ProbabilitySpace, Vec<events::Dnf>) {
    let mut space = events::ProbabilitySpace::new();
    let vars: Vec<_> =
        spec.probs.iter().enumerate().map(|(i, &p)| space.add_bool(format!("x{i}"), p)).collect();
    let dnfs = spec
        .dnfs
        .iter()
        .map(|clauses| {
            events::Dnf::from_clauses(
                clauses
                    .iter()
                    .map(|c| {
                        events::Clause::from_bools(&c.iter().map(|&i| vars[i]).collect::<Vec<_>>())
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (space, dnfs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched engine with the shared cache agrees with the cache-off
    /// engine (and with brute-force enumeration) to 1e-12 on random
    /// correlated DNF batches, for both d-tree approximation flavours.
    #[test]
    fn batch_cache_on_off_agree(spec in dnf_batch()) {
        use pdb::confidence::ConfidenceMethod;
        use pdb::ConfidenceEngine;
        let (space, dnfs) = build_batch(&spec);
        for method in [
            ConfidenceMethod::DTreeAbsolute(0.001),
            ConfidenceMethod::DTreeRelative(0.01),
            ConfidenceMethod::DTreeExact,
        ] {
            let cached = ConfidenceEngine::new(method.clone())
                .with_threads(2)
                .confidence_batch(&dnfs, &space, None);
            let plain = ConfidenceEngine::new(method)
                .without_cache()
                .with_threads(1)
                .confidence_batch(&dnfs, &space, None);
            for (dnf, (a, b)) in dnfs.iter().zip(cached.results.iter().zip(&plain.results)) {
                prop_assert!((a.estimate - b.estimate).abs() < 1e-12,
                    "{}: cached {} vs plain {}", a.method, a.estimate, b.estimate);
                // Sound bounds against enumeration.
                let exact = dnf.exact_probability_enumeration(&space);
                prop_assert!(a.lower <= exact + 1e-9 && exact <= a.upper + 1e-9);
            }
        }
    }

    /// Cross-batch reuse under eviction churn: a warm second batch over a
    /// *tiny* shared cache (entry budget small enough to force constant
    /// evictions) returns results bit-identical to a cold cache-off run, the
    /// cache never exceeds its budget, and a repeat of the same batch sees
    /// hits.
    #[test]
    fn warm_cross_batch_results_survive_eviction_churn(spec in dnf_batch()) {
        use std::sync::Arc;
        use dtree::SubformulaCache;
        use pdb::confidence::ConfidenceMethod;
        use pdb::ConfidenceEngine;
        let (space, dnfs) = build_batch(&spec);
        for method in [ConfidenceMethod::DTreeAbsolute(0.0005), ConfidenceMethod::DTreeExact] {
            let plain = ConfidenceEngine::new(method.clone())
                .without_cache()
                .with_threads(1)
                .confidence_batch(&dnfs, &space, None);
            let budget = 4usize;
            let cache = Arc::new(SubformulaCache::with_capacity(budget));
            let engine = ConfidenceEngine::new(method)
                .with_shared_cache(Arc::clone(&cache))
                .with_threads(2);
            for round in 0..3 {
                let warm = engine.confidence_batch(&dnfs, &space, None);
                prop_assert!(cache.len() <= budget,
                    "round {round}: {} entries over budget {budget}", cache.len());
                for (a, b) in warm.results.iter().zip(&plain.results) {
                    prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(),
                        "round {}: {} vs {}", round, a.estimate, b.estimate);
                    prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits());
                    prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits());
                    prop_assert_eq!(a.converged, b.converged);
                }
            }
        }
    }

    /// Watermark-scoped invalidation: *appending* a fresh variable between
    /// batches keeps all warm entries valid (the old lineages' probabilities
    /// are untouched, so the second batch is served warm with zero stale
    /// lookups), while an explicit in-place invalidation retires every entry
    /// — and in both regimes results stay bit-identical to a cache-off run,
    /// never a stale answer.
    #[test]
    fn watermark_keeps_appends_warm_but_invalidate_retires(spec in dnf_batch()) {
        use std::sync::Arc;
        use dtree::SubformulaCache;
        use pdb::confidence::ConfidenceMethod;
        use pdb::ConfidenceEngine;
        let (mut space, dnfs) = build_batch(&spec);
        let method = ConfidenceMethod::DTreeAbsolute(0.0005);
        let cache = Arc::new(SubformulaCache::new());
        let engine = ConfidenceEngine::new(method.clone())
            .with_shared_cache(Arc::clone(&cache))
            .with_threads(2);
        let before = engine.confidence_batch(&dnfs, &space, None);
        // Append a fresh variable: old lineages' probabilities are untouched
        // and the generation survives, so the warm entries keep serving.
        space.add_bool("fresh", 0.5);
        let warm = engine.confidence_batch(&dnfs, &space, None);
        prop_assert!(warm.cache.hits > 0,
            "append-only growth must keep entries warm: {:?}", warm.cache);
        prop_assert_eq!(warm.cache.stale, 0);
        // A genuine in-place change retires every previous entry.
        space.invalidate();
        let cold = engine.confidence_batch(&dnfs, &space, None);
        prop_assert!(cold.cache.hits == 0 || cold.cache.stale > 0,
            "warm entries served across an invalidation: {:?}", cold.cache);
        let plain = ConfidenceEngine::new(method)
            .without_cache()
            .with_threads(1)
            .confidence_batch(&dnfs, &space, None);
        for (((a, b), c), d) in
            warm.results.iter().zip(&before.results).zip(&cold.results).zip(&plain.results)
        {
            prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            prop_assert_eq!(a.estimate.to_bits(), c.estimate.to_bits());
            prop_assert_eq!(a.estimate.to_bits(), d.estimate.to_bits());
        }
    }

    /// A batch deadline is respected: even with many lineages and a
    /// microscopic budget, the whole batch terminates promptly and every
    /// result carries sound bounds.
    #[test]
    fn batch_deadline_is_respected(spec in dnf_batch()) {
        use pdb::confidence::{ConfidenceBudget, ConfidenceMethod};
        use pdb::ConfidenceEngine;
        let (space, dnfs) = build_batch(&spec);
        let engine = ConfidenceEngine::new(ConfidenceMethod::DTreeAbsolute(1e-9))
            .with_budget(ConfidenceBudget {
                timeout: Some(std::time::Duration::from_millis(1)),
                max_work: Some(4),
            })
            .with_threads(2);
        let t0 = std::time::Instant::now();
        let out = engine.confidence_batch(&dnfs, &space, None);
        // Coarse wall bound (CI slack): the budget machinery must cut work
        // short instead of refining every lineage to 1e-9.
        prop_assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        prop_assert_eq!(out.results.len(), dnfs.len());
        for (dnf, r) in dnfs.iter().zip(&out.results) {
            let exact = dnf.exact_probability_enumeration(&space);
            prop_assert!(r.lower <= exact + 1e-9 && exact <= r.upper + 1e-9,
                "bounds [{}, {}] vs exact {}", r.lower, r.upper, exact);
        }
    }

    /// The arena-interned view path is equivalent to the legacy owned-`Dnf`
    /// path on random correlated DNF batches: probabilities agree to 1e-12
    /// (in fact to the bit), `CompileStats` node counts agree exactly, for
    /// all five confidence methods, with the sub-formula cache on and off.
    #[test]
    fn arena_path_matches_legacy_owned_path(spec in dnf_batch()) {
        use dtree::reference::{approx_reference, exact_probability_reference};
        use dtree::{ApproxOptions, CompileOptions, SubformulaCache, VarOrder};
        use montecarlo::{aconf, naive_monte_carlo, McOptions, NaiveOptions};
        use pdb::confidence::{confidence_with, ConfidenceBudget, ConfidenceMethod};

        let (space, dnfs) = build_batch(&spec);
        let budget = ConfidenceBudget::default();
        let compile =
            CompileOptions { var_order: VarOrder::MostFrequent, origins: None, max_depth: None };
        let cache = SubformulaCache::new();
        for (i, dnf) in dnfs.iter().enumerate() {
            let seed = 0x5eed_0000 + i as u64;
            // d-tree exact: arena vs legacy recursion, bitwise + node counts.
            let m = ConfidenceMethod::DTreeExact;
            let got = confidence_with(dnf, &space, None, &m, &budget, None, None);
            let want = exact_probability_reference(dnf, &space, &compile);
            prop_assert!((got.estimate - want.probability).abs() < 1e-12);
            prop_assert_eq!(got.estimate.to_bits(), want.probability.to_bits());
            let stats = got.stats.expect("d-tree stats");
            prop_assert_eq!(stats.or_nodes, want.stats.or_nodes);
            prop_assert_eq!(stats.and_nodes, want.stats.and_nodes);
            prop_assert_eq!(stats.xor_nodes, want.stats.xor_nodes);
            // Cache on: still bit-identical.
            let cached = confidence_with(dnf, &space, None, &m, &budget, None, Some(&cache));
            prop_assert_eq!(cached.estimate.to_bits(), got.estimate.to_bits());

            // d-tree approximations: arena vs legacy DFS, bitwise + counts.
            for (m, opts) in [
                (ConfidenceMethod::DTreeAbsolute(0.01), ApproxOptions::absolute(0.01)),
                (ConfidenceMethod::DTreeRelative(0.05), ApproxOptions::relative(0.05)),
            ] {
                let got = confidence_with(dnf, &space, None, &m, &budget, None, None);
                let want = approx_reference(dnf, &space, &opts);
                prop_assert!((got.estimate - want.estimate).abs() < 1e-12);
                prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
                prop_assert_eq!(got.lower.to_bits(), want.lower.to_bits());
                prop_assert_eq!(got.upper.to_bits(), want.upper.to_bits());
                prop_assert_eq!(got.converged, want.converged);
                let stats = got.stats.expect("d-tree stats");
                prop_assert_eq!(stats.or_nodes, want.stats.or_nodes);
                prop_assert_eq!(stats.and_nodes, want.stats.and_nodes);
                prop_assert_eq!(stats.xor_nodes, want.stats.xor_nodes);
                // Cache on/off agree bitwise (a fresh-per-item cache would be
                // pointless in production but pins the invariance here).
                let fresh = SubformulaCache::new();
                let cached = confidence_with(dnf, &space, None, &m, &budget, None, Some(&fresh));
                prop_assert_eq!(cached.estimate.to_bits(), got.estimate.to_bits());
                prop_assert_eq!(cached.lower.to_bits(), got.lower.to_bits());
                prop_assert_eq!(cached.upper.to_bits(), got.upper.to_bits());
            }

            // Monte-Carlo: the arena-backed samplers draw the same stream as
            // the legacy owned samplers under the same seed.
            let m = ConfidenceMethod::KarpLuby { epsilon: 0.2, delta: 0.05 };
            let got = confidence_with(dnf, &space, None, &m, &budget, Some(seed), None);
            let want =
                aconf(dnf, &space, &McOptions::new(0.2).with_delta(0.05).with_seed(seed));
            prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
            let m = ConfidenceMethod::NaiveMonteCarlo { epsilon: 0.1 };
            let got = confidence_with(dnf, &space, None, &m, &budget, Some(seed), None);
            let want = naive_monte_carlo(dnf, &space, &NaiveOptions::new(0.1).with_seed(seed));
            prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
        }
    }
}
