//! Property-based tests of the Monte-Carlo baselines: on random small DNFs
//! the Karp-Luby estimator must be unbiased enough to land near the true
//! probability, the DKLR stopping rule must respect its (ε, δ) contract, and
//! budgets must be honoured.

use events::{Clause, Dnf, DnfRef, LineageArena, ProbabilitySpace};
use montecarlo::{
    aconf, aconf_ref, naive_monte_carlo, naive_monte_carlo_ref, EstimatorVariant,
    KarpLubyEstimator, McOptions, NaiveOptions,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dnf() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    let probs = prop::collection::vec(0.1f64..0.9, 2..7);
    probs.prop_flat_map(|ps| {
        let nvars = ps.len();
        let clause = prop::collection::btree_set(0..nvars, 1..=2.min(nvars));
        let clauses = prop::collection::vec(clause, 1..5)
            .prop_map(|cs| cs.into_iter().map(|c| c.into_iter().collect()).collect());
        (Just(ps), clauses)
    })
}

fn build(ps: &[f64], clause_vars: &[Vec<usize>]) -> (ProbabilitySpace, Dnf) {
    let mut space = ProbabilitySpace::new();
    let vars: Vec<_> =
        ps.iter().enumerate().map(|(i, &p)| space.add_bool(format!("v{i}"), p)).collect();
    let clauses: Vec<Clause> = clause_vars
        .iter()
        .map(|c| Clause::from_bools(&c.iter().map(|&i| vars[i]).collect::<Vec<_>>()))
        .collect();
    (space, Dnf::from_clauses(clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The normalized Karp-Luby estimator has mean P(Φ) / Σᵢ P(cᵢ): averaging
    /// many samples and re-scaling must land near the exact probability for
    /// both the zero-one and the fractional estimator variants.
    #[test]
    fn karp_luby_estimator_is_unbiased((ps, cs) in small_dnf(), seed in 0u64..500) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        for variant in [EstimatorVariant::ZeroOne, EstimatorVariant::Fractional] {
            let kl = KarpLubyEstimator::with_variant(&dnf, &space, variant);
            if let Some(p) = kl.trivial_probability() {
                prop_assert!((p - exact).abs() < 1e-9);
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += kl.sample_normalized(&space, &mut rng);
            }
            let estimate = kl.total_weight() * sum / n as f64;
            prop_assert!(
                (estimate - exact).abs() <= 0.1 * exact + 0.05,
                "variant {variant:?}: estimate {estimate} vs exact {exact}"
            );
        }
    }

    /// The fractional estimator never has larger variance than the zero-one
    /// estimator on the same DNF (it is a Rao-Blackwellisation).
    #[test]
    fn fractional_variant_has_no_larger_variance((ps, cs) in small_dnf(), seed in 0u64..200) {
        let (space, dnf) = build(&ps, &cs);
        let variance = |variant| {
            let kl = KarpLubyEstimator::with_variant(&dnf, &space, variant);
            if kl.trivial_probability().is_some() {
                return 0.0;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3000;
            let samples: Vec<f64> = (0..n).map(|_| kl.sample_normalized(&space, &mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64
        };
        let v_zero_one = variance(EstimatorVariant::ZeroOne);
        let v_fractional = variance(EstimatorVariant::Fractional);
        // Allow sampling noise: the fractional variance may only exceed the
        // zero-one variance by a small tolerance.
        prop_assert!(v_fractional <= v_zero_one + 0.02,
            "fractional {v_fractional} vs zero-one {v_zero_one}");
    }

    /// `aconf` respects a hard sample budget and reports non-convergence when
    /// it is cut short.
    #[test]
    fn sample_budget_is_respected((ps, cs) in small_dnf()) {
        let (space, dnf) = build(&ps, &cs);
        let opts = McOptions::new(1e-4).with_seed(1).with_max_samples(50);
        let r = aconf(&dnf, &space, &opts);
        prop_assert!(r.samples <= 60, "{} samples", r.samples);
        // With such a tiny budget and tiny epsilon the run cannot converge
        // unless the probability is trivially known.
        if dnf.num_vars() > 1 {
            prop_assert!(!r.converged || r.samples == 0);
        }
        prop_assert!((0.0..=1.0).contains(&r.estimate));
    }

    /// The naive sampler's estimate is always a probability and is close to
    /// the truth for its additive guarantee.
    #[test]
    fn naive_sampler_is_a_probability((ps, cs) in small_dnf(), seed in 0u64..500) {
        let (space, dnf) = build(&ps, &cs);
        let exact = dnf.exact_probability_enumeration(&space);
        let r = naive_monte_carlo(&dnf, &space, &NaiveOptions::new(0.05).with_seed(seed));
        prop_assert!((0.0..=1.0).contains(&r.estimate));
        prop_assert!((r.estimate - exact).abs() <= 0.15);
    }

    /// Seeded Monte-Carlo runs are bit-identical whether the sampler is fed
    /// the owned DNF or an arena view of the same formula — the estimators
    /// evaluate against the arena directly without changing a single draw.
    #[test]
    fn samplers_are_bit_identical_across_representations(
        (ps, clause_vars) in small_dnf(),
        seed in 0u64..1_000_000,
    ) {
        let (space, dnf) = build(&ps, &clause_vars);
        let mut arena = LineageArena::new();
        let view = arena.intern(&dnf);
        let kl_opts = McOptions::new(0.1).with_delta(0.05).with_seed(seed);
        let owned = aconf(&dnf, &space, &kl_opts);
        let viewed = aconf_ref(DnfRef::Arena(&arena, &view), &space, &kl_opts);
        prop_assert_eq!(owned.estimate.to_bits(), viewed.estimate.to_bits());
        prop_assert_eq!(owned.samples, viewed.samples);
        prop_assert_eq!(owned.converged, viewed.converged);
        let nv_opts = NaiveOptions::new(0.1).with_samples(500).with_seed(seed);
        let owned = naive_monte_carlo(&dnf, &space, &nv_opts);
        let viewed = naive_monte_carlo_ref(DnfRef::Arena(&arena, &view), &space, &nv_opts);
        prop_assert_eq!(owned.estimate.to_bits(), viewed.estimate.to_bits());
        prop_assert_eq!(owned.samples, viewed.samples);
    }
}
