//! Randomized (Monte-Carlo) baselines for DNF probability estimation.
//!
//! This crate implements the `aconf` baseline of the paper's experiments
//! (Section VII.1): the Karp-Luby-Madras unbiased estimator for the
//! probability of a DNF over independent discrete random variables
//! ([`KarpLubyEstimator`]), combined with the Dagum-Karp-Luby-Ross optimal
//! stopping rule for Monte-Carlo estimation ([`aconf`], [`DklrEstimator`]),
//! which yields an (ε, δ)-approximation: with probability at least `1 − δ`
//! the returned estimate is within relative error ε of the true probability.
//!
//! A naive possible-world sampler ([`naive_monte_carlo`]) is included as a
//! second, weaker baseline (it is an *additive* approximation and degrades
//! badly for small probabilities).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dklr;
mod karp_luby;
mod naive;

pub use dklr::{aconf, aconf_ref, DklrEstimator, McOptions, McResult};
pub use karp_luby::{EstimatorVariant, KarpLubyEstimator};
pub use naive::{naive_monte_carlo, naive_monte_carlo_ref, NaiveOptions};
