//! The Karp-Luby(-Madras) unbiased estimator for the probability of a DNF
//! over independent discrete random variables.
//!
//! The classic coverage estimator for the union probability `p = P(⋃ cᵢ)`
//! works as follows. Let `U = Σᵢ P(cᵢ)` (the sum of clause marginals, an
//! upper bound on `p`):
//!
//! 1. pick a clause `cᵢ` with probability `P(cᵢ)/U`,
//! 2. sample a possible world `w` from the distribution conditioned on
//!    `w ⊨ cᵢ` (clause variables pinned, all others sampled from their
//!    marginals),
//! 3. return `U · X(w, i)` where `X` is either
//!    * the **zero-one** estimate `1[i = min{j : w ⊨ cⱼ}]`, or
//!    * the **fractional** estimate `1 / |{j : w ⊨ cⱼ}|` (the smaller-variance
//!      variant from Vazirani's book that MayBMS' `aconf` uses and that the
//!      paper adopts).
//!
//! Both are unbiased: the expectation of the returned value is exactly `p`.

use events::{Dnf, DnfRef, ProbabilitySpace, Valuation, VarId};
use rand::Rng;

/// Which unbiased estimate to compute from a sampled world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorVariant {
    /// The fractional ("importance-weighted coverage") estimate
    /// `U / |{j : w ⊨ cⱼ}|`; lower variance, used by default (and by the
    /// paper's `aconf`).
    #[default]
    Fractional,
    /// The classic zero-one estimate `U · 1[i = min{j : w ⊨ cⱼ}]`.
    ZeroOne,
}

/// A prepared Karp-Luby estimator for a fixed DNF.
///
/// Preparation copies the formula **once** into a flat atom pool (clauses
/// become spans over it — the same layout as [`events::LineageArena`], so a
/// [`DnfRef::Arena`] view is prepared without ever materialising an owned
/// DNF) and pre-computes clause probabilities, their cumulative distribution
/// (for clause sampling), and the variable set of the DNF. Each call to
/// [`KarpLubyEstimator::sample`] then costs one world sample plus one
/// cache-friendly satisfaction scan over the pooled atoms.
#[derive(Debug, Clone)]
pub struct KarpLubyEstimator {
    /// Flat atom pool; clause `i` owns `atoms[spans[i].0..spans[i].1]`.
    atoms: Vec<events::Atom>,
    spans: Vec<(u32, u32)>,
    clause_probs: Vec<f64>,
    cumulative: Vec<f64>,
    total_weight: f64,
    vars: Vec<VarId>,
    variant: EstimatorVariant,
}

impl KarpLubyEstimator {
    /// Prepares the estimator for `dnf` with the default (fractional)
    /// variant.
    pub fn new(dnf: &Dnf, space: &ProbabilitySpace) -> Self {
        Self::with_variant(dnf, space, EstimatorVariant::default())
    }

    /// Prepares the estimator with an explicit variant.
    pub fn with_variant(dnf: &Dnf, space: &ProbabilitySpace, variant: EstimatorVariant) -> Self {
        Self::from_ref(DnfRef::Owned(dnf), space, variant)
    }

    /// Prepares the estimator from either lineage representation — for
    /// [`DnfRef::Arena`], the sampler is built against the arena directly,
    /// without materialising an owned [`Dnf`]. The sampling stream (clause
    /// order, variable order, satisfaction scans) is identical for both
    /// representations of the same formula, so seeded estimates agree to the
    /// bit.
    pub fn from_ref(dnf: DnfRef<'_>, space: &ProbabilitySpace, variant: EstimatorVariant) -> Self {
        let n = dnf.clause_count();
        let mut atoms = Vec::new();
        let mut spans = Vec::with_capacity(n);
        let mut clause_probs = Vec::with_capacity(n);
        for i in 0..n {
            let start = atoms.len() as u32;
            atoms.extend(dnf.clause_atoms(i));
            spans.push((start, atoms.len() as u32));
            clause_probs.push(dnf.clause_probability(space, i));
        }
        let mut cumulative = Vec::with_capacity(clause_probs.len());
        let mut acc = 0.0;
        for &p in &clause_probs {
            acc += p;
            cumulative.push(acc);
        }
        let vars: Vec<VarId> = dnf.vars().into_iter().collect();
        KarpLubyEstimator {
            atoms,
            spans,
            clause_probs,
            cumulative,
            total_weight: acc,
            vars,
            variant,
        }
    }

    #[inline]
    fn clause_atoms(&self, i: usize) -> &[events::Atom] {
        let (s, e) = self.spans[i];
        &self.atoms[s as usize..e as usize]
    }

    /// The normalising constant `U = Σ P(cᵢ)` (an upper bound on the DNF
    /// probability).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of clauses of the prepared DNF.
    pub fn num_clauses(&self) -> usize {
        self.spans.len()
    }

    /// `true` if the DNF is trivially false (no clauses) or trivially true
    /// (contains the empty clause); such inputs need no sampling.
    pub fn trivial_probability(&self) -> Option<f64> {
        if self.spans.is_empty() {
            return Some(0.0);
        }
        if self.spans.iter().any(|(s, e)| s == e) {
            return Some(1.0);
        }
        None
    }

    /// Draws one unbiased estimate of the DNF probability (a value in
    /// `[0, U]` whose expectation is the exact probability).
    pub fn sample<R: Rng + ?Sized>(&self, space: &ProbabilitySpace, rng: &mut R) -> f64 {
        self.total_weight * self.sample_normalized(space, rng)
    }

    /// Draws one *normalised* estimate in `[0, 1]` whose expectation is
    /// `p / U`; this is the form consumed by the stopping rules of the DKLR
    /// algorithm.
    pub fn sample_normalized<R: Rng + ?Sized>(&self, space: &ProbabilitySpace, rng: &mut R) -> f64 {
        if let Some(p) = self.trivial_probability() {
            // For trivial inputs the normalised estimate is p/U when U > 0 or
            // simply p (0 or 1) otherwise.
            return if self.total_weight > 0.0 { p / self.total_weight } else { p };
        }
        // 1. Sample a clause index proportionally to its probability.
        let idx = self.sample_clause_index(rng);
        // 2. Sample a world conditioned on that clause being satisfied.
        let world = self.sample_conditioned_world(idx, space, rng);
        // 3. Count the satisfied clauses / find the minimum satisfied index.
        match self.variant {
            EstimatorVariant::Fractional => {
                let count = self.count_satisfied(&world);
                debug_assert!(count >= 1, "conditioned world must satisfy the chosen clause");
                1.0 / count as f64
            }
            EstimatorVariant::ZeroOne => {
                let min_sat = self.min_satisfied(&world);
                if min_sat == Some(idx) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn sample_clause_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let target = rng.gen_range(0.0..self.total_weight);
        // Binary search over the cumulative distribution.
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&target).expect("finite probabilities"))
        {
            Ok(i) => (i + 1).min(self.spans.len() - 1),
            Err(i) => i.min(self.spans.len() - 1),
        }
    }

    fn sample_conditioned_world<R: Rng + ?Sized>(
        &self,
        clause_idx: usize,
        space: &ProbabilitySpace,
        rng: &mut R,
    ) -> Valuation {
        let mut world = Valuation::new();
        // Pin the clause's variables.
        for atom in self.clause_atoms(clause_idx) {
            world.assign(atom.var, atom.value);
        }
        // Sample every other variable of the DNF from its marginal.
        for &v in &self.vars {
            if world.value(v).is_some() {
                continue;
            }
            world.assign(v, sample_value(space, v, rng));
        }
        world
    }

    fn count_satisfied(&self, world: &Valuation) -> usize {
        (0..self.spans.len())
            .filter(|&i| self.clause_atoms(i).iter().all(|a| world.value(a.var) == Some(a.value)))
            .count()
    }

    fn min_satisfied(&self, world: &Valuation) -> Option<usize> {
        (0..self.spans.len())
            .find(|&i| self.clause_atoms(i).iter().all(|a| world.value(a.var) == Some(a.value)))
    }

    /// Average of `n` independent estimates — the plain (non-adaptive)
    /// Karp-Luby-Madras estimator.
    pub fn estimate_with_samples<R: Rng + ?Sized>(
        &self,
        space: &ProbabilitySpace,
        rng: &mut R,
        n: usize,
    ) -> f64 {
        if let Some(p) = self.trivial_probability() {
            return p;
        }
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = (0..n).map(|_| self.sample_normalized(space, rng)).sum();
        self.total_weight * sum / n as f64
    }

    /// Access to the per-clause marginal probabilities (used by tests).
    pub fn clause_probabilities(&self) -> &[f64] {
        &self.clause_probs
    }
}

fn sample_value<R: Rng + ?Sized>(space: &ProbabilitySpace, var: VarId, rng: &mut R) -> u32 {
    let domain = space.domain_size(var);
    let mut target = rng.gen_range(0.0..1.0);
    for value in 0..domain {
        let p = space.prob(var, value);
        if target < p {
            return value;
        }
        target -= p;
    }
    domain - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn example_dnf() -> (ProbabilitySpace, Dnf) {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        (s, phi)
    }

    #[test]
    fn total_weight_is_sum_of_clause_probabilities() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        assert!((est.total_weight() - (0.06 + 0.21 + 0.8)).abs() < 1e-12);
        assert_eq!(est.num_clauses(), 3);
        assert_eq!(est.clause_probabilities().len(), 3);
    }

    #[test]
    fn trivial_inputs_are_detected() {
        let (s, _) = bool_space(&[0.5]);
        let est = KarpLubyEstimator::new(&Dnf::empty(), &s);
        assert_eq!(est.trivial_probability(), Some(0.0));
        let est = KarpLubyEstimator::new(&Dnf::tautology(), &s);
        assert_eq!(est.trivial_probability(), Some(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(est.estimate_with_samples(&s, &mut rng, 10), 1.0);
    }

    #[test]
    fn fractional_estimator_converges_to_exact_probability() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(42);
        let approx = est.estimate_with_samples(&s, &mut rng, 40_000);
        assert!(
            (approx - exact).abs() < 0.01,
            "Karp-Luby fractional estimate {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn zero_one_estimator_converges_to_exact_probability() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::with_variant(&phi, &s, EstimatorVariant::ZeroOne);
        let mut rng = StdRng::seed_from_u64(7);
        let approx = est.estimate_with_samples(&s, &mut rng, 60_000);
        assert!(
            (approx - exact).abs() < 0.015,
            "Karp-Luby zero-one estimate {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn normalized_samples_are_within_unit_interval() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = est.sample_normalized(&s, &mut rng);
            assert!((0.0..=1.0).contains(&x), "normalised sample {x} outside [0,1]");
        }
    }

    #[test]
    fn estimator_handles_small_probabilities() {
        // All clause probabilities tiny: the estimator remains unbiased and
        // the relative structure is preserved (this is where naive sampling
        // fails but Karp-Luby keeps working).
        let (s, vars) = bool_space(&[0.001, 0.002, 0.001, 0.004]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(11);
        let approx = est.estimate_with_samples(&s, &mut rng, 50_000);
        assert!(exact > 0.0);
        let rel_err = (approx - exact).abs() / exact;
        assert!(rel_err < 0.05, "relative error {rel_err} too large ({approx} vs {exact})");
    }

    #[test]
    fn multivalued_variables_are_sampled_correctly() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.2, 0.3, 0.5]);
        let y = s.add_bool("y", 0.4);
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![events::Atom::new(x, 1), events::Atom::pos(y)]),
            Clause::from_atoms(vec![events::Atom::new(x, 2)]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(23);
        let approx = est.estimate_with_samples(&s, &mut rng, 40_000);
        assert!((approx - exact).abs() < 0.01, "{approx} vs {exact}");
    }

    #[test]
    fn zero_samples_return_zero() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(est.estimate_with_samples(&s, &mut rng, 0), 0.0);
    }
}
