//! The Karp-Luby(-Madras) unbiased estimator for the probability of a DNF
//! over independent discrete random variables.
//!
//! The classic coverage estimator for the union probability `p = P(⋃ cᵢ)`
//! works as follows. Let `U = Σᵢ P(cᵢ)` (the sum of clause marginals, an
//! upper bound on `p`):
//!
//! 1. pick a clause `cᵢ` with probability `P(cᵢ)/U`,
//! 2. sample a possible world `w` from the distribution conditioned on
//!    `w ⊨ cᵢ` (clause variables pinned, all others sampled from their
//!    marginals),
//! 3. return `U · X(w, i)` where `X` is either
//!    * the **zero-one** estimate `1[i = min{j : w ⊨ cⱼ}]`, or
//!    * the **fractional** estimate `1 / |{j : w ⊨ cⱼ}|` (the smaller-variance
//!      variant from Vazirani's book that MayBMS' `aconf` uses and that the
//!      paper adopts).
//!
//! Both are unbiased: the expectation of the returned value is exactly `p`.

use events::{Dnf, DnfRef, DnfView, LineageArena, ProbabilitySpace, Valuation, VarId};
use rand::Rng;

/// Which unbiased estimate to compute from a sampled world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorVariant {
    /// The fractional ("importance-weighted coverage") estimate
    /// `U / |{j : w ⊨ cⱼ}|`; lower variance, used by default (and by the
    /// paper's `aconf`).
    #[default]
    Fractional,
    /// The classic zero-one estimate `U · 1[i = min{j : w ⊨ cⱼ}]`.
    ZeroOne,
}

/// Where a prepared estimator's clause atoms live.
///
/// The owned variant copies the formula once into a private flat pool; the
/// borrowed variant points straight at a [`LineageArena`]'s pool, whose
/// layout (flat atoms, clauses as spans) is already exactly what the
/// satisfaction scans want — so preparing from an interned lineage copies
/// *zero* atoms. Both variants feed the identical sampling code, so seeded
/// streams agree to the bit.
#[derive(Debug, Clone)]
enum AtomStore<'a> {
    /// Flat private pool; clause `i` owns `atoms[spans[i].0..spans[i].1]`.
    Pool { atoms: Vec<events::Atom>, spans: Vec<(u32, u32)> },
    /// Clause spans borrowed from an interned lineage.
    Arena { arena: &'a LineageArena, view: &'a DnfView },
}

impl AtomStore<'_> {
    #[inline]
    fn clause_atoms(&self, i: usize) -> &[events::Atom] {
        match self {
            AtomStore::Pool { atoms, spans } => {
                let (s, e) = spans[i];
                &atoms[s as usize..e as usize]
            }
            AtomStore::Arena { arena, view } => view.clause_slice(arena, i),
        }
    }
}

/// A prepared Karp-Luby estimator for a fixed DNF.
///
/// Preparation flattens the formula into clause spans over an atom pool —
/// copied once for owned DNFs, **borrowed in place** from the
/// [`LineageArena`] for interned lineages ([`KarpLubyEstimator::from_arena`]
/// and the [`DnfRef::Arena`] arm of [`KarpLubyEstimator::from_ref`]), which
/// already stores exactly this layout — and pre-computes clause
/// probabilities, their cumulative distribution (for clause sampling), and
/// the variable set of the DNF. Each call to [`KarpLubyEstimator::sample`]
/// then costs one world sample plus one cache-friendly satisfaction scan
/// over the pooled atoms.
///
/// The lifetime parameter is the borrowed arena's; estimators prepared from
/// an owned [`Dnf`] are `'static`.
#[derive(Debug, Clone)]
pub struct KarpLubyEstimator<'a> {
    store: AtomStore<'a>,
    clause_probs: Vec<f64>,
    cumulative: Vec<f64>,
    total_weight: f64,
    vars: Vec<VarId>,
    variant: EstimatorVariant,
}

impl<'a> KarpLubyEstimator<'a> {
    /// Prepares the estimator for `dnf` with the default (fractional)
    /// variant.
    pub fn new(dnf: &Dnf, space: &ProbabilitySpace) -> KarpLubyEstimator<'static> {
        Self::with_variant(dnf, space, EstimatorVariant::default())
    }

    /// Prepares the estimator with an explicit variant.
    pub fn with_variant(
        dnf: &Dnf,
        space: &ProbabilitySpace,
        variant: EstimatorVariant,
    ) -> KarpLubyEstimator<'static> {
        let n = dnf.len();
        let mut atoms = Vec::new();
        let mut spans = Vec::with_capacity(n);
        for clause in dnf.clauses() {
            let start = atoms.len() as u32;
            atoms.extend_from_slice(clause.atoms());
            spans.push((start, atoms.len() as u32));
        }
        let clause_probs: Vec<f64> = (0..n).map(|i| dnf.clauses()[i].probability(space)).collect();
        let vars: Vec<VarId> = dnf.vars().into_iter().collect();
        KarpLubyEstimator::assemble(AtomStore::Pool { atoms, spans }, clause_probs, vars, variant)
    }

    /// Prepares the estimator **borrowing** an interned lineage: clause
    /// spans point straight into the arena's atom pool, so no atom is
    /// copied. The sampling stream is bit-identical to the copying path on
    /// the same formula.
    pub fn from_arena(
        arena: &'a LineageArena,
        view: &'a DnfView,
        space: &ProbabilitySpace,
        variant: EstimatorVariant,
    ) -> KarpLubyEstimator<'a> {
        let n = view.len();
        let clause_probs: Vec<f64> =
            (0..n).map(|i| view.clause_probability(arena, space, i)).collect();
        let vars: Vec<VarId> = view.vars(arena).into_iter().collect();
        KarpLubyEstimator::assemble(AtomStore::Arena { arena, view }, clause_probs, vars, variant)
    }

    /// Prepares the estimator from either lineage representation:
    /// [`DnfRef::Owned`] copies into the private pool, [`DnfRef::Arena`]
    /// borrows the arena in place (see
    /// [`KarpLubyEstimator::from_arena`]). The sampling stream (clause
    /// order, variable order, satisfaction scans) is identical for both
    /// representations of the same formula, so seeded estimates agree to the
    /// bit.
    pub fn from_ref(
        dnf: DnfRef<'a>,
        space: &ProbabilitySpace,
        variant: EstimatorVariant,
    ) -> KarpLubyEstimator<'a> {
        match dnf {
            DnfRef::Owned(d) => Self::with_variant(d, space, variant),
            DnfRef::Arena(arena, view) => Self::from_arena(arena, view, space, variant),
        }
    }

    fn assemble<'b>(
        store: AtomStore<'b>,
        clause_probs: Vec<f64>,
        vars: Vec<VarId>,
        variant: EstimatorVariant,
    ) -> KarpLubyEstimator<'b> {
        let mut cumulative = Vec::with_capacity(clause_probs.len());
        let mut acc = 0.0;
        for &p in &clause_probs {
            acc += p;
            cumulative.push(acc);
        }
        KarpLubyEstimator { store, clause_probs, cumulative, total_weight: acc, vars, variant }
    }

    #[inline]
    fn clause_atoms(&self, i: usize) -> &[events::Atom] {
        self.store.clause_atoms(i)
    }

    /// The normalising constant `U = Σ P(cᵢ)` (an upper bound on the DNF
    /// probability).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of clauses of the prepared DNF.
    pub fn num_clauses(&self) -> usize {
        self.clause_probs.len()
    }

    /// `true` if the DNF is trivially false (no clauses) or trivially true
    /// (contains the empty clause); such inputs need no sampling.
    pub fn trivial_probability(&self) -> Option<f64> {
        if self.num_clauses() == 0 {
            return Some(0.0);
        }
        if (0..self.num_clauses()).any(|i| self.clause_atoms(i).is_empty()) {
            return Some(1.0);
        }
        None
    }

    /// Draws one unbiased estimate of the DNF probability (a value in
    /// `[0, U]` whose expectation is the exact probability).
    pub fn sample<R: Rng + ?Sized>(&self, space: &ProbabilitySpace, rng: &mut R) -> f64 {
        self.total_weight * self.sample_normalized(space, rng)
    }

    /// Draws one *normalised* estimate in `[0, 1]` whose expectation is
    /// `p / U`; this is the form consumed by the stopping rules of the DKLR
    /// algorithm.
    pub fn sample_normalized<R: Rng + ?Sized>(&self, space: &ProbabilitySpace, rng: &mut R) -> f64 {
        if let Some(p) = self.trivial_probability() {
            // For trivial inputs the normalised estimate is p/U when U > 0 or
            // simply p (0 or 1) otherwise.
            return if self.total_weight > 0.0 { p / self.total_weight } else { p };
        }
        // 1. Sample a clause index proportionally to its probability.
        let idx = self.sample_clause_index(rng);
        // 2. Sample a world conditioned on that clause being satisfied.
        let world = self.sample_conditioned_world(idx, space, rng);
        // 3. Count the satisfied clauses / find the minimum satisfied index.
        match self.variant {
            EstimatorVariant::Fractional => {
                let count = self.count_satisfied(&world);
                debug_assert!(count >= 1, "conditioned world must satisfy the chosen clause");
                1.0 / count as f64
            }
            EstimatorVariant::ZeroOne => {
                let min_sat = self.min_satisfied(&world);
                if min_sat == Some(idx) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn sample_clause_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let target = rng.gen_range(0.0..self.total_weight);
        // Binary search over the cumulative distribution.
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&target).expect("finite probabilities"))
        {
            Ok(i) => (i + 1).min(self.num_clauses() - 1),
            Err(i) => i.min(self.num_clauses() - 1),
        }
    }

    fn sample_conditioned_world<R: Rng + ?Sized>(
        &self,
        clause_idx: usize,
        space: &ProbabilitySpace,
        rng: &mut R,
    ) -> Valuation {
        let mut world = Valuation::new();
        // Pin the clause's variables.
        for atom in self.clause_atoms(clause_idx) {
            world.assign(atom.var, atom.value);
        }
        // Sample every other variable of the DNF from its marginal.
        for &v in &self.vars {
            if world.value(v).is_some() {
                continue;
            }
            world.assign(v, sample_value(space, v, rng));
        }
        world
    }

    fn count_satisfied(&self, world: &Valuation) -> usize {
        (0..self.num_clauses())
            .filter(|&i| self.clause_atoms(i).iter().all(|a| world.value(a.var) == Some(a.value)))
            .count()
    }

    fn min_satisfied(&self, world: &Valuation) -> Option<usize> {
        (0..self.num_clauses())
            .find(|&i| self.clause_atoms(i).iter().all(|a| world.value(a.var) == Some(a.value)))
    }

    /// Average of `n` independent estimates — the plain (non-adaptive)
    /// Karp-Luby-Madras estimator.
    pub fn estimate_with_samples<R: Rng + ?Sized>(
        &self,
        space: &ProbabilitySpace,
        rng: &mut R,
        n: usize,
    ) -> f64 {
        if let Some(p) = self.trivial_probability() {
            return p;
        }
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = (0..n).map(|_| self.sample_normalized(space, rng)).sum();
        self.total_weight * sum / n as f64
    }

    /// Access to the per-clause marginal probabilities (used by tests).
    pub fn clause_probabilities(&self) -> &[f64] {
        &self.clause_probs
    }
}

fn sample_value<R: Rng + ?Sized>(space: &ProbabilitySpace, var: VarId, rng: &mut R) -> u32 {
    let domain = space.domain_size(var);
    let mut target = rng.gen_range(0.0..1.0);
    for value in 0..domain {
        let p = space.prob(var, value);
        if target < p {
            return value;
        }
        target -= p;
    }
    domain - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::Clause;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn example_dnf() -> (ProbabilitySpace, Dnf) {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        (s, phi)
    }

    #[test]
    fn total_weight_is_sum_of_clause_probabilities() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        assert!((est.total_weight() - (0.06 + 0.21 + 0.8)).abs() < 1e-12);
        assert_eq!(est.num_clauses(), 3);
        assert_eq!(est.clause_probabilities().len(), 3);
    }

    #[test]
    fn arena_backed_estimator_is_bit_identical_to_copying_path() {
        let (s, phi) = example_dnf();
        let mut arena = events::LineageArena::new();
        let view = arena.intern(&phi);
        for variant in [EstimatorVariant::Fractional, EstimatorVariant::ZeroOne] {
            let copied = KarpLubyEstimator::with_variant(&phi, &s, variant);
            let borrowed = KarpLubyEstimator::from_arena(&arena, &view, &s, variant);
            assert_eq!(copied.total_weight().to_bits(), borrowed.total_weight().to_bits());
            assert_eq!(copied.clause_probabilities(), borrowed.clause_probabilities());
            assert_eq!(copied.num_clauses(), borrowed.num_clauses());
            // Same-seeded streams must agree to the bit: both preparations
            // expose identical clause order, probabilities, and variable
            // order, so every RNG draw lands on the same decision.
            let mut rng_a = StdRng::seed_from_u64(0xa11e7a);
            let mut rng_b = StdRng::seed_from_u64(0xa11e7a);
            for _ in 0..200 {
                let a = copied.sample_normalized(&s, &mut rng_a);
                let b = borrowed.sample_normalized(&s, &mut rng_b);
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let mut rng_a = StdRng::seed_from_u64(0x5eed);
            let mut rng_b = StdRng::seed_from_u64(0x5eed);
            let ea = copied.estimate_with_samples(&s, &mut rng_a, 500);
            let eb = borrowed.estimate_with_samples(&s, &mut rng_b, 500);
            assert_eq!(ea.to_bits(), eb.to_bits());
        }
    }

    #[test]
    fn from_ref_dispatches_to_both_representations() {
        let (s, phi) = example_dnf();
        let mut arena = events::LineageArena::new();
        let view = arena.intern(&phi);
        let owned =
            KarpLubyEstimator::from_ref(DnfRef::Owned(&phi), &s, EstimatorVariant::default());
        let arena_backed = KarpLubyEstimator::from_ref(
            DnfRef::Arena(&arena, &view),
            &s,
            EstimatorVariant::default(),
        );
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let ea = owned.estimate_with_samples(&s, &mut rng_a, 300);
        let eb = arena_backed.estimate_with_samples(&s, &mut rng_b, 300);
        assert_eq!(ea.to_bits(), eb.to_bits());
    }

    #[test]
    fn trivial_inputs_are_detected() {
        let (s, _) = bool_space(&[0.5]);
        let est = KarpLubyEstimator::new(&Dnf::empty(), &s);
        assert_eq!(est.trivial_probability(), Some(0.0));
        let est = KarpLubyEstimator::new(&Dnf::tautology(), &s);
        assert_eq!(est.trivial_probability(), Some(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(est.estimate_with_samples(&s, &mut rng, 10), 1.0);
    }

    #[test]
    fn fractional_estimator_converges_to_exact_probability() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(42);
        let approx = est.estimate_with_samples(&s, &mut rng, 40_000);
        assert!(
            (approx - exact).abs() < 0.01,
            "Karp-Luby fractional estimate {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn zero_one_estimator_converges_to_exact_probability() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::with_variant(&phi, &s, EstimatorVariant::ZeroOne);
        let mut rng = StdRng::seed_from_u64(7);
        let approx = est.estimate_with_samples(&s, &mut rng, 60_000);
        assert!(
            (approx - exact).abs() < 0.015,
            "Karp-Luby zero-one estimate {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn normalized_samples_are_within_unit_interval() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = est.sample_normalized(&s, &mut rng);
            assert!((0.0..=1.0).contains(&x), "normalised sample {x} outside [0,1]");
        }
    }

    #[test]
    fn estimator_handles_small_probabilities() {
        // All clause probabilities tiny: the estimator remains unbiased and
        // the relative structure is preserved (this is where naive sampling
        // fails but Karp-Luby keeps working).
        let (s, vars) = bool_space(&[0.001, 0.002, 0.001, 0.004]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(11);
        let approx = est.estimate_with_samples(&s, &mut rng, 50_000);
        assert!(exact > 0.0);
        let rel_err = (approx - exact).abs() / exact;
        assert!(rel_err < 0.05, "relative error {rel_err} too large ({approx} vs {exact})");
    }

    #[test]
    fn multivalued_variables_are_sampled_correctly() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_discrete("x", vec![0.2, 0.3, 0.5]);
        let y = s.add_bool("y", 0.4);
        let phi = Dnf::from_clauses(vec![
            Clause::from_atoms(vec![events::Atom::new(x, 1), events::Atom::pos(y)]),
            Clause::from_atoms(vec![events::Atom::new(x, 2)]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(23);
        let approx = est.estimate_with_samples(&s, &mut rng, 40_000);
        assert!((approx - exact).abs() < 0.01, "{approx} vs {exact}");
    }

    #[test]
    fn zero_samples_return_zero() {
        let (s, phi) = example_dnf();
        let est = KarpLubyEstimator::new(&phi, &s);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(est.estimate_with_samples(&s, &mut rng, 0), 0.0);
    }
}
