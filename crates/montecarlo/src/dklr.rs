//! The Dagum-Karp-Luby-Ross "optimal algorithm for Monte-Carlo estimation"
//! driving the Karp-Luby estimator — the `aconf` operator of MayBMS that the
//! paper uses as its main baseline.
//!
//! The AA (approximation algorithm) of Dagum et al. consumes i.i.d. samples
//! `Z ∈ [0, 1]` with unknown mean `μ_Z` and returns an estimate `μ̃` such that
//! `Pr[|μ̃ − μ_Z| ≤ ε·μ_Z] ≥ 1 − δ`, using an (essentially optimal) number of
//! samples proportional to `ρ_Z / (ε·μ_Z)²` with `ρ_Z = max(σ²_Z, ε·μ_Z)`.
//! It proceeds in three phases:
//!
//! 1. **Stopping rule**: draw samples until their running sum exceeds
//!    `Υ₁ = 1 + (1 + ε')·Υ(ε', δ/3)`, yielding a first estimate `μ̂`.
//! 2. **Variance estimation**: draw `⌈Υ·ε/μ̂⌉` sample *pairs* to estimate
//!    `ρ_Z`.
//! 3. **Final run**: draw `⌈Υ·ρ̂/μ̂²⌉` samples and return their mean.
//!
//! where `Υ(ε, δ) = 4·(e − 2)·ln(2/δ)/ε²`. For the normalised Karp-Luby
//! estimator, `μ_Z = p / U` (probability over the clause-weight sum), so the
//! expected sample count scales with `U/p` — the behaviour that makes `aconf`
//! slow exactly when clause probabilities are small, as the paper's
//! experiments show.

use std::time::{Duration, Instant};

use events::{Dnf, ProbabilitySpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::karp_luby::{EstimatorVariant, KarpLubyEstimator};

/// Options for the (ε, δ)-approximation.
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Relative error ε.
    pub epsilon: f64,
    /// Failure probability δ (the paper's experiments fix δ = 0.0001).
    pub delta: f64,
    /// Estimator variant (fractional by default).
    pub variant: EstimatorVariant,
    /// Hard cap on the total number of estimator invocations (`None` =
    /// unlimited). When hit, the current running mean is returned with
    /// `converged = false`.
    pub max_samples: Option<u64>,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
    /// RNG seed (`None` = seed from entropy).
    pub seed: Option<u64>,
}

impl McOptions {
    /// `aconf(ε)` with the paper's δ = 0.0001 and no budget limits.
    pub fn new(epsilon: f64) -> Self {
        McOptions {
            epsilon,
            delta: 1e-4,
            variant: EstimatorVariant::default(),
            max_samples: None,
            timeout: None,
            seed: None,
        }
    }

    /// Sets the failure probability δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets a deterministic RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Caps the number of estimator invocations.
    pub fn with_max_samples(mut self, n: u64) -> Self {
        self.max_samples = Some(n);
        self
    }

    /// Sets a wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the estimator variant.
    pub fn with_variant(mut self, variant: EstimatorVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// Result of a Monte-Carlo confidence approximation.
#[derive(Debug, Clone, Copy)]
pub struct McResult {
    /// The probability estimate.
    pub estimate: f64,
    /// Total number of Karp-Luby estimator invocations.
    pub samples: u64,
    /// `true` when the full DKLR schedule completed within the budget (so the
    /// (ε, δ) guarantee holds); `false` when a sample/time budget cut the run
    /// short.
    pub converged: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// The DKLR-driven Karp-Luby approximation, prepared for one DNF. The
/// lifetime ties an arena-backed estimator to its [`events::LineageArena`];
/// owned preparations are `DklrEstimator<'static>`.
#[derive(Debug)]
pub struct DklrEstimator<'a> {
    kl: KarpLubyEstimator<'a>,
    opts: McOptions,
}

/// Convenience wrapper: the MayBMS-style `aconf(ε, δ)` call on a lineage DNF.
pub fn aconf(dnf: &Dnf, space: &ProbabilitySpace, opts: &McOptions) -> McResult {
    DklrEstimator::new(dnf, space, opts.clone()).run(space)
}

/// [`aconf`] on either lineage representation — for
/// [`events::DnfRef::Arena`] the estimator samples against the arena view
/// directly, without materialising an owned DNF. Seeded runs are
/// bit-identical across representations of the same formula.
pub fn aconf_ref(dnf: events::DnfRef<'_>, space: &ProbabilitySpace, opts: &McOptions) -> McResult {
    DklrEstimator::from_ref(dnf, space, opts.clone()).run(space)
}

struct Budget {
    start: Instant,
    samples: u64,
    max_samples: Option<u64>,
    timeout: Option<Duration>,
}

impl Budget {
    fn exhausted(&self) -> bool {
        if let Some(max) = self.max_samples {
            if self.samples >= max {
                return true;
            }
        }
        if let Some(t) = self.timeout {
            // Check the clock only every 1024 samples to keep the sampling
            // loop cheap.
            if self.samples.is_multiple_of(1024) && self.start.elapsed() >= t {
                return true;
            }
        }
        false
    }
}

impl<'a> DklrEstimator<'a> {
    /// Prepares the estimator.
    pub fn new(dnf: &Dnf, space: &ProbabilitySpace, opts: McOptions) -> DklrEstimator<'static> {
        DklrEstimator { kl: KarpLubyEstimator::with_variant(dnf, space, opts.variant), opts }
    }

    /// Prepares the estimator from either lineage representation (see
    /// [`KarpLubyEstimator::from_ref`]); the [`events::DnfRef::Arena`] arm
    /// borrows clause storage from the arena instead of copying it.
    pub fn from_ref(dnf: events::DnfRef<'a>, space: &ProbabilitySpace, opts: McOptions) -> Self {
        DklrEstimator { kl: KarpLubyEstimator::from_ref(dnf, space, opts.variant), opts }
    }

    /// Runs the three-phase DKLR schedule.
    pub fn run(&self, space: &ProbabilitySpace) -> McResult {
        let start = Instant::now();
        if let Some(p) = self.kl.trivial_probability() {
            return McResult { estimate: p, samples: 0, converged: true, elapsed: start.elapsed() };
        }
        let mut rng = match self.opts.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        };
        let mut budget = Budget {
            start,
            samples: 0,
            max_samples: self.opts.max_samples,
            timeout: self.opts.timeout,
        };

        let eps = self.opts.epsilon.clamp(1e-9, 0.999_999);
        let delta = self.opts.delta.clamp(1e-12, 0.5);
        let u = self.kl.total_weight();

        // Phase 1: stopping rule with ε' = min(1/2, √ε), δ' = δ/3.
        let eps1 = eps.sqrt().min(0.5);
        let delta1 = delta / 3.0;
        let upsilon1 = 1.0 + (1.0 + eps1) * upsilon(eps1, delta1);
        let (mu_hat, phase1_mean, stopped_early) =
            self.stopping_rule(space, &mut rng, &mut budget, upsilon1);
        if stopped_early {
            return McResult {
                estimate: (u * phase1_mean).clamp(0.0, 1.0),
                samples: budget.samples,
                converged: false,
                elapsed: start.elapsed(),
            };
        }

        // Phase 2: estimate ρ_Z = max(σ², ε·μ) from sample pairs.
        let ups = upsilon(eps, delta / 3.0);
        let n2 = (ups * eps / mu_hat).ceil().max(1.0) as u64;
        let mut sq_sum = 0.0;
        let mut pairs = 0u64;
        while pairs < n2 {
            if budget.exhausted() {
                return McResult {
                    estimate: (u * mu_hat).clamp(0.0, 1.0),
                    samples: budget.samples,
                    converged: false,
                    elapsed: start.elapsed(),
                };
            }
            let a = self.kl.sample_normalized(space, &mut rng);
            let b = self.kl.sample_normalized(space, &mut rng);
            budget.samples += 2;
            sq_sum += (a - b) * (a - b) / 2.0;
            pairs += 1;
        }
        let rho_hat = (sq_sum / n2 as f64).max(eps * mu_hat);

        // Phase 3: final estimate with ⌈Υ·ρ̂/μ̂²⌉ samples.
        let n3 = (ups * rho_hat / (mu_hat * mu_hat)).ceil().max(1.0) as u64;
        let mut sum = 0.0;
        let mut taken = 0u64;
        while taken < n3 {
            if budget.exhausted() {
                let mean = if taken > 0 { sum / taken as f64 } else { mu_hat };
                return McResult {
                    estimate: (u * mean).clamp(0.0, 1.0),
                    samples: budget.samples,
                    converged: false,
                    elapsed: start.elapsed(),
                };
            }
            sum += self.kl.sample_normalized(space, &mut rng);
            budget.samples += 1;
            taken += 1;
        }
        McResult {
            estimate: (u * sum / n3 as f64).clamp(0.0, 1.0),
            samples: budget.samples,
            converged: true,
            elapsed: start.elapsed(),
        }
    }

    /// Phase-1 stopping rule: sample until the running sum reaches
    /// `threshold`; the estimate is `threshold / N`. Returns
    /// `(estimate, running_mean, stopped_early)`.
    fn stopping_rule<R: Rng + ?Sized>(
        &self,
        space: &ProbabilitySpace,
        rng: &mut R,
        budget: &mut Budget,
        threshold: f64,
    ) -> (f64, f64, bool) {
        let mut sum = 0.0;
        let mut n = 0u64;
        while sum < threshold {
            if budget.exhausted() {
                let mean = if n > 0 { sum / n as f64 } else { 0.0 };
                return (mean, mean, true);
            }
            sum += self.kl.sample_normalized(space, rng);
            n += 1;
            budget.samples += 1;
        }
        (threshold / n as f64, sum / n as f64, false)
    }

    /// The prepared Karp-Luby estimator (exposed for tests and benches).
    pub fn estimator(&self) -> &KarpLubyEstimator<'a> {
        &self.kl
    }
}

/// `Υ(ε, δ) = 4·(e − 2)·ln(2/δ) / ε²` — the base sample-count constant of the
/// DKLR analysis.
fn upsilon(eps: f64, delta: f64) -> f64 {
    4.0 * (std::f64::consts::E - 2.0) * (2.0 / delta).ln() / (eps * eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use events::{Clause, VarId};

    fn bool_space(ps: &[f64]) -> (ProbabilitySpace, Vec<VarId>) {
        let mut s = ProbabilitySpace::new();
        let vars = ps.iter().enumerate().map(|(i, &p)| s.add_bool(format!("x{i}"), p)).collect();
        (s, vars)
    }

    fn example_dnf() -> (ProbabilitySpace, Dnf) {
        let (s, vars) = bool_space(&[0.3, 0.2, 0.7, 0.8]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[0], vars[2]]),
            Clause::from_bools(&[vars[3]]),
        ]);
        (s, phi)
    }

    #[test]
    fn upsilon_matches_formula() {
        let u = upsilon(0.1, 0.05);
        let expected = 4.0 * (std::f64::consts::E - 2.0) * (2.0f64 / 0.05).ln() / 0.01;
        assert!((u - expected).abs() < 1e-9);
    }

    #[test]
    fn trivial_formulas_need_no_samples() {
        let (s, _) = bool_space(&[0.5]);
        let r = aconf(&Dnf::empty(), &s, &McOptions::new(0.1));
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.samples, 0);
        assert!(r.converged);
        let r = aconf(&Dnf::tautology(), &s, &McOptions::new(0.1));
        assert_eq!(r.estimate, 1.0);
        assert!(r.converged);
    }

    #[test]
    fn aconf_meets_relative_error_on_example() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        // δ = 0.01, ε = 0.05: a single seeded run should comfortably land
        // within the relative error (the guarantee is probabilistic, but with
        // a fixed seed the test is deterministic).
        let opts = McOptions::new(0.05).with_delta(0.01).with_seed(0xabcd);
        let r = aconf(&phi, &s, &opts);
        assert!(r.converged);
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel <= 0.05, "relative error {rel} with estimate {} vs {exact}", r.estimate);
        assert!(r.samples > 0);
    }

    #[test]
    fn aconf_handles_small_probabilities_with_relative_guarantee() {
        let (s, vars) = bool_space(&[0.01, 0.02, 0.015, 0.03]);
        let phi = Dnf::from_clauses(vec![
            Clause::from_bools(&[vars[0], vars[1]]),
            Clause::from_bools(&[vars[2], vars[3]]),
        ]);
        let exact = phi.exact_probability_enumeration(&s);
        let opts = McOptions::new(0.1).with_delta(0.05).with_seed(99);
        let r = aconf(&phi, &s, &opts);
        assert!(r.converged);
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel <= 0.1, "relative error {rel}");
    }

    #[test]
    fn sample_budget_cuts_run_short() {
        let (s, phi) = example_dnf();
        let opts = McOptions::new(0.001).with_seed(7).with_max_samples(50);
        let r = aconf(&phi, &s, &opts);
        assert!(!r.converged);
        assert!(r.samples <= 52, "samples = {}", r.samples);
        // The truncated estimate is still a probability.
        assert!(r.estimate >= 0.0 && r.estimate <= phi.clause_probability_sum(&s) + 1e-9);
    }

    #[test]
    fn timeout_is_honoured() {
        let (s, phi) = example_dnf();
        let opts = McOptions::new(1e-6).with_seed(3).with_timeout(Duration::from_millis(5));
        let start = Instant::now();
        let r = aconf(&phi, &s, &opts);
        // Generous margin: the run must not take orders of magnitude longer
        // than the timeout (an unbounded ε = 1e-6 run would).
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(!r.converged || r.elapsed < Duration::from_secs(5));
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        let (s, phi) = example_dnf();
        let loose = aconf(&phi, &s, &McOptions::new(0.2).with_delta(0.05).with_seed(1));
        let tight = aconf(&phi, &s, &McOptions::new(0.05).with_delta(0.05).with_seed(1));
        assert!(loose.converged && tight.converged);
        assert!(
            tight.samples > loose.samples,
            "tight {} vs loose {}",
            tight.samples,
            loose.samples
        );
    }

    #[test]
    fn zero_one_variant_also_converges() {
        let (s, phi) = example_dnf();
        let exact = phi.exact_probability_enumeration(&s);
        let opts = McOptions::new(0.05)
            .with_delta(0.01)
            .with_seed(0x5eed)
            .with_variant(EstimatorVariant::ZeroOne);
        let r = aconf(&phi, &s, &opts);
        assert!(r.converged);
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel <= 0.06, "relative error {rel}");
    }
}
